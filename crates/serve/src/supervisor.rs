//! Worker supervision: owns the worker pool, detects dead or stuck
//! workers, restarts them from fresh [`Engine`] clones, and recovers
//! their in-flight work.
//!
//! The supervisor is a watchdog thread polling the pool every
//! [`crate::ServeConfig::supervisor_poll`]:
//!
//! * **Panics** — a worker whose thread finished with a panic is
//!   reaped, its in-flight batch (a clone parked in [`WorkerShared`]
//!   before execution began) is recovered, and a replacement worker is
//!   spawned into the pool.
//! * **Stalls** — a worker busy on one batch longer than
//!   [`crate::ServeConfig::stall_timeout`] is *retired*: its shared
//!   flag is set so it exits after the current batch, its handle is
//!   detached as a zombie, its in-flight batch is stolen, and a
//!   replacement is spawned. If the zombie eventually finishes its
//!   batch anyway, the per-job completion latch makes the duplicate
//!   results no-ops.
//! * **Recovery** — each job from a recovered batch is re-enqueued
//!   with a fresh batch sequence number (up to
//!   [`crate::ServeConfig::max_requeues`] times per job) or shed with
//!   [`Rejected::WorkerCrashed`]; either way the caller's handle
//!   resolves to a typed outcome, never a hang.
//!
//! Shutdown: once the server sets the stop flag (after the batcher has
//! flushed its backlog into the work channel), the supervisor waits for
//! the channel to empty and the pool to go idle, drops the last work
//! sender so workers exit on disconnect, reaps them, and returns.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use ts_core::Engine;

use crate::faults::{self, FaultPlan};
use crate::mapcache::MapCache;
use crate::metrics::Metrics;
use crate::server::{process_batch, shed_expired, Batch, Rejected};
use crate::ServeConfig;

/// Everything the supervisor thread needs, moved in at spawn.
pub(crate) struct SupervisorCtx {
    pub engine: Engine,
    pub work_tx: Sender<Batch>,
    pub work_rx: Receiver<Batch>,
    pub metrics: Arc<Metrics>,
    pub tracer: Option<ts_trace::Tracer>,
    pub stop: Arc<AtomicBool>,
    pub next_batch: Arc<AtomicU64>,
    pub map_cache: Arc<MapCache>,
    pub cfg: ServeConfig,
}

/// State a worker shares with the supervisor so its in-flight batch can
/// be recovered after a panic or stall.
struct WorkerShared {
    epoch: Instant,
    /// Clone of the batch currently executing; parked before execution
    /// begins, cleared after. Survives a worker panic for recovery.
    inflight: Mutex<Option<Batch>>,
    /// Microseconds (since `epoch`, saturated to at least 1) at which
    /// the current batch began; 0 while idle.
    busy_since_us: AtomicU64,
    /// Set by the supervisor when the worker is declared stuck; the
    /// worker exits before taking any further batch.
    retired: AtomicBool,
}

impl WorkerShared {
    fn new(epoch: Instant) -> Self {
        Self {
            epoch,
            inflight: Mutex::new(None),
            busy_since_us: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// The inflight mutex, recovered from poisoning: a panic between
    /// `begin` and `finish` is exactly the case the supervisor must
    /// read the batch back out of.
    fn lock(&self) -> MutexGuard<'_, Option<Batch>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin(&self, batch: &Batch) {
        *self.lock() = Some(batch.clone());
        let now = self.epoch.elapsed().as_micros() as u64;
        self.busy_since_us.store(now.max(1), Ordering::SeqCst);
    }

    fn finish(&self) {
        *self.lock() = None;
        self.busy_since_us.store(0, Ordering::SeqCst);
    }

    /// How long the worker has been on its current batch; `None` while
    /// idle.
    fn busy_for(&self) -> Option<Duration> {
        let since = self.busy_since_us.load(Ordering::SeqCst);
        if since == 0 {
            return None;
        }
        let now = self.epoch.elapsed().as_micros() as u64;
        Some(Duration::from_micros(now.saturating_sub(since)))
    }

    /// Takes the in-flight batch for recovery; the owning worker (alive
    /// or dead) can no longer answer for it exclusively — the per-job
    /// latch arbitrates.
    fn steal(&self) -> Option<Batch> {
        self.lock().take()
    }
}

/// One live worker slot in the pool.
struct Slot {
    handle: JoinHandle<()>,
    shared: Arc<WorkerShared>,
}

pub(crate) fn spawn_supervisor(ctx: SupervisorCtx) -> JoinHandle<()> {
    let tracer = ctx.tracer.clone();
    std::thread::Builder::new()
        .name("ts-serve-supervisor".into())
        .spawn(move || {
            ts_trace::install_opt(tracer.as_ref());
            run(ctx)
        })
        .expect("spawn supervisor thread")
}

fn spawn_slot(
    id: usize,
    engine: &Engine,
    rx: &Receiver<Batch>,
    metrics: &Arc<Metrics>,
    tracer: &Option<ts_trace::Tracer>,
    map_cache: &Arc<MapCache>,
    cfg: &ServeConfig,
) -> Slot {
    let shared = Arc::new(WorkerShared::new(Instant::now()));
    let handle = {
        let shared = Arc::clone(&shared);
        let engine = engine.clone();
        let rx = rx.clone();
        let metrics = Arc::clone(metrics);
        let tracer = tracer.clone();
        let map_cache = Arc::clone(map_cache);
        let plan = cfg.fault_plan.clone();
        let poll = cfg.supervisor_poll;
        std::thread::Builder::new()
            .name(format!("ts-serve-worker-{id}"))
            .spawn(move || {
                ts_trace::install_opt(tracer.as_ref());
                worker_loop(
                    &engine,
                    &rx,
                    &metrics,
                    &shared,
                    &map_cache,
                    plan.as_ref(),
                    poll,
                )
            })
            .expect("spawn worker thread")
    };
    Slot { handle, shared }
}

fn worker_loop(
    engine: &Engine,
    rx: &Receiver<Batch>,
    metrics: &Metrics,
    shared: &WorkerShared,
    map_cache: &MapCache,
    plan: Option<&FaultPlan>,
    poll: Duration,
) {
    loop {
        if shared.retired.load(Ordering::SeqCst) {
            break; // declared stuck; a replacement already owns our work
        }
        match rx.recv_timeout(poll) {
            Ok(batch) => {
                // Park a clone where the supervisor can recover it,
                // *before* any injection site or engine call can die.
                shared.begin(&batch);
                faults::inject(plan, batch.seq);
                process_batch(engine, batch.jobs, metrics, map_cache);
                shared.finish();
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn run(ctx: SupervisorCtx) {
    let SupervisorCtx {
        engine,
        work_tx,
        work_rx,
        metrics,
        tracer,
        stop,
        next_batch,
        map_cache,
        cfg,
    } = ctx;
    // Dropped (set to None) during shutdown once the backlog is done;
    // the disconnect is what tells workers to exit.
    let mut work_tx = Some(work_tx);
    let mut slots: Vec<Slot> = (0..cfg.workers)
        .map(|id| spawn_slot(id, &engine, &work_rx, &metrics, &tracer, &map_cache, &cfg))
        .collect();
    let mut next_id = cfg.workers;
    // Retired-but-possibly-still-running workers. Never joined: one may
    // be asleep inside a stalled batch well past shutdown, and its
    // duplicate completions are already latch-suppressed.
    let mut zombies: Vec<JoinHandle<()>> = Vec::new();

    loop {
        // Reap finished workers; panics get recovery and a restart.
        let mut i = 0;
        while i < slots.len() {
            if !slots[i].handle.is_finished() {
                i += 1;
                continue;
            }
            let slot = slots.remove(i);
            if slot.handle.join().is_err() {
                let inflight = slot.shared.steal();
                metrics.on_worker_panic(inflight.as_ref().map(|b| b.seq));
                ts_trace::counter_add("serve.workers.panicked", 1);
                // Post-mortem first, recovery second: the dump captures
                // the ring as the worker died, including the crashing
                // batch's dispatch and the fault just recorded.
                if let Some(tel) = metrics.telemetry() {
                    let _ = tel.dump_postmortem("worker_panic", metrics.depth() as u64);
                }
                // The dead worker may have panicked mid-update with a
                // stream state checked out; every surviving cached
                // state is still sound, but the checked-out one is
                // lost and cannot be told apart, so drop them all.
                map_cache.invalidate_all(&metrics);
                if work_tx.is_some() {
                    // Respawn before re-enqueueing: the send below can
                    // block on a full channel and needs a consumer.
                    slots.push(spawn_slot(
                        next_id, &engine, &work_rx, &metrics, &tracer, &map_cache, &cfg,
                    ));
                    next_id += 1;
                    metrics.on_worker_restart();
                    ts_trace::counter_add("serve.workers.restarted", 1);
                }
                recover(inflight, work_tx.as_ref(), &next_batch, &metrics, &cfg);
            }
            // A clean exit is the normal end of the drain; no action.
        }

        // Stall detection: steal from stuck workers and replace them.
        if let Some(timeout) = cfg.stall_timeout {
            let mut i = 0;
            while i < slots.len() {
                if slots[i].shared.busy_for().is_none_or(|d| d <= timeout) {
                    i += 1;
                    continue;
                }
                let slot = slots.remove(i);
                slot.shared.retired.store(true, Ordering::SeqCst);
                let inflight = slot.shared.steal();
                metrics.on_worker_stall(inflight.as_ref().map(|b| b.seq));
                ts_trace::counter_add("serve.workers.stalled", 1);
                if let Some(tel) = metrics.telemetry() {
                    let _ = tel.dump_postmortem("worker_stall", metrics.depth() as u64);
                }
                // A stuck worker is retired, not killed: it may wake
                // later and put back stream states from before the
                // recovery. Reset the cache to a known-clean slate;
                // affected streams just reseed on their next frame.
                map_cache.invalidate_all(&metrics);
                zombies.push(slot.handle);
                if work_tx.is_some() {
                    slots.push(spawn_slot(
                        next_id, &engine, &work_rx, &metrics, &tracer, &map_cache, &cfg,
                    ));
                    next_id += 1;
                    metrics.on_worker_restart();
                    ts_trace::counter_add("serve.workers.restarted", 1);
                }
                recover(inflight, work_tx.as_ref(), &next_batch, &metrics, &cfg);
            }
        }

        if stop.load(Ordering::SeqCst) {
            match &work_tx {
                Some(tx) => {
                    // The batcher has exited, so the channel only
                    // shrinks. Empty channel + idle pool means every
                    // admitted request is answered (or its batch is
                    // held by a worker that just dequeued it and will
                    // still run it after the disconnect).
                    let idle = slots.iter().all(|s| s.shared.busy_for().is_none());
                    if tx.is_empty() && idle {
                        work_tx = None;
                    }
                }
                None if slots.is_empty() => break,
                None => {}
            }
        }
        std::thread::sleep(cfg.supervisor_poll);
    }
    drop(zombies);
}

/// Re-enqueues (or sheds) the jobs of a batch recovered from a dead or
/// stuck worker. Every job still unanswered resolves to either a fresh
/// dispatch or a typed [`Rejected::WorkerCrashed`].
fn recover(
    inflight: Option<Batch>,
    work_tx: Option<&Sender<Batch>>,
    next_batch: &AtomicU64,
    metrics: &Metrics,
    cfg: &ServeConfig,
) {
    let Some(batch) = inflight else { return };
    let mut retry: Vec<_> = Vec::new();
    for mut job in batch.jobs {
        if job.done.load(Ordering::SeqCst) {
            continue; // already answered (by the worker or a twin)
        }
        if job.attempts >= cfg.max_requeues || work_tx.is_none() {
            shed_crashed(job, metrics);
        } else {
            job.attempts += 1;
            retry.push(job);
        }
    }
    if retry.is_empty() {
        return;
    }
    // Deadlines may have passed while the batch sat on the dead worker.
    shed_expired(&mut retry, metrics);
    metrics.on_requeued(retry.len() as u64);
    ts_trace::counter_add("serve.requests.requeued", retry.len() as i64);
    let batch = Batch {
        // Fresh sequence number: an explicit fault plan that killed the
        // original batch does not automatically kill the replay.
        seq: next_batch.fetch_add(1, Ordering::SeqCst),
        jobs: retry,
    };
    if let Some(tx) = work_tx {
        if let Err(e) = tx.send(batch) {
            for job in e.into_inner().jobs {
                shed_crashed(job, metrics);
            }
        }
    }
}

fn shed_crashed(job: crate::server::Job, metrics: &Metrics) {
    // This crash counts as an attempt on top of the recorded dispatches.
    let attempts = job.attempts + 1;
    if job.claim() {
        metrics.on_shed_crashed(job.stream);
        ts_trace::counter_add("serve.requests.shed_crashed", 1);
        job.send_err(Rejected::WorkerCrashed { attempts });
    }
}
