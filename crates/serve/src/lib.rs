//! Multi-stream inference serving for TorchSparse++.
//!
//! The paper's framing is that the Sparse Autotuner's cost is amortised
//! because "the tuned schedule could be reused for millions of scenes
//! in real-world ADAS applications" (Section 4.2). This crate is the
//! deployment side of that claim: a [`Server`] that boots a pool of
//! tuned [`ts_core::Engine`]s once and serves continuous frame streams
//! against them.
//!
//! * **Dynamic batching** — queued frames from any stream are
//!   coalesced into one multi-batch sparse tensor (each frame gets a
//!   distinct batch index) up to [`ServeConfig::max_batch`] frames or
//!   [`ServeConfig::max_wait`]. Because the coordinate hash key packs
//!   the batch index into its own bit field, kernel maps never connect
//!   points across frames, so batched outputs are **bit-identical** to
//!   serial per-frame inference while amortising mapping and kernel
//!   launch work.
//! * **Admission control and deadlines** — submissions beyond
//!   [`ServeConfig::queue_capacity`] in-flight requests are load-shed
//!   with [`Rejected::QueueFull`]; each request may carry a deadline,
//!   the batcher dequeues earliest-deadline-first, expired requests
//!   are shed unexecuted, and shutdown drains everything already
//!   admitted.
//! * **Schedule persistence** — servers boot from
//!   [`ts_core::ScheduleArtifact`] (see
//!   [`ts_core::Engine::save_schedule`] /
//!   [`ts_core::Engine::load_schedule`]) instead of re-tuning, with
//!   typed errors when an artifact was tuned for a different network,
//!   device, precision or format version.
//! * **SLO accounting** — per-stream p50/p90/p99 wall latency, batch
//!   size and queue-depth histograms, throughput, and deadline-miss
//!   counters, exported as JSON via [`ServeReport`].
//! * **Robustness** — workers run under a supervisor that restarts
//!   panicked or stuck workers from fresh engine clones and re-enqueues
//!   or sheds their in-flight requests with typed outcomes
//!   ([`Rejected::WorkerCrashed`]); every submitted request resolves,
//!   crash or not. Client-side, [`Client`] adds deterministic
//!   retry/backoff and a count-based [`CircuitBreaker`]. Engines that
//!   fail schedule validation boot degraded on the safe fallback
//!   dataflow instead of refusing to serve (see
//!   [`ts_core::Engine::load_schedule_lenient`]); responses carry a
//!   [`Response::degraded`] flag and the report counts the downgrades.
//! * **Temporal map reuse** — with [`ServeConfig::with_map_reuse`],
//!   workers service each frame through
//!   [`ts_core::Engine::infer_stream`], keeping a bounded per-stream
//!   cache of incrementally maintained kernel maps
//!   ([`ts_core::StreamState`]): consecutive frames of a coherent
//!   stream patch the previous frame's map instead of rebuilding it.
//!   The cache is LRU-evicted, invalidated wholesale on worker
//!   respawn, and never enabled on a degraded engine; reuse activity is
//!   reported via the `map_*` counters of [`ServeReport`] and the
//!   `serve.map_cache.*` trace counters.
//! * **Deterministic chaos testing** — with the `chaos` feature, a
//!   seeded [`FaultPlan`] injects worker panics, stalls and artifact
//!   corruption as a pure function of the batch sequence number, so a
//!   failing chaos run replays bit-identically from its seed. Without
//!   the feature the injection sites compile to no-ops.
//! * **Live telemetry** — with [`ServeConfig::with_obs`], every metrics
//!   hook also feeds a [`ts_obs::Telemetry`] registry: rolling-window
//!   health snapshots ([`Server::health_snapshot`]), multi-window
//!   burn-rate SLO alerts ([`Server::alerts`]), and a flight recorder
//!   of recent structured events dumped to a post-mortem JSON file when
//!   the supervisor reaps a panicked or stalled worker or the node is
//!   halted. See `OPERATIONS.md` ("Alerting") for the runbook.
//!
//! See `examples/serve_lidar_stream.rs` for an end-to-end deployment
//! loop, `examples/serve_resilience.rs` for degraded boot + retry, and
//! `benches/serve_throughput.rs` for the batching speedup measurement.
//! `OPERATIONS.md` at the repository root is the operator's runbook for
//! the failure modes and counters defined here.

#![warn(missing_docs)]

pub mod batch;
mod config;
mod faults;
mod mapcache;
mod metrics;
mod retry;
mod server;
mod supervisor;

pub use batch::{merge_frames, sort_by_coord, split_output, validate_frame, FrameError};
pub use config::ServeConfig;
pub use faults::{Fault, FaultPlan};
pub use metrics::{HistogramBucket, ServeReport, ServerLoad, StreamStats};
pub use retry::{BreakerConfig, BreakerState, CircuitBreaker, Client, ClientError, RetryPolicy};
pub use server::{Rejected, Response, ResponseHandle, Server};
// Re-exported so serve users configure and read telemetry without a
// direct ts-obs dependency.
pub use ts_obs::{
    Alert, AlertLevel, AlertState, HealthSnapshot, ObsConfig, ObsEvent, PostMortem, SloPolicy,
    StreamHealth, Telemetry,
};
