//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;

use crate::faults::FaultPlan;

/// Tunables of a [`crate::Server`].
///
/// The defaults suit interactive tests; a deployment would size
/// `workers` to the engine pool it can afford and `queue_capacity` to
/// the latency it is willing to queue up.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of worker threads, each owning one [`ts_core::Engine`].
    pub workers: usize,
    /// Maximum frames coalesced into one batched inference call.
    pub max_batch: usize,
    /// How long the batcher holds an incomplete batch open waiting for
    /// more frames before dispatching it anyway.
    pub max_wait: Duration,
    /// Admission bound: submissions are rejected with
    /// [`crate::Rejected::QueueFull`] while this many requests are
    /// in flight (queued or executing).
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit one;
    /// `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Where [`crate::Server::shutdown`] writes the Chrome trace of the
    /// serving run. Requires a tracer installed on the thread that
    /// constructs the [`crate::Server`]; ignored otherwise.
    pub trace_path: Option<PathBuf>,
    /// How long a worker may sit on one batch before the supervisor
    /// declares it stuck, detaches it, and restarts the slot with a
    /// fresh engine clone (the in-flight batch is re-enqueued or shed).
    /// `None` (the default) disables stall detection: a good threshold
    /// is a deployment judgment — several times the workload's p99 —
    /// and a guessed default would misfire on slow hosts, re-executing
    /// batches that were merely heavy. Panic supervision is always on.
    pub stall_timeout: Option<Duration>,
    /// How often the supervisor thread scans the worker pool for dead
    /// or stuck workers.
    pub supervisor_poll: Duration,
    /// How many times a request recovered from a crashed or stuck
    /// worker is re-enqueued before it is shed with
    /// [`crate::Rejected::WorkerCrashed`].
    pub max_requeues: u32,
    /// Deterministic fault schedule for chaos testing. Only consulted
    /// when the crate is built with the `chaos` feature; in production
    /// builds the injection sites compile to no-ops and this field is
    /// inert.
    pub fault_plan: Option<FaultPlan>,
    /// Temporal kernel-map reuse: workers service each frame through
    /// [`ts_core::Engine::infer_stream`], patching the previous frame's
    /// stride-1 submanifold map per stream instead of rebuilding it.
    /// Frames are then executed one per inference call (per-stream maps
    /// cannot be shared across a merged multi-stream batch), trading
    /// cross-stream batching for mapping reuse — the right trade for
    /// few, temporally coherent streams. Off by default. Ignored (with
    /// a `serve.map_cache.disabled_degraded` counter) when the engine
    /// booted degraded.
    pub map_reuse: bool,
    /// Bound on cached per-stream map states; least recently used
    /// streams are evicted beyond it.
    pub map_cache_capacity: usize,
    /// Voxel churn fraction above which a frame rebuilds its stream's
    /// map from scratch instead of patching (see
    /// [`ts_core::DeltaConfig`]).
    pub map_churn_threshold: f32,
    /// Live telemetry: when set, the server boots a
    /// [`ts_obs::Telemetry`] registry fed from every metrics hook —
    /// rolling-window health snapshots ([`crate::Server::health_snapshot`]),
    /// burn-rate SLO alerts ([`crate::Server::alerts`]) and a flight
    /// recorder dumped to a post-mortem file when the supervisor reaps
    /// a panicked or stalled worker or the node is halted. `None` (the
    /// default) compiles the hooks down to a skipped branch.
    pub obs: Option<ts_obs::ObsConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            default_deadline: None,
            trace_path: None,
            stall_timeout: None,
            supervisor_poll: Duration::from_millis(5),
            max_requeues: 1,
            fault_plan: None,
            map_reuse: false,
            map_cache_capacity: 64,
            map_churn_threshold: 0.35,
            obs: None,
        }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the batching window.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the admission bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the Chrome-trace output path written at shutdown.
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Sets the stall timeout after which a stuck worker is replaced;
    /// `None` disables stall detection.
    pub fn with_stall_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Sets the supervisor's scan interval.
    pub fn with_supervisor_poll(mut self, poll: Duration) -> Self {
        self.supervisor_poll = poll;
        self
    }

    /// Sets how many crash recoveries a request survives before it is
    /// shed with [`crate::Rejected::WorkerCrashed`].
    pub fn with_max_requeues(mut self, max_requeues: u32) -> Self {
        self.max_requeues = max_requeues;
        self
    }

    /// Installs a deterministic fault schedule for chaos testing. Only
    /// available (and only effective) with the `chaos` feature.
    #[cfg(feature = "chaos")]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables or disables temporal kernel-map reuse across each
    /// stream's consecutive frames.
    pub fn with_map_reuse(mut self, on: bool) -> Self {
        self.map_reuse = on;
        self
    }

    /// Sets the bound on cached per-stream map states.
    pub fn with_map_cache_capacity(mut self, capacity: usize) -> Self {
        self.map_cache_capacity = capacity;
        self
    }

    /// Sets the churn fraction above which a stream's map is rebuilt
    /// from scratch instead of patched.
    pub fn with_map_churn_threshold(mut self, threshold: f32) -> Self {
        self.map_churn_threshold = threshold;
        self
    }

    /// Enables live telemetry (health snapshots, SLO alerts, flight
    /// recorder) with the given registry configuration.
    pub fn with_obs(mut self, obs: ts_obs::ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Clamps degenerate values to their working minimum (at least one
    /// worker, batches of at least one frame, room for at least one
    /// request, a non-zero supervisor scan interval).
    pub(crate) fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.max_batch = self.max_batch.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.supervisor_poll = self.supervisor_poll.max(Duration::from_millis(1));
        self.map_cache_capacity = self.map_cache_capacity.max(1);
        self.map_churn_threshold = self.map_churn_threshold.max(0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.max_batch >= 1);
        assert!(c.queue_capacity >= c.max_batch);
        assert!(c.default_deadline.is_none());
    }

    #[test]
    fn builder_chain() {
        let c = ServeConfig::default()
            .with_workers(4)
            .with_max_batch(8)
            .with_max_wait(Duration::from_millis(5))
            .with_queue_capacity(128)
            .with_default_deadline(Duration::from_millis(50))
            .with_trace_path("serve-trace.json");
        assert_eq!(c.trace_path, Some(PathBuf::from("serve-trace.json")));
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch, 8);
        assert_eq!(c.max_wait, Duration::from_millis(5));
        assert_eq!(c.queue_capacity, 128);
        assert_eq!(c.default_deadline, Some(Duration::from_millis(50)));
    }

    #[test]
    fn normalized_clamps_zeros() {
        let c = ServeConfig {
            workers: 0,
            max_batch: 0,
            max_wait: Duration::ZERO,
            queue_capacity: 0,
            default_deadline: None,
            trace_path: None,
            stall_timeout: None,
            supervisor_poll: Duration::ZERO,
            max_requeues: 0,
            fault_plan: None,
            map_reuse: false,
            map_cache_capacity: 0,
            map_churn_threshold: -1.0,
            obs: None,
        }
        .normalized();
        assert_eq!(c.workers, 1);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_capacity, 1);
        assert!(c.supervisor_poll >= Duration::from_millis(1));
        assert_eq!(c.map_cache_capacity, 1);
        assert_eq!(c.map_churn_threshold, 0.0);
    }

    #[test]
    fn map_reuse_defaults_off_and_builds() {
        let c = ServeConfig::default();
        assert!(!c.map_reuse, "temporal reuse is opt-in");
        assert!(c.map_cache_capacity >= 1);
        let c = c
            .with_map_reuse(true)
            .with_map_cache_capacity(8)
            .with_map_churn_threshold(0.5);
        assert!(c.map_reuse);
        assert_eq!(c.map_cache_capacity, 8);
        assert_eq!(c.map_churn_threshold, 0.5);
    }

    #[test]
    fn obs_is_opt_in() {
        let c = ServeConfig::default();
        assert!(c.obs.is_none(), "telemetry is opt-in");
        let c = c.with_obs(ts_obs::ObsConfig::default().with_postmortem_dir("target/pm"));
        let obs = c.obs.expect("configured");
        assert_eq!(obs.postmortem_dir.as_deref(), Some("target/pm"));
        assert!(obs.slo.is_some(), "SLO monitoring on by default");
    }

    #[test]
    fn resilience_defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(
            c.stall_timeout.is_none(),
            "stall detection is opt-in: a guessed timeout misfires on slow hosts"
        );
        assert!(c.supervisor_poll > Duration::ZERO);
        assert!(c.fault_plan.is_none(), "no faults unless asked for");
        let c = c
            .with_stall_timeout(Some(Duration::from_millis(80)))
            .with_supervisor_poll(Duration::from_millis(2))
            .with_max_requeues(3);
        assert_eq!(c.stall_timeout, Some(Duration::from_millis(80)));
        assert_eq!(c.supervisor_poll, Duration::from_millis(2));
        assert_eq!(c.max_requeues, 3);
    }
}
