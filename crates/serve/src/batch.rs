//! Frame coalescing: merging queued frames into one multi-batch tensor
//! and splitting the batched output back per frame.
//!
//! Correctness rests on a property of the coordinate key:
//! [`ts_kernelmap::Coord::key`] packs the batch index into its own bit
//! field, so kernel maps never connect points across batch indices. A
//! point's convolution inputs — and the fixed kernel-offset order they
//! are accumulated in — are therefore identical whether its frame runs
//! alone or merged with others, making batched outputs bit-identical to
//! serial per-frame inference.

use ts_core::SparseTensor;
use ts_kernelmap::Coord;
use ts_tensor::Matrix;

/// Why a frame cannot enter a batch (checked before merging, so one
/// malformed frame never poisons its batchmates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame has no points.
    Empty,
    /// The frame spans several batch indices; the server batches whole
    /// frames, so each submission must be a single scene.
    MultiBatch {
        /// Distinct batch indices found.
        batches: usize,
    },
    /// Feature width disagrees with the engine's network.
    ChannelMismatch {
        /// Channels the network expects.
        expected: usize,
        /// Channels the frame carries.
        got: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Empty => write!(f, "frame has no points"),
            FrameError::MultiBatch { batches } => {
                write!(
                    f,
                    "frame spans {batches} batch indices; submit single scenes"
                )
            }
            FrameError::ChannelMismatch { expected, got } => {
                write!(f, "frame has {got} channels, network expects {expected}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Validates that `frame` can join a batch for a network expecting
/// `expected_channels` input channels.
pub fn validate_frame(frame: &SparseTensor, expected_channels: usize) -> Result<(), FrameError> {
    if frame.num_points() == 0 {
        return Err(FrameError::Empty);
    }
    let batches = frame.batch_size();
    if batches != 1 {
        return Err(FrameError::MultiBatch { batches });
    }
    if frame.channels() != expected_channels {
        return Err(FrameError::ChannelMismatch {
            expected: expected_channels,
            got: frame.channels(),
        });
    }
    Ok(())
}

/// Merges validated single-scene frames into one multi-batch tensor:
/// frame `i` is assigned batch index `i`, and the original batch index
/// of each slot is returned so [`split_output`] can restore it.
///
/// # Panics
///
/// Panics if `frames` is empty, a frame fails [`validate_frame`]'s
/// shape invariants, or the frames disagree on channel width — the
/// server validates before merging.
pub fn merge_frames(frames: &[&SparseTensor]) -> (SparseTensor, Vec<i32>) {
    assert!(!frames.is_empty(), "cannot merge zero frames");
    let channels = frames[0].channels();
    let total: usize = frames.iter().map(|f| f.num_points()).sum();
    let mut coords = Vec::with_capacity(total);
    let mut feats = Matrix::zeros(total, channels);
    let mut slots = Vec::with_capacity(frames.len());
    let mut row = 0;
    for (slot, frame) in frames.iter().enumerate() {
        assert_eq!(frame.channels(), channels, "frames disagree on channels");
        assert!(frame.num_points() > 0, "empty frame in batch");
        slots.push(frame.coords()[0].batch);
        for (i, c) in frame.coords().iter().enumerate() {
            coords.push(Coord::new(slot as i32, c.x, c.y, c.z));
            feats.row_mut(row).copy_from_slice(frame.feats().row(i));
            row += 1;
        }
    }
    (SparseTensor::new(coords, feats), slots)
}

/// Splits a batched output back into one tensor per input frame,
/// restoring each slot's original batch index.
///
/// Rows within each split are sorted by coordinate key — a canonical
/// order, since output row order is an artifact of map construction
/// over the merged coordinate set. Compare against serial outputs with
/// [`sort_by_coord`].
pub fn split_output(batched: &SparseTensor, slots: &[i32]) -> Vec<SparseTensor> {
    let mut per_slot: Vec<Vec<(Coord, usize)>> = vec![Vec::new(); slots.len()];
    for (r, c) in batched.coords().iter().enumerate() {
        let slot = c.batch as usize;
        assert!(slot < slots.len(), "output batch index out of range");
        per_slot[slot].push((Coord::new(slots[slot], c.x, c.y, c.z), r));
    }
    per_slot
        .into_iter()
        .map(|mut rows| {
            rows.sort_by_key(|(c, _)| c.key());
            let channels = batched.channels();
            let mut feats = Matrix::zeros(rows.len(), channels);
            let mut coords = Vec::with_capacity(rows.len());
            for (i, (c, src)) in rows.iter().enumerate() {
                coords.push(*c);
                feats.row_mut(i).copy_from_slice(batched.feats().row(*src));
            }
            SparseTensor::with_stride(coords, feats, batched.stride())
        })
        .collect()
}

/// Reorders a tensor's rows by ascending coordinate key (the canonical
/// order [`split_output`] emits), for comparing serial and batched
/// outputs of the same coordinate set.
pub fn sort_by_coord(t: &SparseTensor) -> SparseTensor {
    let mut order: Vec<usize> = (0..t.num_points()).collect();
    order.sort_by_key(|&i| t.coords()[i].key());
    let mut coords = Vec::with_capacity(order.len());
    let mut feats = Matrix::zeros(order.len(), t.channels());
    for (dst, &src) in order.iter().enumerate() {
        coords.push(t.coords()[src]);
        feats.row_mut(dst).copy_from_slice(t.feats().row(src));
    }
    SparseTensor::with_stride(coords, feats, t.stride())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(batch: i32, n: i32, seed: f32) -> SparseTensor {
        let coords: Vec<Coord> = (0..n).map(|i| Coord::new(batch, i, i % 3, 0)).collect();
        let mut feats = Matrix::zeros(n as usize, 2);
        for r in 0..n as usize {
            feats.row_mut(r).copy_from_slice(&[seed + r as f32, -seed]);
        }
        SparseTensor::new(coords, feats)
    }

    #[test]
    fn validate_catches_each_defect() {
        assert_eq!(
            validate_frame(&SparseTensor::new(vec![], Matrix::zeros(0, 2)), 2),
            Err(FrameError::Empty)
        );
        let multi = SparseTensor::new(
            vec![Coord::new(0, 0, 0, 0), Coord::new(1, 0, 0, 0)],
            Matrix::zeros(2, 2),
        );
        assert_eq!(
            validate_frame(&multi, 2),
            Err(FrameError::MultiBatch { batches: 2 })
        );
        assert_eq!(
            validate_frame(&frame(0, 3, 0.0), 4),
            Err(FrameError::ChannelMismatch {
                expected: 4,
                got: 2
            })
        );
        assert_eq!(validate_frame(&frame(0, 3, 0.0), 2), Ok(()));
    }

    #[test]
    fn merge_then_split_round_trips() {
        let a = frame(7, 4, 1.0);
        let b = frame(2, 3, 10.0);
        let (merged, slots) = merge_frames(&[&a, &b]);
        assert_eq!(merged.num_points(), 7);
        assert_eq!(merged.batch_size(), 2);
        assert_eq!(slots, vec![7, 2]);
        // Distinct batch indices even though both frames used overlapping
        // spatial coordinates.
        assert_eq!(
            ts_kernelmap::unique_coords(merged.coords()).len(),
            merged.num_points()
        );
        let parts = split_output(&merged, &slots);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], sort_by_coord(&a));
        assert_eq!(parts[1], sort_by_coord(&b));
    }

    #[test]
    fn split_restores_original_batch_indices() {
        let a = frame(5, 2, 0.5);
        let (merged, slots) = merge_frames(&[&a]);
        assert!(merged.coords().iter().all(|c| c.batch == 0));
        let parts = split_output(&merged, &slots);
        assert!(parts[0].coords().iter().all(|c| c.batch == 5));
    }

    #[test]
    fn sort_by_coord_is_idempotent_and_value_preserving() {
        let a = frame(0, 5, 3.0);
        let s = sort_by_coord(&a);
        assert_eq!(s, sort_by_coord(&s));
        assert_eq!(s.num_points(), a.num_points());
        // Every (coord, row) pair survives.
        for (i, c) in a.coords().iter().enumerate() {
            let j = s.coords().iter().position(|x| x == c).expect("coord kept");
            assert_eq!(s.feats().row(j), a.feats().row(i));
        }
    }
}
