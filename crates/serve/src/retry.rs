//! Client-side resilience: deterministic retry with exponential
//! backoff and jitter, plus a count-based circuit breaker.
//!
//! Both pieces are deliberately clock-free so their behaviour is
//! testable and replayable:
//!
//! * [`RetryPolicy::backoff_for`] is a pure function of
//!   `(policy, token, attempt)` — the jitter comes from a seeded hash,
//!   not a global RNG, so a retry schedule can be asserted exactly.
//! * [`CircuitBreaker`] counts outcomes instead of timing them: it
//!   opens after too many failures inside a sliding window of recent
//!   calls, holds open for a fixed number of *probe attempts* (not
//!   seconds), then half-opens to trial traffic.
//!
//! [`Client`] combines the two around a [`Server`]: retryable
//! rejections ([`Rejected::retryable`]) are resubmitted with backoff;
//! terminal rejections are returned immediately; and once the breaker
//! opens, calls fail fast with [`ClientError::CircuitOpen`] instead of
//! piling onto an unhealthy server.
//!
//! # Examples
//!
//! ```
//! use ts_serve::RetryPolicy;
//!
//! let policy = RetryPolicy::default();
//! // The schedule for one request token is deterministic...
//! assert_eq!(policy.backoff_for(7, 0), policy.backoff_for(7, 0));
//! // ...and grows (up to jitter) with the attempt number.
//! assert!(policy.backoff_for(7, 3) > policy.backoff_for(7, 0));
//! ```

use std::collections::VecDeque;
use std::time::Duration;

use crate::server::{Rejected, Response, Server};
use ts_core::SparseTensor;

/// Deterministic exponential backoff with seeded jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total tries per call, including the first (so `1` disables
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Multiplier applied per further attempt.
    pub factor: f64,
    /// Upper clamp on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in `0.0..=1.0`: each backoff is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(2),
            factor: 2.0,
            max_backoff: Duration::from_millis(50),
            jitter: 0.25,
            seed: 0,
        }
    }
}

/// SplitMix64 single round (same construction as the fault planner's).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The backoff to sleep before retry number `attempt` (0-based) of
    /// the call identified by `token` — a pure function, no clock, no
    /// shared RNG.
    pub fn backoff_for(&self, token: u64, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.max(1.0).powi(attempt as i32);
        let exp = exp.min(self.max_backoff.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let draw = mix(self.seed ^ mix(token) ^ u64::from(attempt)) as f64 / u64::MAX as f64;
        let scale = 1.0 - jitter * draw;
        Duration::from_secs_f64(exp * scale)
    }
}

/// Breaker life-cycle (see [`CircuitBreaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls pass, outcomes are recorded.
    Closed,
    /// Tripped: calls fail fast for a fixed number of probe attempts.
    Open,
    /// Probing: single trial calls decide between closing and
    /// re-opening.
    HalfOpen,
}

/// Tunables of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Size of the sliding window of recent call outcomes.
    pub window: usize,
    /// Failures inside the window that trip the breaker open.
    pub failure_threshold: usize,
    /// How many calls fail fast while open before the breaker
    /// half-opens (a count, not a wall-clock cooldown, so tests and
    /// replays are deterministic).
    pub cooldown_calls: usize,
    /// Consecutive half-open successes required to close again.
    pub trial_successes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            failure_threshold: 8,
            cooldown_calls: 8,
            trial_successes: 2,
        }
    }
}

/// A count-based circuit breaker over request outcomes.
///
/// Closed → (too many failures in the window) → Open → (after
/// `cooldown_calls` fast-failed calls) → HalfOpen → (consecutive
/// successes) → Closed, or (any failure) → Open again.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Recent outcomes, `true` = failure.
    recent: VecDeque<bool>,
    cooldown_left: usize,
    trial_streak: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            recent: VecDeque::new(),
            cooldown_left: 0,
            trial_streak: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate for the next call: `false` means fail fast. While open,
    /// each denied call counts toward the cooldown; once it elapses the
    /// breaker half-opens and lets a trial through.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.trial_streak = 0;
                }
                false
            }
        }
    }

    /// Records a successful call.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.record(false),
            BreakerState::HalfOpen => {
                self.trial_streak += 1;
                if self.trial_streak >= self.cfg.trial_successes {
                    self.state = BreakerState::Closed;
                    self.recent.clear();
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed call.
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.record(true);
                let failures = self.recent.iter().filter(|&&f| f).count();
                if failures >= self.cfg.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn record(&mut self, failure: bool) {
        self.recent.push_back(failure);
        while self.recent.len() > self.cfg.window.max(1) {
            self.recent.pop_front();
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.cfg.cooldown_calls.max(1);
        self.recent.clear();
        self.trial_streak = 0;
    }
}

/// Why a [`Client`] call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The final (or only) rejection from the server; either it was not
    /// [`Rejected::retryable`] or the attempt budget ran out.
    Rejected(Rejected),
    /// The circuit breaker is open; the call was not submitted.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(r) => write!(f, "request rejected: {r}"),
            ClientError::CircuitOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A resilient front-end to a [`Server`]: retries transient rejections
/// with deterministic backoff and fails fast while the breaker is open.
///
/// The client is single-threaded by design (one per submitting thread);
/// the server itself is the shared, thread-safe component.
#[derive(Debug)]
pub struct Client<'a> {
    server: &'a Server,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    next_token: u64,
}

impl<'a> Client<'a> {
    /// Wraps a server with the given retry policy and breaker tunables.
    pub fn new(server: &'a Server, policy: RetryPolicy, breaker: BreakerConfig) -> Self {
        Self {
            server,
            policy,
            breaker: CircuitBreaker::new(breaker),
            next_token: 0,
        }
    }

    /// Current breaker state (for dashboards and tests).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Submits `frame` on `stream`, retrying transient rejections.
    /// Sleeps the computed backoff between attempts.
    pub fn call(&mut self, stream: u64, frame: SparseTensor) -> Result<Response, ClientError> {
        self.call_with(stream, frame, std::thread::sleep)
    }

    /// [`Client::call`] with the sleep function injected, so tests can
    /// capture the backoff schedule instead of actually waiting.
    pub fn call_with(
        &mut self,
        stream: u64,
        frame: SparseTensor,
        mut sleep: impl FnMut(Duration),
    ) -> Result<Response, ClientError> {
        let token = self.next_token;
        self.next_token += 1;
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 0..attempts {
            if !self.breaker.allow() {
                return Err(ClientError::CircuitOpen);
            }
            let outcome = self
                .server
                .submit(stream, frame.clone())
                .and_then(|handle| handle.wait());
            match outcome {
                Ok(resp) => {
                    self.breaker.on_success();
                    return Ok(resp);
                }
                Err(why) => {
                    // Rejections caused by the request itself (bad
                    // frame, failed compile, missed deadline) say
                    // nothing about server health and don't count
                    // against the breaker.
                    if server_fault(&why) {
                        self.breaker.on_failure();
                    }
                    if !why.retryable() || attempt + 1 == attempts {
                        return Err(ClientError::Rejected(why));
                    }
                    sleep(self.policy.backoff_for(token, attempt));
                }
            }
        }
        unreachable!("loop returns on the last attempt");
    }
}

/// Whether a rejection indicates server-side distress (counted by the
/// breaker) rather than a problem with the request itself.
fn server_fault(why: &Rejected) -> bool {
    matches!(
        why,
        Rejected::QueueFull { .. } | Rejected::WorkerCrashed { .. } | Rejected::ShuttingDown
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_clamped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(4),
            factor: 2.0,
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            seed: 9,
        };
        for attempt in 0..8 {
            let a = p.backoff_for(3, attempt);
            assert_eq!(a, p.backoff_for(3, attempt), "pure in (token, attempt)");
            assert!(a <= Duration::from_millis(20), "clamped at max_backoff");
            let floor = Duration::from_millis(2); // base * (1 - jitter)
            assert!(a >= floor, "jitter only shrinks, never below half here");
        }
        // Different tokens draw different jitter somewhere.
        assert!((0..64).any(|t| p.backoff_for(t, 1) != p.backoff_for(t + 64, 1)));
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let p = RetryPolicy {
            jitter: 0.0,
            base: Duration::from_millis(1),
            factor: 2.0,
            max_backoff: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(0, 0), Duration::from_millis(1));
        assert_eq!(p.backoff_for(0, 1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(0, 3), Duration::from_millis(8));
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 3,
            cooldown_calls: 2,
            trial_successes: 2,
        })
    }

    #[test]
    fn breaker_trips_after_threshold_failures_in_window() {
        let mut b = breaker();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn sparse_failures_slide_out_of_the_window() {
        let mut b = breaker();
        for _ in 0..8 {
            b.on_failure();
            b.on_success();
            b.on_success();
            b.on_success();
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "1-in-4 failure rate is fine"
        );
    }

    #[test]
    fn breaker_recovers_through_half_open_trials() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown is counted in denied calls, not seconds.
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one trial isn't enough");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed trial re-trips");
        assert!(!b.allow());
    }

    #[test]
    fn request_caused_rejections_are_not_server_faults() {
        use crate::batch::FrameError;
        assert!(server_fault(&Rejected::QueueFull { capacity: 1 }));
        assert!(server_fault(&Rejected::WorkerCrashed { attempts: 2 }));
        assert!(server_fault(&Rejected::ShuttingDown));
        assert!(!server_fault(&Rejected::BadFrame(FrameError::Empty)));
        assert!(!server_fault(&Rejected::DeadlineExpired {
            missed_by: Duration::ZERO
        }));
    }

    #[test]
    fn retryability_matches_the_transient_set() {
        use crate::batch::FrameError;
        assert!(Rejected::QueueFull { capacity: 1 }.retryable());
        assert!(Rejected::WorkerCrashed { attempts: 1 }.retryable());
        assert!(!Rejected::ShuttingDown.retryable());
        assert!(!Rejected::BadFrame(FrameError::Empty).retryable());
        assert!(!Rejected::DeadlineExpired {
            missed_by: Duration::ZERO
        }
        .retryable());
    }
}
