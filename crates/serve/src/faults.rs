//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] is a *pure function* from a batch sequence number to
//! a fault decision, derived from a caller-chosen seed. Nothing in the
//! plan reads the wall clock, a global RNG, or thread identity, so a
//! chaos run is replayable: batch `n` panics (or stalls) on every run
//! with the same seed, no matter which worker picks it up or how the
//! OS schedules threads. The plan also packages the deterministic
//! corruption helpers the chaos tests use against persisted schedules
//! and the burst-sizing helper for queue-overload scenarios.
//!
//! The plan type and its decision logic always compile (they are plain
//! arithmetic and are unit-tested in every build); the *injection
//! hooks* inside the server's worker loop only exist when the crate is
//! built with the `chaos` feature, so a production build carries no
//! injection sites.
//!
//! # Examples
//!
//! ```
//! use ts_serve::{Fault, FaultPlan};
//!
//! let plan = FaultPlan::from_seed(42).with_panic_on([2]);
//! assert_eq!(plan.decide(2), Some(Fault::WorkerPanic));
//! assert_eq!(plan.decide(3), None);
//! // Replayable: the same seed makes the same decisions.
//! assert_eq!(plan.decide(2), FaultPlan::from_seed(42).with_panic_on([2]).decide(2));
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

/// One injected fault, decided per dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker thread executing the batch panics before touching it
    /// (the batch is recovered and re-enqueued by the supervisor).
    WorkerPanic,
    /// The worker sleeps this long before executing the batch,
    /// simulating a stuck schedule or an OS-level stall.
    SlowBatch(Duration),
}

/// A seeded, deterministic fault schedule.
///
/// Faults fire either on explicitly listed batch sequence numbers
/// ([`FaultPlan::with_panic_on`] / [`FaultPlan::with_stall_on`]) or at
/// a seeded rate ([`FaultPlan::with_panic_rate`] /
/// [`FaultPlan::with_stall_rate`]). Explicit lists take precedence over
/// rates, and panics over stalls. The determinism contract: every
/// decision is a pure function of `(seed, batch seq)`, so the same
/// plan replays the same faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_batches: BTreeSet<u64>,
    stall_batches: BTreeSet<u64>,
    /// Probabilities in parts per 2^32 so the plan stays `Eq`/`Hash`-able.
    panic_ppb: u32,
    stall_ppb: u32,
    stall: Duration,
}

/// SplitMix64: a single mixing round, used to derive independent
/// decision streams from (seed, sequence, salt) without shared state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn rate_to_ppb(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * u32::MAX as f64) as u32
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Panic the worker on exactly these batch sequence numbers.
    pub fn with_panic_on(mut self, batches: impl IntoIterator<Item = u64>) -> Self {
        self.panic_batches.extend(batches);
        self
    }

    /// Stall the worker for `stall` on exactly these batch sequence
    /// numbers.
    pub fn with_stall_on(
        mut self,
        batches: impl IntoIterator<Item = u64>,
        stall: Duration,
    ) -> Self {
        self.stall_batches.extend(batches);
        self.stall = stall;
        self
    }

    /// Additionally panic on a seeded `rate` (0.0–1.0) of all batches.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_ppb = rate_to_ppb(rate);
        self
    }

    /// Additionally stall for `stall` on a seeded `rate` (0.0–1.0) of
    /// all batches.
    pub fn with_stall_rate(mut self, rate: f64, stall: Duration) -> Self {
        self.stall_ppb = rate_to_ppb(rate);
        self.stall = stall;
        self
    }

    /// The fault (if any) to inject on batch `seq` — a pure function of
    /// `(plan, seq)`.
    pub fn decide(&self, seq: u64) -> Option<Fault> {
        if self.panic_batches.contains(&seq) {
            return Some(Fault::WorkerPanic);
        }
        if self.stall_batches.contains(&seq) {
            return Some(Fault::SlowBatch(self.stall));
        }
        if self.panic_ppb > 0 && (mix(self.seed ^ mix(seq ^ 0x9A)) >> 32) as u32 <= self.panic_ppb {
            return Some(Fault::WorkerPanic);
        }
        if self.stall_ppb > 0 && (mix(self.seed ^ mix(seq ^ 0x57)) >> 32) as u32 <= self.stall_ppb {
            return Some(Fault::SlowBatch(self.stall));
        }
        None
    }

    /// Deterministically corrupts a schedule-artifact JSON string so it
    /// no longer parses: truncates at a seeded offset strictly inside
    /// the document (a prefix of a JSON object is never valid JSON).
    /// Feeding the result to `ScheduleArtifact::from_json` yields a
    /// typed `Parse` error; feeding it to
    /// `Engine::load_schedule_lenient` yields a degraded engine.
    pub fn corrupt_truncate(&self, json: &str) -> String {
        if json.len() < 2 {
            return String::new();
        }
        let mut cut = 1 + (mix(self.seed ^ json.len() as u64) % (json.len() as u64 - 1)) as usize;
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        json[..cut].to_string()
    }

    /// Deterministically corrupts a schedule-artifact JSON string while
    /// keeping it parseable: rewrites the `"version"` field to a seeded
    /// wrong value, so strict loads fail with a typed
    /// `VersionMismatch` and lenient loads degrade the whole table.
    pub fn corrupt_version(&self, json: &str) -> String {
        let bogus = 1000 + (mix(self.seed ^ 0xC0) % 1000);
        match json.find("\"version\"") {
            None => self.corrupt_truncate(json),
            Some(at) => {
                let rest = &json[at..];
                let colon = rest.find(':').map(|c| at + c + 1);
                match colon {
                    None => self.corrupt_truncate(json),
                    Some(start) => {
                        let end = json[start..]
                            .find([',', '}', '\n'])
                            .map_or(json.len(), |e| start + e);
                        format!("{}{bogus}{}", &json[..start], &json[end..])
                    }
                }
            }
        }
    }

    /// Deterministic burst size for a queue-overload scenario: tick `t`
    /// submits between `lo` and `hi` (inclusive) requests at once.
    /// Pure in `(plan, t)`, like [`FaultPlan::decide`].
    pub fn burst_size(&self, tick: u64, lo: usize, hi: usize) -> usize {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        lo + (mix(self.seed ^ mix(tick ^ 0xB5)) % (hi - lo + 1) as u64) as usize
    }
}

/// Injection hook called by the worker loop once per batch, before
/// execution. Compiled to a no-op unless the `chaos` feature is on.
#[cfg(feature = "chaos")]
pub(crate) fn inject(plan: Option<&FaultPlan>, seq: u64) {
    match plan.and_then(|p| p.decide(seq)) {
        Some(Fault::WorkerPanic) => {
            ts_trace::counter_add("serve.chaos.injected_panic", 1);
            panic!("chaos: injected worker panic on batch {seq}");
        }
        Some(Fault::SlowBatch(stall)) => {
            ts_trace::counter_add("serve.chaos.injected_stall", 1);
            std::thread::sleep(stall);
        }
        None => {}
    }
}

/// No-op twin of the chaos injection hook for production builds.
#[cfg(not(feature = "chaos"))]
pub(crate) fn inject(_plan: Option<&FaultPlan>, _seq: u64) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_batches_fire_exactly() {
        let plan = FaultPlan::from_seed(7)
            .with_panic_on([0, 5])
            .with_stall_on([3], Duration::from_millis(10));
        assert_eq!(plan.decide(0), Some(Fault::WorkerPanic));
        assert_eq!(plan.decide(5), Some(Fault::WorkerPanic));
        assert_eq!(
            plan.decide(3),
            Some(Fault::SlowBatch(Duration::from_millis(10)))
        );
        for seq in [1, 2, 4, 6, 100] {
            assert_eq!(plan.decide(seq), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_across_plan_clones() {
        let a = FaultPlan::from_seed(99)
            .with_panic_rate(0.3)
            .with_stall_rate(0.3, Duration::from_millis(1));
        let b = a.clone();
        for seq in 0..500 {
            assert_eq!(a.decide(seq), b.decide(seq), "batch {seq} diverged");
        }
    }

    #[test]
    fn seeded_rates_hit_roughly_the_requested_fraction() {
        let plan = FaultPlan::from_seed(1234).with_panic_rate(0.25);
        let n = 4000;
        let hits = (0..n)
            .filter(|&s| plan.decide(s) == Some(Fault::WorkerPanic))
            .count();
        let frac = hits as f64 / n as f64;
        assert!(
            (0.18..0.32).contains(&frac),
            "hit rate {frac} far from 0.25"
        );
    }

    #[test]
    fn different_seeds_make_different_decisions() {
        let a = FaultPlan::from_seed(1).with_panic_rate(0.5);
        let b = FaultPlan::from_seed(2).with_panic_rate(0.5);
        let diverged = (0..200).any(|s| a.decide(s) != b.decide(s));
        assert!(diverged, "independent seeds should diverge somewhere");
    }

    #[test]
    fn rate_one_fires_on_every_batch() {
        let plan = FaultPlan::from_seed(3).with_panic_rate(1.0);
        for seq in 0..100 {
            assert_eq!(plan.decide(seq), Some(Fault::WorkerPanic));
        }
    }

    #[test]
    fn truncation_is_deterministic_and_strictly_shorter() {
        let json = "{\n  \"version\": 1,\n  \"configs\": {}\n}";
        let plan = FaultPlan::from_seed(11);
        let a = plan.corrupt_truncate(json);
        assert_eq!(a, plan.corrupt_truncate(json));
        assert!(!a.is_empty() && a.len() < json.len());
    }

    #[test]
    fn version_corruption_keeps_json_parseable_but_wrong() {
        let json = "{\n  \"version\": 1,\n  \"network\": \"n\"\n}";
        let corrupted = FaultPlan::from_seed(5).corrupt_version(json);
        assert!(corrupted.contains("\"version\""));
        assert!(!corrupted.contains("\"version\": 1,"));
        assert!(corrupted.contains("\"network\": \"n\""));
    }

    #[test]
    fn burst_sizes_stay_in_range_and_replay() {
        let plan = FaultPlan::from_seed(77);
        for t in 0..200 {
            let s = plan.burst_size(t, 2, 9);
            assert!((2..=9).contains(&s));
            assert_eq!(s, plan.burst_size(t, 2, 9));
        }
        // Degenerate range collapses.
        assert_eq!(plan.burst_size(0, 4, 4), 4);
    }
}
