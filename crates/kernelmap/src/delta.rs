//! Incremental kernel-map maintenance for temporally coherent streams.
//!
//! Streaming LiDAR frames differ by a small voxel delta: a few
//! coordinates enter the scene, a few exit, and the vast majority
//! survive unchanged. Rebuilding the kernel map from scratch costs
//! `n` hash inserts plus `n * K³` neighbor queries per frame;
//! [`IncrementalMap`] instead diffs the coordinate key sets and patches
//! the previous frame's map in place for `O((entered + exited) * K³)`
//! hash work, falling back to a full rebuild when churn exceeds a
//! configurable threshold.
//!
//! The patch exploits the submanifold symmetry `(p, q) ∈ M_δ ⟺
//! (q, p) ∈ M_{-δ}`: every pair involving a coordinate — as input *or*
//! output — is enumerable from that coordinate's own neighbor-matrix
//! row, so removals need no hash queries at all, and insertions need
//! exactly `K³` queries per entered coordinate.
//!
//! The patched map is **bit-identical** to a from-scratch
//! [`build_submanifold_map`] over the state's canonical coordinate
//! order (survivors keep their relative order via swap-fill compaction,
//! entered coordinates append at the tail); debug builds assert
//! [`check_map`] cleanliness after every patch, and the differential
//! tests in `tests/` compare against the reference builder exactly.

use std::collections::HashSet;

use crate::build::{build_submanifold_map_with_stats, MapStats};
use crate::{check_map, Coord, CoordHashMap, KernelMap, KernelOffsets, SplitPlan};

/// Policy knobs for [`IncrementalMap::update`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaConfig {
    /// Rebuild from scratch when `(entered + exited) / n_new` exceeds
    /// this fraction. At high churn the patch path touches most of the
    /// map anyway and the rebuild's sequential passes are cheaper.
    pub churn_threshold: f32,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        Self {
            churn_threshold: 0.35,
        }
    }
}

/// How [`IncrementalMap::update`] serviced a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapUpdate {
    /// The previous map was patched in place.
    Patched,
    /// The map was rebuilt from scratch (churn above threshold).
    Rebuilt,
}

/// Outcome of one frame update: the decision taken, the hash-work
/// instrumentation for simulated-cost pricing, and the delta shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Patch or rebuild.
    pub kind: MapUpdate,
    /// Hash inserts/queries performed and pairs touched (patched path)
    /// or produced (rebuild path) — the same vocabulary the full
    /// builders report, so cost models price both paths uniformly.
    pub stats: MapStats,
    /// Coordinates present in this frame but not the previous one.
    pub entered: usize,
    /// Coordinates present in the previous frame but not this one.
    pub exited: usize,
    /// `(entered + exited) / max(1, n_new)` — the fraction compared
    /// against [`DeltaConfig::churn_threshold`].
    pub churn: f32,
}

/// A submanifold kernel map maintained incrementally across frames.
///
/// Owns the coordinate list (in canonical order), the coordinate hash
/// table, the [`KernelMap`] and a [`SplitPlan`], all kept mutually
/// consistent by [`Self::update`].
///
/// # Examples
///
/// ```
/// use ts_kernelmap::{Coord, DeltaConfig, IncrementalMap, KernelOffsets, MapUpdate};
///
/// let f0: Vec<Coord> = (0..10).map(|x| Coord::new(0, x, 0, 0)).collect();
/// let mut inc = IncrementalMap::new(&f0, KernelOffsets::cube(3), 1);
/// // The line slides by one voxel: small churn, so the map is patched.
/// let f1: Vec<Coord> = (1..11).map(|x| Coord::new(0, x, 0, 0)).collect();
/// let out = inc.update(&f1, &DeltaConfig::default());
/// assert_eq!(out.kind, MapUpdate::Patched);
/// assert_eq!((out.entered, out.exited), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalMap {
    coords: Vec<Coord>,
    table: CoordHashMap,
    offsets: KernelOffsets,
    map: KernelMap,
    plan: SplitPlan,
    split_count: u32,
}

impl IncrementalMap {
    /// Builds the initial state from a frame's coordinates (deduplicated,
    /// first occurrence wins) with a `split_count`-way [`SplitPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the kernel size is even: incremental patching relies on
    /// the mirrored-offset symmetry of submanifold convolutions, which
    /// only odd (centered) kernels have.
    pub fn new(frame: &[Coord], offsets: KernelOffsets, split_count: u32) -> Self {
        assert!(
            offsets.kernel_size() % 2 == 1,
            "incremental maps require an odd (centered) kernel, got {}",
            offsets.kernel_size()
        );
        let coords = crate::unique_coords(frame);
        let (map, _) = build_submanifold_map_with_stats(&coords, &offsets);
        let plan = SplitPlan::from_split_count(&map, split_count);
        let table = CoordHashMap::build(&coords);
        Self {
            coords,
            table,
            offsets,
            map,
            plan,
            split_count,
        }
    }

    /// The current frame's coordinates in canonical order (the order a
    /// from-scratch build reproducing [`Self::map`] must use).
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The current kernel map.
    pub fn map(&self) -> &KernelMap {
        &self.map
    }

    /// The current split plan (re-derived after every update; sorted
    /// orders recompute lazily on first use).
    pub fn plan(&self) -> &SplitPlan {
        &self.plan
    }

    /// The kernel neighborhood this state was built with.
    pub fn offsets(&self) -> &KernelOffsets {
        &self.offsets
    }

    /// Post-update load factor of the coordinate hash table.
    pub fn load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// Advances the state to `frame`, patching the map in place when the
    /// voxel churn is below [`DeltaConfig::churn_threshold`] and
    /// rebuilding from scratch otherwise. Either way the resulting map
    /// equals `build_submanifold_map(self.coords(), self.offsets())`
    /// exactly.
    pub fn update(&mut self, frame: &[Coord], cfg: &DeltaConfig) -> UpdateOutcome {
        let mut stats = MapStats::default();

        // Delta scan: one probe of the (open-addressed, cheap-hash)
        // coordinate table per incoming coordinate classifies it as
        // surviving or entered; survivors mark a bitvec so the exited
        // set falls out without hashing the previous frame at all. Only
        // the small entered set needs a dedup key set.
        let mut seen = vec![false; self.coords.len()];
        let mut n_survivors = 0usize;
        let mut entered: Vec<Coord> = Vec::new();
        let mut entered_keys: HashSet<u64> = HashSet::new();
        for &c in frame {
            stats.queries += 1;
            match self.table.get(c.key()) {
                Some(i) => {
                    let i = i as usize;
                    if !seen[i] {
                        seen[i] = true;
                        n_survivors += 1;
                    }
                }
                None => {
                    if entered_keys.insert(c.key()) {
                        entered.push(c);
                    }
                }
            }
        }
        let n_new = n_survivors + entered.len();
        let exited_idx: Vec<usize> = (0..self.coords.len()).filter(|&i| !seen[i]).collect();

        let churn = (entered.len() + exited_idx.len()) as f32 / n_new.max(1) as f32;
        let outcome = |kind, stats| UpdateOutcome {
            kind,
            stats,
            entered: entered.len(),
            exited: exited_idx.len(),
            churn,
        };

        if churn > cfg.churn_threshold {
            let coords = crate::unique_coords(frame);
            let (map, build_stats) = build_submanifold_map_with_stats(&coords, &self.offsets);
            self.plan = SplitPlan::from_split_count(&map, self.split_count);
            self.table = CoordHashMap::build(&coords);
            self.map = map;
            self.coords = coords;
            return outcome(MapUpdate::Rebuilt, build_stats);
        }
        if entered.is_empty() && exited_idx.is_empty() {
            return outcome(MapUpdate::Patched, stats);
        }

        self.patch(&entered, &exited_idx, &mut stats);
        self.plan = SplitPlan::from_split_count(&self.map, self.split_count);
        debug_assert!(
            check_map(&self.map).is_empty(),
            "patched map violates invariants: {:?}",
            check_map(&self.map)
        );
        outcome(MapUpdate::Patched, stats)
    }

    /// Applies an (entered, exited) delta to the map, hash table and
    /// coordinate list.
    ///
    /// All structural edits happen on the *neighbor table* and bitmasks
    /// only — `O((entered + exited) · K³)` work — in three phases:
    /// unlink every pair touching an exited coordinate (enumerated from
    /// its own neighbor row, no hash traffic), swap-fill the holes so
    /// surviving indices stay dense (re-pointing only the moved rows),
    /// then append the entered coordinates and discover their neighbors
    /// with `K³` hash queries each. The per-offset pair lists are then
    /// **regenerated** from the neighbor table in one linear pass:
    /// every entry `neighbors[a·K³ + k] = i ≥ 0` is exactly the pair
    /// `(i, a) ∈ M_k`, and walking outputs in ascending order
    /// reproduces the from-scratch builder's pair order bit-for-bit.
    /// Editing the sorted pair lists in place instead would cost an
    /// `O(n)` memmove per touched pair, which at realistic deltas is
    /// slower than a full rebuild.
    fn patch(&mut self, entered: &[Coord], exited_idx: &[usize], stats: &mut MapStats) {
        let kvol = self.offsets.volume();
        let n_old = self.coords.len();
        let (pairs, neighbors, bitmasks) = self.map.parts_mut();

        let mut is_hole = vec![false; n_old];
        for &e in exited_idx {
            is_hole[e] = true;
        }

        // Phase A — unlink exited coordinates. Every dying pair is
        // counted exactly once: pairs *into* an exited output from its
        // own row (which stays pristine — only survivor rows are
        // cleared), pairs *out of* it into a survivor via the mirror
        // entry.
        for &e in exited_idx {
            for k in 0..kvol {
                let m = self.offsets.mirror(k);
                // Pair (i, e) ∈ M_k: e's incoming neighbor at offset k.
                if neighbors[e * kvol + k] >= 0 {
                    stats.pairs += 1;
                }
                // Pair (e, j) ∈ M_k ⟺ (j, e) ∈ M_{-k}: e feeds output j.
                let j = neighbors[e * kvol + m];
                if j >= 0 && j as usize != e && !is_hole[j as usize] {
                    stats.pairs += 1;
                    neighbors[j as usize * kvol + k] = -1;
                    bitmasks[j as usize] &= !(1u32 << k);
                }
            }
            self.table.remove(self.coords[e].key());
        }

        // Phase B — swap-fill compaction: move the highest surviving
        // coordinates into the holes so survivor indices stay dense
        // while only the moved few need their rows re-pointed.
        let n_sur = n_old - exited_idx.len();
        let mut src = n_old;
        for &hole in exited_idx {
            if hole >= n_sur {
                break; // remaining holes are all in the truncated tail
            }
            // Highest not-yet-moved survivor.
            src -= 1;
            while is_hole[src] {
                src -= 1;
            }
            debug_assert!(src > hole);
            let (f, t) = (src, hole);
            let moved = self.coords[f];
            self.coords[t] = moved;
            self.table.set(moved.key(), t as i32);
            stats.queries += 1;
            for k in 0..kvol {
                neighbors[t * kvol + k] = neighbors[f * kvol + k];
            }
            bitmasks[t] = bitmasks[f];
            for k in 0..kvol {
                let m = self.offsets.mirror(k);
                // Center self-pair: both endpoints move with the row.
                if neighbors[t * kvol + k] == f as i32 {
                    neighbors[t * kvol + k] = t as i32;
                }
                // Pair (f, j) ∈ M_k: re-point the input in j's row.
                let j = neighbors[t * kvol + m];
                if j >= 0 && j as usize != t {
                    neighbors[j as usize * kvol + k] = t as i32;
                }
            }
        }
        self.coords.truncate(n_sur);
        neighbors.truncate(n_sur * kvol);
        bitmasks.truncate(n_sur);

        // Phase C — append entered coordinates and discover their
        // neighbors.
        let n_final = n_sur + entered.len();
        neighbors.resize(n_final * kvol, -1);
        bitmasks.resize(n_final, 0);
        self.table.reserve(entered.len());
        for (off, &c) in entered.iter().enumerate() {
            self.table.insert(c.key(), (n_sur + off) as i32);
            stats.inserts += 1;
            self.coords.push(c);
        }
        for a in n_sur..n_final {
            let q = self.coords[a];
            for (k, &delta) in self.offsets.deltas().iter().enumerate() {
                stats.queries += 1;
                let Some(i) = self.table.get(q.offset(delta).key()) else {
                    continue;
                };
                let iu = i as usize;
                neighbors[a * kvol + k] = i;
                bitmasks[a] |= 1 << k;
                stats.pairs += 1;
                // The mirrored pair (a, i): materialize it now only for
                // survivors — entered neighbors discover it from their
                // own row when their turn comes.
                if iu < n_sur {
                    let m = self.offsets.mirror(k);
                    neighbors[iu * kvol + m] = a as i32;
                    bitmasks[iu] |= 1 << m;
                    stats.pairs += 1;
                }
            }
        }

        // Regenerate the pair lists from the patched neighbor table.
        // Ascending-output order with the row's input is exactly what
        // the from-scratch builder emits, so the result is bit-identical
        // to `build_submanifold_map(self.coords(), &self.offsets)`.
        for list in pairs.iter_mut() {
            list.clear();
        }
        for a in 0..n_final {
            let mut mask = bitmasks[a];
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                pairs[k].push((neighbors[a * kvol + k] as u32, a as u32));
            }
        }
        self.map.set_point_count(n_final);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_submanifold_map;

    fn grid(n: i32) -> Vec<Coord> {
        (0..n)
            .flat_map(|x| (0..n).map(move |y| Coord::new(0, x, y, 0)))
            .collect()
    }

    /// The fundamental contract: after any update the state's map equals
    /// a from-scratch build over its canonical coordinate order.
    fn assert_matches_fresh(inc: &IncrementalMap) {
        let fresh = build_submanifold_map(inc.coords(), inc.offsets());
        assert_eq!(inc.map(), &fresh);
        assert!(check_map(inc.map()).is_empty());
    }

    #[test]
    fn small_delta_patches_and_matches_fresh_build() {
        let mut f: Vec<Coord> = grid(6);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 2);
        // Shift one corner voxel out, bring a new one in.
        f.retain(|c| *c != Coord::new(0, 0, 0, 0));
        f.push(Coord::new(0, 6, 6, 0));
        let out = inc.update(&f, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        assert_eq!((out.entered, out.exited), (1, 1));
        assert_matches_fresh(&inc);
    }

    #[test]
    fn identical_frame_is_a_noop_patch() {
        let f = grid(5);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        let before = inc.map().clone();
        let out = inc.update(&f, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        assert_eq!((out.entered, out.exited), (0, 0));
        assert_eq!(out.stats.inserts, 0);
        assert_eq!(inc.map(), &before);
    }

    #[test]
    fn full_churn_rebuilds() {
        let mut inc = IncrementalMap::new(&grid(4), KernelOffsets::cube(3), 1);
        let far: Vec<Coord> = (0..16).map(|i| Coord::new(0, 100 + i, 0, 0)).collect();
        let out = inc.update(&far, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Rebuilt);
        assert!(out.churn >= 1.0);
        assert_matches_fresh(&inc);
    }

    #[test]
    fn threshold_zero_always_rebuilds() {
        let mut f = grid(5);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        f.push(Coord::new(0, 9, 9, 0));
        let out = inc.update(
            &f,
            &DeltaConfig {
                churn_threshold: 0.0,
            },
        );
        assert_eq!(out.kind, MapUpdate::Rebuilt);
        assert_matches_fresh(&inc);
    }

    #[test]
    fn empty_frame_then_refill() {
        let mut inc = IncrementalMap::new(&grid(3), KernelOffsets::cube(3), 1);
        let out = inc.update(&[], &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Rebuilt);
        assert_eq!(inc.map().n_out(), 0);
        assert_matches_fresh(&inc);
        let out = inc.update(&grid(2), &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Rebuilt); // everything entered
        assert_matches_fresh(&inc);
    }

    #[test]
    fn exit_only_delta_compacts_correctly() {
        let f = grid(5);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        // Drop two interior voxels (tests hole-filling with moves).
        let kept: Vec<Coord> = f
            .iter()
            .filter(|c| !matches!((c.x, c.y), (1, 1) | (2, 3)))
            .copied()
            .collect();
        let out = inc.update(&kept, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        assert_eq!((out.entered, out.exited), (0, 2));
        assert_eq!(inc.map().n_out(), kept.len());
        assert_matches_fresh(&inc);
    }

    #[test]
    fn enter_only_delta_appends_correctly() {
        let mut f = grid(5);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        f.push(Coord::new(0, 5, 0, 0));
        f.push(Coord::new(0, 5, 1, 0));
        let out = inc.update(&f, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        assert_eq!((out.entered, out.exited), (2, 0));
        assert_matches_fresh(&inc);
    }

    #[test]
    fn adjacent_entered_pair_each_other_once() {
        // Two entered voxels that neighbor each other must produce
        // exactly one pair per direction (the dedup subtlety in phase C).
        let f = grid(4);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        let mut f2 = f.clone();
        f2.push(Coord::new(0, 10, 0, 0));
        f2.push(Coord::new(0, 10, 1, 0));
        inc.update(&f2, &DeltaConfig::default());
        assert_matches_fresh(&inc);
    }

    #[test]
    fn long_drift_stays_equivalent() {
        // A window sliding over a grid: sustained small deltas for many
        // frames, verified against the reference builder every frame.
        let window = |t: i32| -> Vec<Coord> {
            (t..t + 10)
                .flat_map(|x| (0..4).map(move |y| Coord::new(0, x, y, 0)))
                .collect()
        };
        let mut inc = IncrementalMap::new(&window(0), KernelOffsets::cube(3), 2);
        let cfg = DeltaConfig::default();
        let mut patched = 0;
        for t in 1..20 {
            let out = inc.update(&window(t), &cfg);
            if out.kind == MapUpdate::Patched {
                patched += 1;
            }
            assert_matches_fresh(&inc);
        }
        assert!(patched >= 15, "drift should mostly patch, got {patched}");
    }

    #[test]
    fn patched_stats_are_delta_sized() {
        let f = grid(10); // 100 voxels
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        let mut f2 = f.clone();
        f2.remove(0);
        f2.push(Coord::new(0, 20, 20, 0));
        let out = inc.update(&f2, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        // Full rebuild would cost 100 inserts + 2700 queries; the patch
        // pays 1 insert and ~(n_new + kvol + moves) queries.
        assert_eq!(out.stats.inserts, 1);
        assert!(out.stats.queries < 200, "queries = {}", out.stats.queries);
    }

    #[test]
    fn plan_tracks_patched_map() {
        let mut f = grid(6);
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 3);
        f.retain(|c| c.x != 2 || c.y != 2);
        inc.update(&f, &DeltaConfig::default());
        let plan = inc.plan();
        assert_eq!(plan.ranges().len(), 3);
        assert!(crate::check_plan(inc.map(), plan, 16).is_empty());
    }

    #[test]
    fn batch_boundaries_respected_across_updates() {
        let mut f: Vec<Coord> = (0..6).map(|x| Coord::new(0, x, 0, 0)).collect();
        f.extend((0..6).map(|x| Coord::new(1, x, 0, 0)));
        let mut inc = IncrementalMap::new(&f, KernelOffsets::cube(3), 1);
        f.retain(|c| c.batch != 0 || c.x != 3);
        f.push(Coord::new(1, 6, 0, 0));
        let out = inc.update(&f, &DeltaConfig::default());
        assert_eq!(out.kind, MapUpdate::Patched);
        assert_matches_fresh(&inc);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernels_are_rejected() {
        let _ = IncrementalMap::new(&grid(2), KernelOffsets::cube(2), 1);
    }
}
