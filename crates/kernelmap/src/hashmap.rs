//! Open-addressing coordinate hash table.
//!
//! GPU sparse-conv libraries build a hash table from coordinate keys to
//! row indices, then issue massively parallel neighbor queries against
//! it. This is the CPU analog: linear probing over a power-of-two table
//! with Fibonacci hashing. Deletion uses backward-shift compaction
//! rather than tombstones, so probe chains never accumulate dead slots —
//! a table that churns for thousands of streaming frames keeps the same
//! probe statistics as a freshly built one.

use crate::Coord;

const EMPTY: u64 = u64::MAX;

/// Hash map from packed coordinate keys to `i32` indices.
///
/// Grows automatically (rehash at load factor 0.5) and supports removal,
/// so the incremental kernel-map engine can mutate the coordinate set
/// in place across frames.
///
/// # Examples
///
/// ```
/// use ts_kernelmap::{Coord, CoordHashMap};
///
/// let coords = vec![Coord::new(0, 1, 2, 3), Coord::new(0, 4, 5, 6)];
/// let mut map = CoordHashMap::build(&coords);
/// assert_eq!(map.get(coords[1].key()), Some(1));
/// assert_eq!(map.remove(coords[0].key()), Some(0));
/// assert_eq!(map.get(coords[0].key()), None);
/// ```
#[derive(Debug, Clone)]
pub struct CoordHashMap {
    keys: Vec<u64>,
    vals: Vec<i32>,
    mask: usize,
    len: usize,
    probes: u64,
}

impl CoordHashMap {
    /// Creates a table sized for `capacity` insertions (load factor 0.5).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY; slots],
            vals: vec![-1; slots],
            mask: slots - 1,
            len: 0,
            probes: 0,
        }
    }

    /// Builds a table mapping each coordinate's key to its index.
    ///
    /// Duplicate coordinates keep the *first* index (matching the unique
    /// semantics of coordinate quantization).
    pub fn build(coords: &[Coord]) -> Self {
        let mut map = Self::with_capacity(coords.len());
        for (i, c) in coords.iter().enumerate() {
            map.insert(c.key(), i as i32);
        }
        map
    }

    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads the packed coordinate bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Inserts `key -> val`; returns the existing value if the key was
    /// already present (and leaves it unchanged). Rehashes first if the
    /// insertion would push the load factor past 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (reserved sentinel).
    pub fn insert(&mut self, key: u64, val: i32) -> Option<i32> {
        assert_ne!(key, EMPTY, "key u64::MAX is reserved");
        self.reserve(1);
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<i32> {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `key` while counting probe steps (used by mapping-cost
    /// instrumentation).
    pub fn get_counting(&mut self, key: u64) -> Option<i32> {
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Overwrites `key -> val` (inserting if absent); returns the
    /// previous value. Unlike [`Self::insert`], an existing key's value
    /// is replaced — used when an index move re-points a key at a new
    /// row.
    pub fn set(&mut self, key: u64, val: i32) -> Option<i32> {
        assert_ne!(key, EMPTY, "key u64::MAX is reserved");
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                return self.insert(key, val);
            }
            if self.keys[slot] == key {
                let old = self.vals[slot];
                self.vals[slot] = val;
                return Some(old);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Deletion is backward-shift: every entry in the probe cluster after
    /// the removed slot is moved back if doing so keeps it reachable from
    /// its ideal slot, so lookups never traverse tombstones and probe
    /// counts stay at freshly-built levels regardless of churn.
    pub fn remove(&mut self, key: u64) -> Option<i32> {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                break;
            }
            slot = (slot + 1) & self.mask;
        }
        let val = self.vals[slot];
        let mut hole = slot;
        let mut next = (slot + 1) & self.mask;
        while self.keys[next] != EMPTY {
            let ideal = self.slot_of(self.keys[next]);
            // The entry at `next` may fill the hole iff its ideal slot is
            // not cyclically inside (hole, next] — otherwise the move
            // would place it before its probe chain starts.
            let movable = if hole <= next {
                ideal <= hole || ideal > next
            } else {
                ideal <= hole && ideal > next
            };
            if movable {
                self.keys[hole] = self.keys[next];
                self.vals[hole] = self.vals[next];
                hole = next;
            }
            next = (next + 1) & self.mask;
        }
        self.keys[hole] = EMPTY;
        self.vals[hole] = -1;
        self.len -= 1;
        Some(val)
    }

    /// Ensures capacity for `additional` more keys without exceeding
    /// load factor 0.5, rehashing into a larger table if needed.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.len + additional).max(1) * 2;
        if needed <= self.keys.len() {
            return;
        }
        let slots = needed.next_power_of_two();
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![-1; slots]);
        self.mask = slots - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots allocated.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Probe count accumulated by [`Self::get_counting`].
    pub fn probe_count(&self) -> u64 {
        self.probes
    }

    /// Current load factor (`len / slots`), the companion stat to
    /// [`Self::probe_count`]: after a burst of removes and inserts this
    /// reports how full the table actually is post-update.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.keys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = CoordHashMap::with_capacity(4);
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.insert(20, 2), None);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.get(20), Some(2));
        assert_eq!(m.get(30), None);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut m = CoordHashMap::with_capacity(4);
        m.insert(10, 1);
        assert_eq!(m.insert(10, 99), Some(1));
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn build_from_coords() {
        let coords: Vec<Coord> = (0..100).map(|i| Coord::new(0, i, 2 * i, -i)).collect();
        let m = CoordHashMap::build(&coords);
        assert_eq!(m.len(), 100);
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(m.get(c.key()), Some(i as i32));
        }
    }

    #[test]
    fn survives_heavy_collisions() {
        // Sequential keys stress linear probing.
        let mut m = CoordHashMap::with_capacity(1000);
        for k in 0..1000u64 {
            m.insert(k, k as i32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(k as i32));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn counting_get_accumulates_probes() {
        let coords: Vec<Coord> = (0..32).map(|i| Coord::new(0, i, 0, 0)).collect();
        let mut m = CoordHashMap::build(&coords);
        assert_eq!(m.probe_count(), 0);
        m.get_counting(coords[0].key());
        assert!(m.probe_count() >= 1);
    }

    #[test]
    fn capacity_is_power_of_two_and_roomy() {
        let m = CoordHashMap::with_capacity(100);
        assert!(m.capacity() >= 200);
        assert!(m.capacity().is_power_of_two());
    }

    #[test]
    fn remove_then_get_misses() {
        let mut m = CoordHashMap::with_capacity(8);
        for k in 0..8u64 {
            m.insert(k, k as i32);
        }
        assert_eq!(m.remove(3), Some(3));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.get(3), None);
        assert_eq!(m.len(), 7);
        for k in (0..8u64).filter(|&k| k != 3) {
            assert_eq!(m.get(k), Some(k as i32), "key {k} lost by backshift");
        }
    }

    #[test]
    fn backshift_preserves_colliding_cluster() {
        // Sequential keys form long probe clusters; removing from the
        // middle must keep every later cluster member reachable.
        let mut m = CoordHashMap::with_capacity(64);
        for k in 0..64u64 {
            m.insert(k, k as i32);
        }
        for k in (0..64u64).step_by(3) {
            assert_eq!(m.remove(k), Some(k as i32));
        }
        for k in 0..64u64 {
            let expect = if k % 3 == 0 { None } else { Some(k as i32) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
    }

    #[test]
    fn remove_absent_is_none() {
        let mut m = CoordHashMap::with_capacity(4);
        m.insert(1, 1);
        assert_eq!(m.remove(999), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_grows_past_initial_capacity() {
        let mut m = CoordHashMap::with_capacity(2);
        let initial = m.capacity();
        for k in 0..100u64 {
            m.insert(k, k as i32);
        }
        assert!(m.capacity() > initial);
        assert!(m.load_factor() <= 0.5);
        for k in 0..100u64 {
            assert_eq!(m.get(k), Some(k as i32));
        }
    }

    #[test]
    fn set_overwrites_existing_value() {
        let mut m = CoordHashMap::with_capacity(4);
        m.insert(10, 1);
        assert_eq!(m.set(10, 7), Some(1));
        assert_eq!(m.get(10), Some(7));
        assert_eq!(m.set(20, 2), None);
        assert_eq!(m.get(20), Some(2));
    }

    #[test]
    fn load_factor_tracks_updates() {
        let mut m = CoordHashMap::with_capacity(8);
        assert_eq!(m.load_factor(), 0.0);
        for k in 0..8u64 {
            m.insert(k, k as i32);
        }
        let full = m.load_factor();
        assert!(full > 0.0 && full <= 0.5);
        m.remove(0);
        assert!(m.load_factor() < full);
    }

    #[test]
    fn churn_keeps_probe_costs_flat() {
        // Alternate removes and inserts for many rounds; a tombstone
        // scheme would degrade probes, backshift must not.
        let mut m = CoordHashMap::with_capacity(128);
        for k in 0..128u64 {
            m.insert(k, k as i32);
        }
        for round in 0..50u64 {
            for j in 0..32u64 {
                m.remove(round * 32 + j);
                m.insert(10_000 + round * 32 + j, j as i32);
            }
        }
        let before = m.probe_count();
        let mut hits = 0;
        for k in 0..12_000u64 {
            if m.get_counting(k).is_some() {
                hits += 1;
            }
        }
        let probes = m.probe_count() - before;
        assert!(hits > 0);
        // Mean probes per lookup stays near the load-factor-0.5 ideal.
        assert!(
            (probes as f64) < 4.0 * 12_000.0,
            "probe chains degraded: {probes} probes for 12000 lookups"
        );
    }
}
