//! Open-addressing coordinate hash table.
//!
//! GPU sparse-conv libraries build a hash table from coordinate keys to
//! row indices, then issue massively parallel neighbor queries against
//! it. This is the CPU analog: linear probing over a power-of-two table
//! with Fibonacci hashing, no tombstones (the table is insert-only, which
//! matches how kernel maps are built).

use crate::Coord;

const EMPTY: u64 = u64::MAX;

/// Insert-only hash map from packed coordinate keys to `i32` indices.
///
/// # Examples
///
/// ```
/// use ts_kernelmap::{Coord, CoordHashMap};
///
/// let coords = vec![Coord::new(0, 1, 2, 3), Coord::new(0, 4, 5, 6)];
/// let map = CoordHashMap::build(&coords);
/// assert_eq!(map.get(coords[1].key()), Some(1));
/// assert_eq!(map.get(Coord::new(0, 9, 9, 9).key()), None);
/// ```
#[derive(Debug, Clone)]
pub struct CoordHashMap {
    keys: Vec<u64>,
    vals: Vec<i32>,
    mask: usize,
    len: usize,
    probes: u64,
}

impl CoordHashMap {
    /// Creates a table sized for `capacity` insertions (load factor 0.5).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY; slots],
            vals: vec![-1; slots],
            mask: slots - 1,
            len: 0,
            probes: 0,
        }
    }

    /// Builds a table mapping each coordinate's key to its index.
    ///
    /// Duplicate coordinates keep the *first* index (matching the unique
    /// semantics of coordinate quantization).
    pub fn build(coords: &[Coord]) -> Self {
        let mut map = Self::with_capacity(coords.len());
        for (i, c) in coords.iter().enumerate() {
            map.insert(c.key(), i as i32);
        }
        map
    }

    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads the packed coordinate bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Inserts `key -> val`; returns the existing value if the key was
    /// already present (and leaves it unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (reserved sentinel) or the table is full.
    pub fn insert(&mut self, key: u64, val: i32) -> Option<i32> {
        assert_ne!(key, EMPTY, "key u64::MAX is reserved");
        assert!(self.len < self.keys.len(), "hash table is full");
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<i32> {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `key` while counting probe steps (used by mapping-cost
    /// instrumentation).
    pub fn get_counting(&mut self, key: u64) -> Option<i32> {
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots allocated.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Probe count accumulated by [`Self::get_counting`].
    pub fn probe_count(&self) -> u64 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = CoordHashMap::with_capacity(4);
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.insert(20, 2), None);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.get(20), Some(2));
        assert_eq!(m.get(30), None);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut m = CoordHashMap::with_capacity(4);
        m.insert(10, 1);
        assert_eq!(m.insert(10, 99), Some(1));
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn build_from_coords() {
        let coords: Vec<Coord> = (0..100).map(|i| Coord::new(0, i, 2 * i, -i)).collect();
        let m = CoordHashMap::build(&coords);
        assert_eq!(m.len(), 100);
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(m.get(c.key()), Some(i as i32));
        }
    }

    #[test]
    fn survives_heavy_collisions() {
        // Sequential keys stress linear probing.
        let mut m = CoordHashMap::with_capacity(1000);
        for k in 0..1000u64 {
            m.insert(k, k as i32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(k as i32));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn counting_get_accumulates_probes() {
        let coords: Vec<Coord> = (0..32).map(|i| Coord::new(0, i, 0, 0)).collect();
        let mut m = CoordHashMap::build(&coords);
        assert_eq!(m.probe_count(), 0);
        m.get_counting(coords[0].key());
        assert!(m.probe_count() >= 1);
    }

    #[test]
    fn capacity_is_power_of_two_and_roomy() {
        let m = CoordHashMap::with_capacity(100);
        assert!(m.capacity() >= 200);
        assert!(m.capacity().is_power_of_two());
    }
}
