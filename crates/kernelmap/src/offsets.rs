//! The convolution neighborhood Δ³(K).

use serde::{Deserialize, Serialize};

/// The set of kernel offsets Δ³(K) with a stable ordering.
///
/// For odd `K` the offsets are centered (`Δ³(3) = {-1,0,1}³`); for even
/// `K` they cover `{0..K}³` (the convention for stride-2 downsampling
/// convolutions with K=2, as used by MinkUNet).
///
/// # Examples
///
/// ```
/// use ts_kernelmap::KernelOffsets;
///
/// let o = KernelOffsets::cube(3);
/// assert_eq!(o.volume(), 27);
/// assert_eq!(o.delta(13), (0, 0, 0)); // the center offset
/// assert_eq!(o.mirror(0), 26);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelOffsets {
    kernel_size: u32,
    deltas: Vec<(i32, i32, i32)>,
}

impl KernelOffsets {
    /// Creates the cubic neighborhood of size `k` per axis.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn cube(k: u32) -> Self {
        assert!(k > 0, "kernel size must be positive");
        let range: Vec<i32> = if k % 2 == 1 {
            let h = (k / 2) as i32;
            (-h..=h).collect()
        } else {
            (0..k as i32).collect()
        };
        let mut deltas = Vec::with_capacity((k * k * k) as usize);
        for &x in &range {
            for &y in &range {
                for &z in &range {
                    deltas.push((x, y, z));
                }
            }
        }
        Self {
            kernel_size: k,
            deltas,
        }
    }

    /// A degenerate 1x1x1 neighborhood (pointwise convolution).
    pub fn pointwise() -> Self {
        Self::cube(1)
    }

    /// Kernel size per axis.
    pub fn kernel_size(&self) -> u32 {
        self.kernel_size
    }

    /// Number of offsets `K³`.
    pub fn volume(&self) -> usize {
        self.deltas.len()
    }

    /// The `i`-th offset.
    ///
    /// # Panics
    ///
    /// Panics if `i >= volume()`.
    pub fn delta(&self, i: usize) -> (i32, i32, i32) {
        self.deltas[i]
    }

    /// All offsets in order.
    pub fn deltas(&self) -> &[(i32, i32, i32)] {
        &self.deltas
    }

    /// Index of the offset `-delta(i)` (only meaningful for odd kernel
    /// sizes, where the neighborhood is symmetric).
    ///
    /// The ordering is lexicographic over a symmetric range, so mirroring
    /// is index reversal.
    pub fn mirror(&self, i: usize) -> usize {
        debug_assert!(self.kernel_size % 2 == 1, "mirror requires an odd kernel");
        self.volume() - 1 - i
    }

    /// Index of the central (0,0,0) offset, when present.
    pub fn center(&self) -> Option<usize> {
        self.deltas.iter().position(|&d| d == (0, 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_cube_is_centered() {
        let o = KernelOffsets::cube(3);
        assert_eq!(o.volume(), 27);
        assert!(o.deltas().contains(&(-1, -1, -1)));
        assert!(o.deltas().contains(&(1, 1, 1)));
        assert_eq!(o.center(), Some(13));
    }

    #[test]
    fn even_cube_is_positive() {
        let o = KernelOffsets::cube(2);
        assert_eq!(o.volume(), 8);
        assert!(o
            .deltas()
            .iter()
            .all(|&(x, y, z)| x >= 0 && y >= 0 && z >= 0));
        assert_eq!(o.center(), Some(0));
    }

    #[test]
    fn mirror_negates_odd_offsets() {
        let o = KernelOffsets::cube(3);
        for i in 0..o.volume() {
            let (x, y, z) = o.delta(i);
            assert_eq!(o.delta(o.mirror(i)), (-x, -y, -z));
        }
    }

    #[test]
    fn mirror_of_mirror_is_identity() {
        let o = KernelOffsets::cube(5);
        for i in 0..o.volume() {
            assert_eq!(o.mirror(o.mirror(i)), i);
        }
    }

    #[test]
    fn pointwise_has_single_offset() {
        let o = KernelOffsets::pointwise();
        assert_eq!(o.volume(), 1);
        assert_eq!(o.delta(0), (0, 0, 0));
    }

    #[test]
    fn offsets_are_unique() {
        let o = KernelOffsets::cube(5);
        let set: std::collections::HashSet<_> = o.deltas().iter().collect();
        assert_eq!(set.len(), o.volume());
    }
}
