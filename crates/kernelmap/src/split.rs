//! Bitmask sorting, mask splits and redundant-computation accounting.
//!
//! Implicit GEMM executes warps in lockstep: whenever *any* row in a warp
//! has a neighbor at offset k, all rows spend the cycles (Figure 5 of the
//! paper). SpConv v2 reduces this waste by argsorting rows by bitmask
//! (Figure 6); TorchSparse++ generalises to an arbitrary number of *mask
//! splits* (Figure 10): the offset axis is partitioned into `s` ranges,
//! each range is sorted independently and computed as its own (more
//! parallel) GEMM whose partial sums are reduced at the end.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::KernelMap;

/// Number of rows that execute in lockstep for redundancy accounting:
/// one warp's worth of output rows. Whenever any of them has a neighbor
/// at offset k, the whole warp spends the cycles (Figure 5 of the paper
/// illustrates the effect with 4 rows; real kernels skip at warp
/// granularity).
pub const LOCKSTEP_ROWS: usize = 16;

/// Rounds `n` up to a multiple of `m` (the map padding of Section 3.2
/// that eliminates boundary checks).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn pad_to_multiple(n: usize, m: usize) -> usize {
    assert!(m > 0, "padding multiple must be positive");
    n.div_ceil(m) * m
}

/// Argsorts row indices `0..bitmasks.len()` by the bitmask bits within
/// offset range `[k_begin, k_end)`, using the paper's convention: the
/// sub-bitmask is read as a number with the *first* offset as the most
/// significant bit, and rows are sorted ascending (Figure 6: the row with
/// bitmask value 17 computes first). The sort is stable so equal masks
/// keep their spatial locality.
pub fn argsort_by_bitmask(bitmasks: &[u32], k_begin: usize, k_end: usize) -> Vec<u32> {
    let n = bitmasks.len();
    let width = k_end - k_begin;
    if width == 0 {
        return (0..n as u32).collect();
    }
    // Stable LSD radix sort on the keys with the row index carried
    // along: each counting pass is stable, so equal masks keep their
    // original (spatially local) order, matching a stable comparison
    // sort. ceil(width / 11) linear passes beat O(n log n) comparisons
    // on the map sizes the tuner prepares.
    let mut cur: Vec<(u32, u32)> = bitmasks
        .iter()
        .enumerate()
        .map(|(r, &m)| (sort_key(m, k_begin, width), r as u32))
        .collect();
    let mut next = vec![(0u32, 0u32); n];
    let mut shift = 0;
    while shift < width {
        let mut counts = [0u32; RADIX];
        for &(k, _) in &cur {
            counts[(k >> shift) as usize & (RADIX - 1)] += 1;
        }
        prefix_sum(&mut counts);
        for &(k, r) in &cur {
            let d = (k >> shift) as usize & (RADIX - 1);
            next[counts[d] as usize] = (k, r);
            counts[d] += 1;
        }
        std::mem::swap(&mut cur, &mut next);
        shift += DIGIT_BITS;
    }
    cur.into_iter().map(|(_, r)| r).collect()
}

const DIGIT_BITS: usize = 11;
const RADIX: usize = 1 << DIGIT_BITS;

/// MSB-first sort key of the paper's convention ("first offset in the
/// range = most significant bit"): the masked sub-word bit-reversed,
/// computed in O(1) per row. `width` must be in `1..=32`.
#[inline]
fn sort_key(mask: u32, k_begin: usize, width: usize) -> u32 {
    let field: u32 = if width >= 32 { !0 } else { (1u32 << width) - 1 };
    ((mask >> k_begin) & field).reverse_bits() >> (32 - width)
}

#[inline]
fn prefix_sum(counts: &mut [u32; RADIX]) {
    let mut pos = 0u32;
    for c in counts.iter_mut() {
        let run = *c;
        *c = pos;
        pos += run;
    }
}

/// Sorts bare keys ascending with the same LSD radix passes as
/// [`argsort_by_bitmask`] (half the memory traffic when row identities
/// are not needed, e.g. for MAC accounting).
fn radix_sort_keys(keys: &mut Vec<u32>, width: usize) {
    let mut next = vec![0u32; keys.len()];
    let mut shift = 0;
    while shift < width {
        let mut counts = [0u32; RADIX];
        for &k in keys.iter() {
            counts[(k >> shift) as usize & (RADIX - 1)] += 1;
        }
        prefix_sum(&mut counts);
        for &k in keys.iter() {
            let d = (k >> shift) as usize & (RADIX - 1);
            next[counts[d] as usize] = k;
            counts[d] += 1;
        }
        std::mem::swap(keys, &mut next);
        shift += DIGIT_BITS;
    }
}

/// One contiguous offset range of a split plan, with its row ordering.
///
/// The row order is materialised lazily: the cost model only needs MAC
/// counts (computable from the sorted key multiset alone), so the tuner
/// can price thousands of candidate plans without ever scattering row
/// indices; functional executors force the order on first use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitRange {
    /// First offset index (inclusive).
    pub k_begin: usize,
    /// Last offset index (exclusive).
    pub k_end: usize,
    sorted: bool,
    n_rows: usize,
    #[serde(skip)]
    order: OnceLock<Vec<u32>>,
}

impl PartialEq for SplitRange {
    fn eq(&self, other: &Self) -> bool {
        self.k_begin == other.k_begin
            && self.k_end == other.k_end
            && self.sorted == other.sorted
            && self.n_rows == other.n_rows
    }
}

impl SplitRange {
    /// Number of offsets in this range.
    pub fn width(&self) -> usize {
        self.k_end - self.k_begin
    }

    /// True when rows of this range are bitmask-sorted.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Row computation order (indices into the output dimension),
    /// computed on first access and cached.
    ///
    /// # Panics
    ///
    /// Panics if `map` disagrees with the plan's shape, or if a sorted
    /// range is forced on a map without a dense representation.
    pub fn order<'a>(&'a self, map: &KernelMap) -> &'a [u32] {
        self.order.get_or_init(|| {
            assert_eq!(map.n_out(), self.n_rows, "map does not match this plan");
            if self.sorted {
                argsort_by_bitmask(map.bitmasks(), self.k_begin, self.k_end)
            } else {
                (0..self.n_rows as u32).collect()
            }
        })
    }
}

/// A complete mask-split execution plan for implicit GEMM.
///
/// `split_count` uses the paper's encoding: `0` = unsorted single range
/// (Figure 5), `1` = sorted single range (Figure 6, SpConv v2 default),
/// `s >= 2` = `s` independently sorted ranges (Figure 10).
///
/// # Examples
///
/// ```
/// use ts_kernelmap::{KernelMap, SplitPlan};
///
/// let map = KernelMap::from_pairs(2, 2, vec![vec![(0, 0)], vec![(1, 1)], vec![]]);
/// let unsorted = SplitPlan::from_split_count(&map, 0);
/// assert_eq!(unsorted.ranges().len(), 1);
/// let two = SplitPlan::from_split_count(&map, 2);
/// assert_eq!(two.ranges().len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitPlan {
    split_count: u32,
    sorted: bool,
    ranges: Vec<SplitRange>,
    #[serde(skip)]
    unit_counts: OnceLock<Vec<MacCounts>>,
}

impl PartialEq for SplitPlan {
    fn eq(&self, other: &Self) -> bool {
        self.split_count == other.split_count
            && self.sorted == other.sorted
            && self.ranges == other.ranges
    }
}

impl SplitPlan {
    /// Builds the plan for the paper's split encoding `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= 1` and the map has no output-stationary
    /// representation (relational maps cannot be bitmask-sorted).
    pub fn from_split_count(map: &KernelMap, s: u32) -> Self {
        assert!(
            s == 0 || map.has_dense_repr(),
            "sorted implicit GEMM needs an output-stationary map"
        );
        let kvol = map.kernel_volume();
        let n_rows = map.n_out();
        if s == 0 {
            let range = SplitRange {
                k_begin: 0,
                k_end: kvol,
                sorted: false,
                n_rows,
                order: OnceLock::new(),
            };
            return Self {
                split_count: 0,
                sorted: false,
                ranges: vec![range],
                unit_counts: OnceLock::new(),
            };
        }
        let n_ranges = (s as usize).min(kvol.max(1));
        let mut ranges = Vec::with_capacity(n_ranges);
        let base = kvol / n_ranges;
        let extra = kvol % n_ranges;
        let mut k = 0;
        for r in 0..n_ranges {
            let width = base + usize::from(r < extra);
            let (k_begin, k_end) = (k, k + width);
            k = k_end;
            ranges.push(SplitRange {
                k_begin,
                k_end,
                sorted: true,
                n_rows,
                order: OnceLock::new(),
            });
        }
        Self {
            split_count: s,
            sorted: true,
            ranges,
            unit_counts: OnceLock::new(),
        }
    }

    /// Per-range MAC counts at unit channel size (`c_in = c_out = 1`),
    /// computed once and cached (counts scale linearly with
    /// `c_in * c_out`, so executors multiply instead of recounting).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `map` disagrees with the plan's shape.
    pub fn unit_counts<'a>(&'a self, map: &KernelMap) -> &'a [MacCounts] {
        self.unit_counts.get_or_init(|| {
            self.ranges
                .iter()
                .map(|r| mac_counts_range(map, r, LOCKSTEP_ROWS, 1, 1))
                .collect()
        })
    }

    /// The paper's split encoding this plan was built with.
    pub fn split_count(&self) -> u32 {
        self.split_count
    }

    /// True when rows are bitmask-sorted (`split_count >= 1`).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// The offset ranges with their row orders.
    pub fn ranges(&self) -> &[SplitRange] {
        &self.ranges
    }

    /// Number of partial-sum buffers the executor needs (1 means the
    /// output can be written directly).
    pub fn partial_buffers(&self) -> usize {
        self.ranges.len()
    }
}

/// Effective vs. executed MAC counts of an implicit GEMM under a split
/// plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacCounts {
    /// MACs that contribute to the output.
    pub effective: u64,
    /// MACs actually executed, including warp-lockstep waste.
    pub total: u64,
}

impl MacCounts {
    /// `total / effective`; 1.0 for an empty workload.
    pub fn overhead_ratio(&self) -> f64 {
        if self.effective == 0 {
            1.0
        } else {
            self.total as f64 / self.effective as f64
        }
    }
}

/// Counts effective and executed MACs for `map` under `plan`, with
/// `lockstep_rows` rows executing in lockstep and `c_in * c_out` MACs per
/// (row, offset) slot.
///
/// This is the exact computation behind Figures 5, 6, 10 and 11 of the
/// paper: a lockstep group executes offset `k` iff any of its rows has a
/// neighbor there.
pub fn mac_counts(
    map: &KernelMap,
    plan: &SplitPlan,
    lockstep_rows: usize,
    c_in: usize,
    c_out: usize,
) -> MacCounts {
    let mut acc = MacCounts {
        effective: 0,
        total: 0,
    };
    for range in plan.ranges() {
        let c = mac_counts_range(map, range, lockstep_rows, c_in, c_out);
        acc.effective += c.effective;
        acc.total += c.total;
    }
    acc
}

/// [`mac_counts`] restricted to one [`SplitRange`] (one compute kernel).
pub fn mac_counts_range(
    map: &KernelMap,
    range: &SplitRange,
    lockstep_rows: usize,
    c_in: usize,
    c_out: usize,
) -> MacCounts {
    assert!(lockstep_rows > 0, "lockstep group must be non-empty");
    let per_slot = (c_in * c_out) as u64;
    let width = range.width();
    if width == 0 {
        return MacCounts {
            effective: 0,
            total: 0,
        };
    }
    let mut effective = 0u64;
    let mut total = 0u64;
    if map.has_dense_repr() {
        // Bit k of a row's bitmask is set iff the row has a neighbor at
        // offset k, so the per-group active-lane census reduces to
        // popcounts: effective slots are set bits per row, and the group
        // executes offset k (all lanes) iff any row has bit k set. The
        // census only needs the *multiset* of masks in execution order —
        // popcount and OR commute with the key's bit reversal — so a
        // keys-only radix sort reproduces the sorted order's counts
        // without ever materialising row indices.
        let mut keys: Vec<u32> = map
            .bitmasks()
            .iter()
            .map(|&m| sort_key(m, range.k_begin, width))
            .collect();
        if range.is_sorted() {
            radix_sort_keys(&mut keys, width);
        }
        for group in keys.chunks(lockstep_rows) {
            let mut or_mask = 0u32;
            for &k in group {
                effective += u64::from(k.count_ones());
                or_mask |= k;
            }
            // All lockstep lanes spend the cycles on every executed
            // offset, including the padding lanes of a ragged final group.
            total += u64::from(or_mask.count_ones()) * lockstep_rows as u64;
        }
    } else {
        for group in range.order(map).chunks(lockstep_rows) {
            for k in range.k_begin..range.k_end {
                let active = group
                    .iter()
                    .filter(|&&r| map.neighbor(r as usize, k).is_some())
                    .count() as u64;
                if active > 0 {
                    effective += active;
                    total += lockstep_rows as u64;
                }
            }
        }
    }
    MacCounts {
        effective: effective * per_slot,
        total: total * per_slot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8-output example of paper Figures 5/6/10, reconstructed from
    /// the decimal bitmask values in Figure 6a (x0=25, x1=58, x2=52,
    /// x3=464, x4=17, x5=20, x6=272, x7=80; leftmost offset = MSB).
    fn paper_example() -> KernelMap {
        let rows: [[u8; 9]; 8] = [
            [0, 0, 0, 0, 1, 1, 0, 0, 1],
            [0, 0, 0, 1, 1, 1, 0, 1, 0],
            [0, 0, 0, 1, 1, 0, 1, 0, 0],
            [1, 1, 1, 0, 1, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, 0, 0, 0, 1],
            [0, 0, 0, 0, 1, 0, 1, 0, 0],
            [1, 0, 0, 0, 1, 0, 0, 0, 0],
            [0, 0, 1, 0, 1, 0, 0, 0, 0],
        ];
        let mut pairs = vec![Vec::new(); 9];
        for (o, row) in rows.iter().enumerate() {
            for (k, &bit) in row.iter().enumerate() {
                if bit == 1 {
                    // Input index is irrelevant for MAC counting; use o.
                    pairs[k].push((o as u32, o as u32));
                }
            }
        }
        KernelMap::from_pairs(8, 8, pairs)
    }

    #[test]
    fn unsorted_redundancy_matches_paper_figure5() {
        let map = paper_example();
        let plan = SplitPlan::from_split_count(&map, 0);
        let c = mac_counts(&map, &plan, 4, 1, 1);
        // Paper: 22 effective MACs, 34 redundant => 56 executed.
        assert_eq!(c.effective, 22);
        assert_eq!(c.total, 56);
    }

    #[test]
    fn sorting_reduces_redundancy_like_figure6() {
        let map = paper_example();
        let unsorted = mac_counts(&map, &SplitPlan::from_split_count(&map, 0), 4, 1, 1);
        let sorted = mac_counts(&map, &SplitPlan::from_split_count(&map, 1), 4, 1, 1);
        // Paper: redundant MACs drop from 34 to 26.
        assert_eq!(unsorted.total - unsorted.effective, 34);
        assert_eq!(sorted.total - sorted.effective, 26);
        assert_eq!(sorted.effective, unsorted.effective);
    }

    #[test]
    fn more_splits_do_not_increase_redundancy() {
        let map = paper_example();
        let mut prev = u64::MAX;
        for s in 1..=4u32 {
            let c = mac_counts(&map, &SplitPlan::from_split_count(&map, s), 4, 1, 1);
            assert!(c.total <= prev, "splits={s} total={} prev={prev}", c.total);
            prev = c.total;
        }
    }

    #[test]
    fn three_splits_match_paper_figure10() {
        let map = paper_example();
        let plan = SplitPlan::from_split_count(&map, 3);
        let c = mac_counts(&map, &plan, 4, 1, 1);
        // Paper: redundant computation drops to 22 effective + 22 waste = 44
        // ("redundant computation is further reduced from 26 to 22").
        assert_eq!(c.effective, 22);
        assert_eq!(c.total - c.effective, 22);
    }

    #[test]
    fn argsort_is_ascending_msb_first() {
        let masks = vec![0b001, 0b111, 0b010, 0b110];
        // Keys (offset 0 = MSB over range 0..3): 4, 7, 2, 3.
        let order = argsort_by_bitmask(&masks, 0, 3);
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn argsort_respects_range() {
        let masks = vec![0b100, 0b011];
        // Only bit 2 considered: row 1 (bit clear) sorts first.
        let order = argsort_by_bitmask(&masks, 2, 3);
        assert_eq!(order[0], 1);
        // Only bits 0..2: row 0 (no bits set) sorts first.
        let order = argsort_by_bitmask(&masks, 0, 2);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn argsort_matches_paper_figure6_order() {
        let map = paper_example();
        let order = argsort_by_bitmask(map.bitmasks(), 0, 9);
        // Paper Figure 6a ranks: x4 1st, x5 2nd, x0 3rd, x2 4th, x1 5th,
        // x7 6th, x6 7th, x3 8th.
        assert_eq!(order, vec![4, 5, 0, 2, 1, 7, 6, 3]);
    }

    #[test]
    fn split_ranges_partition_offsets() {
        let map = paper_example();
        for s in 1..=5u32 {
            let plan = SplitPlan::from_split_count(&map, s);
            let mut covered = vec![false; map.kernel_volume()];
            for r in plan.ranges() {
                for (k, slot) in covered.iter_mut().enumerate().take(r.k_end).skip(r.k_begin) {
                    assert!(!*slot, "offset {k} covered twice");
                    *slot = true;
                }
                assert_eq!(r.order(&map).len(), map.n_out());
            }
            assert!(covered.iter().all(|&c| c));
        }
    }

    #[test]
    fn split_zero_is_identity_order() {
        let map = paper_example();
        let plan = SplitPlan::from_split_count(&map, 0);
        assert!(!plan.is_sorted());
        assert_eq!(plan.ranges()[0].order(&map), (0..8u32).collect::<Vec<_>>());
    }

    #[test]
    fn radix_argsort_matches_stable_comparison_sort() {
        // Deterministic pseudo-random masks over the full 32-bit width.
        let mut state = 0x2545_f491u32;
        let masks: Vec<u32> = (0..1000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state
            })
            .collect();
        for (k_begin, k_end) in [(0, 32), (0, 27), (5, 14), (9, 9), (31, 32), (0, 1)] {
            let fast = argsort_by_bitmask(&masks, k_begin, k_end);
            let mut reference: Vec<u32> = (0..masks.len() as u32).collect();
            reference.sort_by_key(|&r| {
                let mut v = 0u64;
                for k in k_begin..k_end {
                    v = (v << 1) | u64::from((masks[r as usize] >> k) & 1);
                }
                v
            });
            assert_eq!(fast, reference, "range [{k_begin}, {k_end})");
        }
    }

    #[test]
    fn bitmask_census_matches_neighbor_lookup_reference() {
        let map = paper_example();
        for s in 0..=4u32 {
            let plan = SplitPlan::from_split_count(&map, s);
            for lockstep in [1, 3, 4, 16] {
                for range in plan.ranges() {
                    let fast = mac_counts_range(&map, range, lockstep, 2, 3);
                    let mut effective = 0u64;
                    let mut total = 0u64;
                    for group in range.order(&map).chunks(lockstep) {
                        for k in range.k_begin..range.k_end {
                            let active = group
                                .iter()
                                .filter(|&&r| map.neighbor(r as usize, k).is_some())
                                .count() as u64;
                            if active > 0 {
                                effective += active;
                                total += lockstep as u64;
                            }
                        }
                    }
                    assert_eq!(
                        fast,
                        MacCounts {
                            effective: effective * 6,
                            total: total * 6
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn padding_rounds_up() {
        assert_eq!(pad_to_multiple(0, 128), 0);
        assert_eq!(pad_to_multiple(1, 128), 128);
        assert_eq!(pad_to_multiple(128, 128), 128);
        assert_eq!(pad_to_multiple(129, 128), 256);
    }

    #[test]
    fn overhead_ratio_of_empty_map_is_one() {
        let c = MacCounts {
            effective: 0,
            total: 0,
        };
        assert_eq!(c.overhead_ratio(), 1.0);
    }
}
