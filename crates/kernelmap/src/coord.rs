//! Quantized point-cloud coordinates.

use serde::{Deserialize, Serialize};

/// A quantized coordinate in batched 3D space: `(batch, x, y, z)`.
///
/// Spatial components are voxel indices after quantization
/// `p = floor(p_raw / voxel_size)` and may be negative. Each component
/// must fit in 16 bits (with a +32768 bias) so coordinates pack into a
/// single `u64` hash key — the same trick GPU libraries use.
///
/// # Examples
///
/// ```
/// use ts_kernelmap::Coord;
///
/// let c = Coord::new(0, -5, 3, 12);
/// assert_eq!(Coord::from_key(c.key()), c);
/// assert_eq!(c.offset((1, 0, -1)), Coord::new(0, -4, 3, 11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Batch index.
    pub batch: i32,
    /// Voxel index along x.
    pub x: i32,
    /// Voxel index along y.
    pub y: i32,
    /// Voxel index along z.
    pub z: i32,
}

const BIAS: i64 = 1 << 15;
const RANGE: i64 = 1 << 16;

impl Coord {
    /// Creates a coordinate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component is outside `[-32768, 32767]`.
    pub fn new(batch: i32, x: i32, y: i32, z: i32) -> Self {
        debug_assert!(
            [batch, x, y, z]
                .iter()
                .all(|&v| (-(BIAS as i32)..BIAS as i32).contains(&v)),
            "coordinate component out of 16-bit range: ({batch},{x},{y},{z})"
        );
        Self { batch, x, y, z }
    }

    /// Packs the coordinate into a unique 64-bit key.
    pub fn key(self) -> u64 {
        let b = (self.batch as i64 + BIAS) as u64;
        let x = (self.x as i64 + BIAS) as u64;
        let y = (self.y as i64 + BIAS) as u64;
        let z = (self.z as i64 + BIAS) as u64;
        (b << 48) | (x << 32) | (y << 16) | z
    }

    /// Inverse of [`Coord::key`].
    pub fn from_key(key: u64) -> Self {
        let unpack = |v: u64| (v as i64 % RANGE - BIAS) as i32;
        Self {
            batch: unpack(key >> 48),
            x: unpack((key >> 32) & 0xffff),
            y: unpack((key >> 16) & 0xffff),
            z: unpack(key & 0xffff),
        }
    }

    /// Translates the spatial components by `(dx, dy, dz)`.
    pub fn offset(self, (dx, dy, dz): (i32, i32, i32)) -> Self {
        Self {
            batch: self.batch,
            x: self.x + dx,
            y: self.y + dy,
            z: self.z + dz,
        }
    }

    /// Scales the spatial components by `stride` (used to map a
    /// downsampled output coordinate back to input resolution).
    pub fn upscale(self, stride: i32) -> Self {
        Self {
            batch: self.batch,
            x: self.x * stride,
            y: self.y * stride,
            z: self.z * stride,
        }
    }

    /// Floor-divides the spatial components by `stride` (coordinate
    /// downsampling; correct for negative coordinates).
    ///
    /// # Panics
    ///
    /// Panics if `stride <= 0`.
    pub fn downsample(self, stride: i32) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            batch: self.batch,
            x: self.x.div_euclid(stride),
            y: self.y.div_euclid(stride),
            z: self.z.div_euclid(stride),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip() {
        for c in [
            Coord::new(0, 0, 0, 0),
            Coord::new(3, -100, 250, -32768),
            Coord::new(0, 32767, -1, 1),
        ] {
            assert_eq!(Coord::from_key(c.key()), c);
        }
    }

    #[test]
    fn keys_are_unique_for_distinct_coords() {
        let coords = [
            Coord::new(0, 1, 0, 0),
            Coord::new(0, 0, 1, 0),
            Coord::new(0, 0, 0, 1),
            Coord::new(1, 0, 0, 0),
            Coord::new(0, -1, 0, 0),
        ];
        let keys: std::collections::HashSet<_> = coords.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), coords.len());
    }

    #[test]
    fn downsample_floors_negatives() {
        let c = Coord::new(0, -1, -2, -3);
        let d = c.downsample(2);
        assert_eq!(d, Coord::new(0, -1, -1, -2));
    }

    #[test]
    fn downsample_then_upscale_is_floor() {
        let c = Coord::new(0, 5, -5, 7);
        let back = c.downsample(2).upscale(2);
        assert_eq!(back, Coord::new(0, 4, -6, 6));
    }

    #[test]
    fn offset_translates_spatial_only() {
        let c = Coord::new(2, 1, 1, 1).offset((-1, 0, 2));
        assert_eq!(c, Coord::new(2, 0, 1, 3));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Coord::new(0, 1, 0, 0), Coord::new(0, 0, 0, 0)];
        v.sort();
        assert_eq!(v[0], Coord::new(0, 0, 0, 0));
    }
}
