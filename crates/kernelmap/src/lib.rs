//! Coordinate management and kernel-map construction for sparse
//! convolution.
//!
//! A sparse convolution layer first builds *kernel maps*: for every
//! kernel offset δ, the set of (input, output) pairs with
//! `p_in = stride * q_out + δ` (Equation 1 of the TorchSparse++ paper).
//! This crate implements the full mapping pipeline of the paper:
//!
//! * [`Coord`] — quantized 4D (batch, x, y, z) coordinates with packed
//!   64-bit keys;
//! * [`CoordHashMap`] — an open-addressing hash table (the GPU hash-table
//!   analog) used for neighbor queries;
//! * [`KernelOffsets`] — the neighborhood Δ³(K) with a stable offset
//!   ordering and mirror lookup;
//! * [`KernelMap`] — both the *weight-stationary* representation (pair
//!   lists per offset, used by gather-GEMM-scatter and fetch-on-demand)
//!   and the *output-stationary* representation (neighbor matrix plus
//!   per-output bitmask, used by implicit GEMM), with transposition for
//!   backward data gradients;
//! * [`build_submanifold_map`] / [`build_strided_map`] — map builders for
//!   the two convolution kinds in MinkUNet/CenterPoint;
//! * [`SplitPlan`] — bitmask argsorting and arbitrary *mask splits*
//!   (Figure 10), plus exact redundant-computation accounting under warp
//!   lockstep (Figures 5, 6, 11);
//! * [`IncrementalMap`] — temporal delta-patching of submanifold maps
//!   across streaming frames, with churn-thresholded fallback to a full
//!   rebuild.
//!
//! # Examples
//!
//! ```
//! use ts_kernelmap::{build_submanifold_map, Coord, KernelOffsets};
//!
//! let coords = vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)];
//! let offsets = KernelOffsets::cube(3);
//! let map = build_submanifold_map(&coords, &offsets);
//! assert_eq!(map.n_out(), 2);
//! // Each point sees itself plus its one neighbor.
//! assert_eq!(map.total_pairs(), 4);
//! ```

mod build;
mod check;
mod coord;
mod delta;
mod hashmap;
mod map;
mod offsets;
mod split;

pub use build::{
    build_strided_map, build_strided_map_with_stats, build_submanifold_map,
    build_submanifold_map_with_stats, downsample_coords, unique_coords, MapStats,
};
pub use check::{check_map, check_plan, MapViolation};
pub use coord::Coord;
pub use delta::{DeltaConfig, IncrementalMap, MapUpdate, UpdateOutcome};
pub use hashmap::CoordHashMap;
pub use map::KernelMap;
pub use offsets::KernelOffsets;
pub use split::{
    argsort_by_bitmask, mac_counts, mac_counts_range, pad_to_multiple, MacCounts, SplitPlan,
    SplitRange, LOCKSTEP_ROWS,
};
