//! Structural invariant checking for kernel maps and split plans.
//!
//! [`KernelMap::from_pairs`] panics on malformed input, which is the
//! right contract for in-process construction — but deserialized,
//! transposed or fuzzer-built maps want a *reporting* pass instead: one
//! that walks the structure and returns every violated invariant as a
//! typed [`MapViolation`]. `ts-core` runs this pass in debug builds
//! when compiling a session, and `ts-verify` exposes it as part of the
//! differential conformance harness.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{pad_to_multiple, KernelMap, SplitPlan};

/// One violated kernel-map or split-plan invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapViolation {
    /// A pair references an input or output index outside the map.
    PairIndexOutOfRange {
        /// Kernel offset of the offending pair list.
        offset: usize,
        /// Input index of the pair.
        input: u32,
        /// Output index of the pair.
        output: u32,
        /// Number of input points the map declares.
        n_in: usize,
        /// Number of output points the map declares.
        n_out: usize,
    },
    /// The same `(offset, input, output)` pair appears more than once.
    DuplicatePair {
        /// Kernel offset the pair repeats under.
        offset: usize,
        /// Input index of the pair.
        input: u32,
        /// Output index of the pair.
        output: u32,
    },
    /// The output-stationary views disagree with the pair lists: bit
    /// `offset` of output `output`'s bitmask does not match whether a
    /// pair exists there.
    BitmaskInconsistent {
        /// Output row whose bitmask is wrong.
        output: usize,
        /// Kernel offset of the disagreeing bit.
        offset: usize,
        /// Whether the bitmask claims a neighbor.
        mask_bit: bool,
        /// Whether the pair lists record a neighbor.
        has_pair: bool,
    },
    /// The neighbor matrix records a different input than the pair list
    /// for the same `(output, offset)` slot.
    NeighborInconsistent {
        /// Output row of the slot.
        output: usize,
        /// Kernel offset of the slot.
        offset: usize,
        /// Input recorded in the neighbor matrix (`None` = no neighbor).
        neighbor: Option<u32>,
    },
    /// The plan's ranges do not partition `[0, kernel_volume)`: an
    /// offset is covered zero or multiple times.
    SplitNotPartition {
        /// The offset covered `covered` times.
        offset: usize,
        /// How many ranges covered it.
        covered: usize,
    },
    /// A range's row order is not a permutation of `0..n_out`.
    SplitOrderNotPermutation {
        /// Index of the offending range in the plan.
        range: usize,
    },
    /// The padded row count for a range is not the minimal multiple of
    /// `cta_m` covering the map's rows.
    PaddingNotMinimal {
        /// Rows the map has.
        rows: usize,
        /// Rows after padding.
        padded: usize,
        /// CTA row-tile size the padding must be a multiple of.
        cta_m: usize,
    },
}

impl fmt::Display for MapViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapViolation::PairIndexOutOfRange {
                offset,
                input,
                output,
                n_in,
                n_out,
            } => write!(
                f,
                "offset {offset}: pair ({input}, {output}) outside {n_in}x{n_out} map"
            ),
            MapViolation::DuplicatePair {
                offset,
                input,
                output,
            } => write!(f, "offset {offset}: duplicate pair ({input}, {output})"),
            MapViolation::BitmaskInconsistent {
                output,
                offset,
                mask_bit,
                has_pair,
            } => write!(
                f,
                "output {output} offset {offset}: bitmask bit {mask_bit} but pair present = {has_pair}"
            ),
            MapViolation::NeighborInconsistent {
                output,
                offset,
                neighbor,
            } => write!(
                f,
                "output {output} offset {offset}: neighbor matrix says {neighbor:?}, pair lists disagree"
            ),
            MapViolation::SplitNotPartition { offset, covered } => {
                write!(f, "offset {offset} covered by {covered} split ranges")
            }
            MapViolation::SplitOrderNotPermutation { range } => {
                write!(f, "split range {range}: row order is not a permutation")
            }
            MapViolation::PaddingNotMinimal {
                rows,
                padded,
                cta_m,
            } => write!(
                f,
                "{rows} rows padded to {padded}, not the minimal multiple of cta_m = {cta_m}"
            ),
        }
    }
}

/// Checks every structural invariant of `map`, returning one
/// [`MapViolation`] per defect (empty = clean).
///
/// Checked invariants:
/// * every pair's indices are inside `n_in x n_out`;
/// * no `(offset, input, output)` pair repeats;
/// * when the output-stationary representation exists, the bitmasks
///   and neighbor matrix agree slot-for-slot with the pair lists.
pub fn check_map(map: &KernelMap) -> Vec<MapViolation> {
    let mut out = Vec::new();
    let (n_in, n_out, kvol) = (map.n_in(), map.n_out(), map.kernel_volume());
    let mut seen: HashSet<(usize, u32, u32)> = HashSet::new();
    for (k, list) in map.all_pairs().iter().enumerate() {
        for &(i, o) in list {
            if (i as usize) >= n_in || (o as usize) >= n_out {
                out.push(MapViolation::PairIndexOutOfRange {
                    offset: k,
                    input: i,
                    output: o,
                    n_in,
                    n_out,
                });
                continue;
            }
            if !seen.insert((k, i, o)) {
                out.push(MapViolation::DuplicatePair {
                    offset: k,
                    input: i,
                    output: o,
                });
            }
        }
    }
    if map.has_dense_repr() {
        // The dense views are only well-defined once pair indices are in
        // range; cross-checking them against corrupt indices would just
        // duplicate the reports above.
        let indices_ok = !out
            .iter()
            .any(|v| matches!(v, MapViolation::PairIndexOutOfRange { .. }));
        if indices_ok {
            for o in 0..n_out {
                let mask = map.bitmasks()[o];
                for k in 0..kvol {
                    let pair = map.all_pairs()[k]
                        .iter()
                        .rev()
                        .find(|&&(_, q)| q as usize == o)
                        .map(|&(i, _)| i);
                    let mask_bit = mask & (1 << k) != 0;
                    if mask_bit != pair.is_some() {
                        out.push(MapViolation::BitmaskInconsistent {
                            output: o,
                            offset: k,
                            mask_bit,
                            has_pair: pair.is_some(),
                        });
                    }
                    // `from_pairs` writes the *last* pair into a slot, so
                    // cross-check against the last matching pair.
                    let neighbor = map.neighbor(o, k);
                    if neighbor != pair {
                        out.push(MapViolation::NeighborInconsistent {
                            output: o,
                            offset: k,
                            neighbor,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Checks a [`SplitPlan`] against its map: ranges must partition the
/// offset axis, every sorted range's row order must be a permutation of
/// the output rows, and padding each range to `cta_m` rows must be the
/// minimal covering multiple.
pub fn check_plan(map: &KernelMap, plan: &SplitPlan, cta_m: usize) -> Vec<MapViolation> {
    let mut out = Vec::new();
    let kvol = map.kernel_volume();
    let mut covered = vec![0usize; kvol];
    for r in plan.ranges() {
        for slot in covered.iter_mut().take(r.k_end.min(kvol)).skip(r.k_begin) {
            *slot += 1;
        }
    }
    for (offset, &count) in covered.iter().enumerate() {
        if count != 1 {
            out.push(MapViolation::SplitNotPartition {
                offset,
                covered: count,
            });
        }
    }
    for (ri, r) in plan.ranges().iter().enumerate() {
        let order = r.order(map);
        let mut seen = vec![false; map.n_out()];
        let mut ok = order.len() == map.n_out();
        for &row in order {
            match seen.get_mut(row as usize) {
                Some(s) if !*s => *s = true,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            out.push(MapViolation::SplitOrderNotPermutation { range: ri });
        }
    }
    if cta_m > 0 {
        let padded = pad_to_multiple(map.n_out(), cta_m);
        if !padded.is_multiple_of(cta_m) || padded < map.n_out() || padded - map.n_out() >= cta_m {
            out.push(MapViolation::PaddingNotMinimal {
                rows: map.n_out(),
                padded,
                cta_m,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_submanifold_map, Coord, KernelOffsets};

    fn map() -> KernelMap {
        let coords: Vec<Coord> = (0..30).map(|i| Coord::new(0, i % 6, i / 6, 0)).collect();
        build_submanifold_map(&coords, &KernelOffsets::cube(3))
    }

    #[test]
    fn built_maps_are_clean() {
        let m = map();
        assert!(check_map(&m).is_empty());
        assert!(check_map(&m.transposed()).is_empty());
    }

    #[test]
    fn duplicate_pairs_are_reported() {
        let m = KernelMap::from_pairs(2, 2, vec![vec![(0, 0), (0, 0)], vec![(1, 1)]]);
        let v = check_map(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, MapViolation::DuplicatePair { offset: 0, .. })));
    }

    #[test]
    fn relational_maps_skip_dense_checks() {
        let m = KernelMap::from_relational_pairs(2, 1, vec![vec![(0, 0), (1, 0)]]);
        assert!(check_map(&m).is_empty(), "multi-edges are legal here");
    }

    #[test]
    fn plans_of_all_split_counts_are_clean() {
        let m = map();
        for s in 0..=6 {
            let plan = SplitPlan::from_split_count(&m, s);
            assert!(check_plan(&m, &plan, 128).is_empty(), "splits = {s}");
        }
    }

    #[test]
    fn empty_map_plan_is_clean() {
        let m = KernelMap::from_pairs(0, 0, vec![vec![], vec![], vec![]]);
        let plan = SplitPlan::from_split_count(&m, 2);
        assert!(check_map(&m).is_empty());
        assert!(check_plan(&m, &plan, 128).is_empty());
    }

    #[test]
    fn violations_render() {
        let m = KernelMap::from_pairs(2, 2, vec![vec![(0, 0), (0, 0)]]);
        for v in check_map(&m) {
            assert!(!v.to_string().is_empty());
        }
    }
}
