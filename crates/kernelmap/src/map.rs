//! The kernel map: input/output pairs per kernel offset, in both
//! weight-stationary and output-stationary representations.

use serde::{Deserialize, Serialize};

/// Kernel map of one sparse convolution layer.
///
/// Holds the two representations the paper contrasts in Section 4.2:
///
/// * **weight-stationary** — per offset δ, the pair list
///   `M_δ = {(p_j, q_k) | p_j = s*q_k + δ}` used by gather-GEMM-scatter
///   and fetch-on-demand;
/// * **output-stationary** — the `N_out x K³` neighbor matrix
///   (`-1` = no neighbor) plus a per-output bitmask, used by implicit
///   GEMM.
///
/// Both are built eagerly from the same pair stream; the *cost* of
/// building each on the simulated GPU is charged separately by the layer
/// runner, which is what makes intra-group heterogeneous dataflows
/// expensive exactly as the paper describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMap {
    n_in: usize,
    n_out: usize,
    kvol: usize,
    pairs: Vec<Vec<(u32, u32)>>,
    neighbors: Vec<i32>,
    bitmasks: Vec<u32>,
    multi_edges: bool,
    dense_repr: bool,
}

impl KernelMap {
    /// Builds a map from per-offset `(input, output)` pair lists.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an index out of range, or if
    /// `kvol > 32` (bitmasks are 32-bit; the paper's largest kernel is
    /// 3³ = 27 — relational graph maps with more relations should use
    /// [`KernelMap::from_relational_pairs`]).
    pub fn from_pairs(n_in: usize, n_out: usize, pairs: Vec<Vec<(u32, u32)>>) -> Self {
        let kvol = pairs.len();
        assert!(
            kvol <= 32,
            "kernel volume {kvol} exceeds 32-bit bitmask capacity"
        );
        let mut neighbors = vec![-1i32; n_out * kvol];
        let mut bitmasks = vec![0u32; n_out];
        let mut multi_edges = false;
        for (k, list) in pairs.iter().enumerate() {
            for &(i, o) in list {
                assert!((i as usize) < n_in, "input index {i} out of range {n_in}");
                assert!(
                    (o as usize) < n_out,
                    "output index {o} out of range {n_out}"
                );
                let slot = o as usize * kvol + k;
                if neighbors[slot] != -1 {
                    multi_edges = true;
                }
                neighbors[slot] = i as i32;
                bitmasks[o as usize] |= 1 << k;
            }
        }
        Self {
            n_in,
            n_out,
            kvol,
            pairs,
            neighbors,
            bitmasks,
            multi_edges,
            dense_repr: true,
        }
    }

    /// Builds a weight-stationary-only map from relational edge lists
    /// (one list per relation). No output-stationary representation is
    /// materialised — relational maps have unbounded relations and
    /// multi-edges, so only the gather-scatter and fetch-on-demand
    /// dataflows apply (exactly how the paper runs R-GCN).
    pub fn from_relational_pairs(n_in: usize, n_out: usize, pairs: Vec<Vec<(u32, u32)>>) -> Self {
        let kvol = pairs.len();
        for list in &pairs {
            for &(i, o) in list {
                assert!((i as usize) < n_in, "input index {i} out of range {n_in}");
                assert!(
                    (o as usize) < n_out,
                    "output index {o} out of range {n_out}"
                );
            }
        }
        Self {
            n_in,
            n_out,
            kvol,
            pairs,
            neighbors: Vec::new(),
            bitmasks: Vec::new(),
            multi_edges: true,
            dense_repr: false,
        }
    }

    /// True when the output-stationary (neighbor-matrix) representation
    /// exists; implicit GEMM requires it.
    pub fn has_dense_repr(&self) -> bool {
        self.dense_repr
    }

    /// Number of input points.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output points.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Kernel volume `K³` (number of offsets).
    pub fn kernel_volume(&self) -> usize {
        self.kvol
    }

    /// Weight-stationary pair list for offset `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= kernel_volume()`.
    pub fn pairs(&self, k: usize) -> &[(u32, u32)] {
        &self.pairs[k]
    }

    /// All weight-stationary pair lists.
    pub fn all_pairs(&self) -> &[Vec<(u32, u32)>] {
        &self.pairs
    }

    /// Output-stationary neighbor matrix, row-major `N_out x K³`;
    /// entry `-1` means "no neighbor".
    pub fn neighbors(&self) -> &[i32] {
        &self.neighbors
    }

    /// Neighbor of output `o` at offset `k` (`None` when absent).
    ///
    /// # Panics
    ///
    /// Panics if the map has no dense representation
    /// (see [`KernelMap::has_dense_repr`]).
    pub fn neighbor(&self, o: usize, k: usize) -> Option<u32> {
        assert!(
            self.dense_repr,
            "map has no output-stationary representation"
        );
        let v = self.neighbors[o * self.kvol + k];
        (v >= 0).then_some(v as u32)
    }

    /// Per-output neighbor-presence bitmasks (bit `k` set iff offset `k`
    /// has a neighbor).
    pub fn bitmasks(&self) -> &[u32] {
        &self.bitmasks
    }

    /// True when some (output, offset) slot received more than one input
    /// (possible for relational graph maps, never for convolutions).
    /// Implicit GEMM requires this to be `false`.
    pub fn has_multi_edges(&self) -> bool {
        self.multi_edges
    }

    /// Total number of (input, output) pairs across all offsets.
    pub fn total_pairs(&self) -> u64 {
        self.pairs.iter().map(|p| p.len() as u64).sum()
    }

    /// Number of pairs for each offset.
    pub fn pairs_per_offset(&self) -> Vec<usize> {
        self.pairs.iter().map(Vec::len).collect()
    }

    /// Mean number of neighbors per output point (the paper quotes
    /// 4–10 for real LiDAR workloads).
    pub fn avg_neighbors(&self) -> f64 {
        if self.n_out == 0 {
            return 0.0;
        }
        self.total_pairs() as f64 / self.n_out as f64
    }

    /// Effective MACs of a convolution through this map with the given
    /// channel counts (no warp waste).
    pub fn effective_macs(&self, c_in: usize, c_out: usize) -> u64 {
        self.total_pairs() * c_in as u64 * c_out as u64
    }

    /// Histogram of neighbor counts: entry `i` is the number of output
    /// points with exactly `i` neighbors (length `kernel_volume() + 1`).
    ///
    /// Useful for validating synthetic workloads against the paper's
    /// "4-10 neighbors per point" characterisation.
    pub fn neighbor_histogram(&self) -> Vec<u64> {
        let mut counts = vec![0u32; self.n_out];
        for list in &self.pairs {
            for &(_, o) in list {
                counts[o as usize] += 1;
            }
        }
        let mut hist = vec![0u64; self.kvol + 1];
        for c in counts {
            let idx = (c as usize).min(self.kvol);
            hist[idx] += 1;
        }
        hist
    }

    /// Approximate DRAM footprint of this map's structures in bytes:
    /// weight-stationary pair lists (8 B/pair) plus the dense
    /// output-stationary matrix and bitmasks when present.
    pub fn memory_bytes(&self) -> u64 {
        let pairs = self.total_pairs() * 8;
        let dense = if self.dense_repr {
            (self.neighbors.len() * 4 + self.bitmasks.len() * 4) as u64
        } else {
            0
        };
        pairs + dense
    }

    /// Mutable access to the pair lists, neighbor matrix and bitmasks,
    /// for the incremental delta engine (`crate::delta`) only. Callers
    /// must leave the three views consistent (checked by
    /// [`crate::check_map`] in debug builds after every patch) and may
    /// not introduce multi-edges.
    ///
    /// # Panics
    ///
    /// Panics if the map has no dense representation — relational maps
    /// cannot be patched.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&mut Vec<Vec<(u32, u32)>>, &mut Vec<i32>, &mut Vec<u32>) {
        assert!(self.dense_repr, "cannot patch a relational map in place");
        (&mut self.pairs, &mut self.neighbors, &mut self.bitmasks)
    }

    /// Sets the point count after an in-place patch (submanifold maps
    /// have `n_in == n_out`).
    pub(crate) fn set_point_count(&mut self, n: usize) {
        self.n_in = n;
        self.n_out = n;
    }

    /// The transposed map: every pair `(p, q)` becomes `(q, p)` under the
    /// same offset index.
    ///
    /// This is the map used by the dgrad (input-gradient) kernel, which
    /// convolves output gradients with transposed weights; it is also the
    /// map of an inverse/transposed convolution layer, which is why
    /// decoder layers in U-Nets can *reuse* encoder maps (the grouping
    /// property the Sparse Autotuner exploits).
    pub fn transposed(&self) -> KernelMap {
        let pairs: Vec<Vec<(u32, u32)>> = self
            .pairs
            .iter()
            .map(|list| list.iter().map(|&(i, o)| (o, i)).collect())
            .collect();
        if self.dense_repr {
            KernelMap::from_pairs(self.n_out, self.n_in, pairs)
        } else {
            KernelMap::from_relational_pairs(self.n_out, self.n_in, pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> KernelMap {
        // 3 inputs, 2 outputs, 3 offsets.
        KernelMap::from_pairs(3, 2, vec![vec![(0, 0), (1, 1)], vec![(2, 0)], vec![]])
    }

    #[test]
    fn pair_and_neighbor_views_agree() {
        let m = sample_map();
        assert_eq!(m.total_pairs(), 3);
        assert_eq!(m.neighbor(0, 0), Some(0));
        assert_eq!(m.neighbor(0, 1), Some(2));
        assert_eq!(m.neighbor(0, 2), None);
        assert_eq!(m.neighbor(1, 0), Some(1));
        assert_eq!(m.bitmasks(), &[0b011, 0b001]);
    }

    #[test]
    fn transpose_round_trip_preserves_pairs() {
        let m = sample_map();
        let t = m.transposed();
        assert_eq!(t.n_in(), 2);
        assert_eq!(t.n_out(), 3);
        assert_eq!(t.total_pairs(), m.total_pairs());
        let back = t.transposed();
        assert_eq!(back.all_pairs(), m.all_pairs());
    }

    #[test]
    fn avg_neighbors_counts_all_offsets() {
        let m = sample_map();
        assert!((m.avg_neighbors() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn effective_macs_scale_with_channels() {
        let m = sample_map();
        assert_eq!(m.effective_macs(4, 8), 3 * 4 * 8);
    }

    #[test]
    fn multi_edges_detected() {
        let m = KernelMap::from_pairs(2, 1, vec![vec![(0, 0), (1, 0)]]);
        assert!(m.has_multi_edges());
        let m2 = sample_map();
        assert!(!m2.has_multi_edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_indices() {
        let _ = KernelMap::from_pairs(1, 1, vec![vec![(5, 0)]]);
    }

    #[test]
    fn neighbor_histogram_sums_to_outputs() {
        let m = sample_map();
        let h = m.neighbor_histogram();
        assert_eq!(h.iter().sum::<u64>(), m.n_out() as u64);
        // Output 0 has 2 neighbors, output 1 has 1.
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
    }

    #[test]
    fn memory_bytes_counts_both_representations() {
        let m = sample_map();
        let expected =
            m.total_pairs() * 8 + (m.n_out() * m.kernel_volume()) as u64 * 4 + m.n_out() as u64 * 4;
        assert_eq!(m.memory_bytes(), expected);
        let rel = KernelMap::from_relational_pairs(2, 2, vec![vec![(0, 0), (1, 1)]]);
        assert_eq!(rel.memory_bytes(), 16);
    }

    #[test]
    fn empty_map_has_zero_stats() {
        let m = KernelMap::from_pairs(0, 0, vec![vec![], vec![]]);
        assert_eq!(m.total_pairs(), 0);
        assert_eq!(m.avg_neighbors(), 0.0);
    }
}
