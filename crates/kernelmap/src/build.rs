//! Kernel-map builders for submanifold and strided sparse convolution.

use serde::{Deserialize, Serialize};

use crate::{Coord, CoordHashMap, KernelMap, KernelOffsets};

/// Instrumentation gathered while building a map, used by the layer
/// runner to price mapping kernels on the simulated GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapStats {
    /// Number of hash-table insertions performed.
    pub inserts: u64,
    /// Number of hash-table queries performed.
    pub queries: u64,
    /// Number of (input, output) pairs produced.
    pub pairs: u64,
}

/// Deduplicates coordinates, preserving first occurrence order.
///
/// This is the `unique` step applied after coordinate quantization
/// (Section 2 of the paper).
pub fn unique_coords(coords: &[Coord]) -> Vec<Coord> {
    let mut table = CoordHashMap::with_capacity(coords.len());
    let mut out = Vec::new();
    for &c in coords {
        if table.insert(c.key(), out.len() as i32).is_none() {
            out.push(c);
        }
    }
    out
}

/// Downsamples coordinates by `stride` (floor division) and deduplicates.
///
/// Produces the output coordinate set of a strided sparse convolution.
pub fn downsample_coords(coords: &[Coord], stride: i32) -> Vec<Coord> {
    let scaled: Vec<Coord> = coords.iter().map(|c| c.downsample(stride)).collect();
    unique_coords(&scaled)
}

/// Builds the kernel map of a *submanifold* convolution: outputs sit at
/// exactly the input coordinates, and offset δ pairs `(p + δ, p)` when
/// both coordinates exist.
///
/// # Examples
///
/// ```
/// use ts_kernelmap::{build_submanifold_map, Coord, KernelOffsets};
///
/// let coords = vec![Coord::new(0, 0, 0, 0)];
/// let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
/// // An isolated point only sees itself through the center offset.
/// assert_eq!(map.total_pairs(), 1);
/// ```
pub fn build_submanifold_map(coords: &[Coord], offsets: &KernelOffsets) -> KernelMap {
    build_submanifold_map_with_stats(coords, offsets).0
}

/// [`build_submanifold_map`] plus mapping-cost instrumentation.
pub fn build_submanifold_map_with_stats(
    coords: &[Coord],
    offsets: &KernelOffsets,
) -> (KernelMap, MapStats) {
    let table = CoordHashMap::build(coords);
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); offsets.volume()];
    let mut stats = MapStats {
        inserts: coords.len() as u64,
        ..MapStats::default()
    };
    for (out_idx, &q) in coords.iter().enumerate() {
        for (k, &delta) in offsets.deltas().iter().enumerate() {
            stats.queries += 1;
            if let Some(in_idx) = table.get(q.offset(delta).key()) {
                pairs[k].push((in_idx as u32, out_idx as u32));
            }
        }
    }
    stats.pairs = pairs.iter().map(|p| p.len() as u64).sum();
    (
        KernelMap::from_pairs(coords.len(), coords.len(), pairs),
        stats,
    )
}

/// Builds the kernel map of a *strided* convolution: outputs are the
/// deduplicated floor-divided input coordinates, and offset δ pairs
/// `(s*q + δ, q)` for every input coordinate `s*q + δ` that exists.
///
/// Returns the map and the output coordinate set.
pub fn build_strided_map(
    coords: &[Coord],
    offsets: &KernelOffsets,
    stride: i32,
) -> (KernelMap, Vec<Coord>) {
    let (map, out, _) = build_strided_map_with_stats(coords, offsets, stride);
    (map, out)
}

/// [`build_strided_map`] plus mapping-cost instrumentation.
pub fn build_strided_map_with_stats(
    coords: &[Coord],
    offsets: &KernelOffsets,
    stride: i32,
) -> (KernelMap, Vec<Coord>, MapStats) {
    let out_coords = downsample_coords(coords, stride);
    let in_table = CoordHashMap::build(coords);
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); offsets.volume()];
    let mut stats = MapStats {
        inserts: (coords.len() + out_coords.len()) as u64,
        ..MapStats::default()
    };
    for (out_idx, &q) in out_coords.iter().enumerate() {
        let base = q.upscale(stride);
        for (k, &delta) in offsets.deltas().iter().enumerate() {
            stats.queries += 1;
            if let Some(in_idx) = in_table.get(base.offset(delta).key()) {
                pairs[k].push((in_idx as u32, out_idx as u32));
            }
        }
    }
    stats.pairs = pairs.iter().map(|p| p.len() as u64).sum();
    let map = KernelMap::from_pairs(coords.len(), out_coords.len(), pairs);
    (map, out_coords, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: i32) -> Vec<Coord> {
        (0..n).map(|i| Coord::new(0, i, 0, 0)).collect()
    }

    #[test]
    fn unique_preserves_first_occurrence() {
        let coords = vec![
            Coord::new(0, 1, 0, 0),
            Coord::new(0, 2, 0, 0),
            Coord::new(0, 1, 0, 0),
        ];
        let u = unique_coords(&coords);
        assert_eq!(u, vec![Coord::new(0, 1, 0, 0), Coord::new(0, 2, 0, 0)]);
    }

    #[test]
    fn downsample_merges_voxels() {
        let coords = vec![
            Coord::new(0, 0, 0, 0),
            Coord::new(0, 1, 0, 0),
            Coord::new(0, 2, 0, 0),
            Coord::new(0, 3, 0, 0),
        ];
        let d = downsample_coords(&coords, 2);
        assert_eq!(d, vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)]);
    }

    #[test]
    fn submanifold_line_has_expected_pairs() {
        // 5 colinear points, kernel 3: interior points have 3 neighbors
        // along x, end points 2.
        let map = build_submanifold_map(&line(5), &KernelOffsets::cube(3));
        assert_eq!(map.n_in(), 5);
        assert_eq!(map.n_out(), 5);
        assert_eq!(map.total_pairs(), 3 * 3 + 2 * 2);
    }

    #[test]
    fn submanifold_center_offset_is_identity() {
        let coords = line(4);
        let offsets = KernelOffsets::cube(3);
        let map = build_submanifold_map(&coords, &offsets);
        let center = offsets.center().unwrap();
        let center_pairs = map.pairs(center);
        assert_eq!(center_pairs.len(), 4);
        assert!(center_pairs.iter().all(|&(i, o)| i == o));
    }

    #[test]
    fn submanifold_map_pairs_are_symmetric() {
        // If (p, q) in M_delta then (q, p) in M_{-delta}.
        let coords: Vec<Coord> = (0..4)
            .flat_map(|x| (0..3).map(move |y| Coord::new(0, x, y, 0)))
            .collect();
        let offsets = KernelOffsets::cube(3);
        let map = build_submanifold_map(&coords, &offsets);
        for k in 0..offsets.volume() {
            let mirrored = offsets.mirror(k);
            let mut fwd: Vec<_> = map.pairs(k).iter().map(|&(i, o)| (o, i)).collect();
            let mut bwd: Vec<_> = map.pairs(mirrored).to_vec();
            fwd.sort_unstable();
            bwd.sort_unstable();
            assert_eq!(fwd, bwd, "offset {k} vs {mirrored}");
        }
    }

    #[test]
    fn strided_map_covers_all_inputs_for_k2_s2() {
        // With K=2 offsets {0,1}^3 and stride 2, every input p maps to
        // exactly one output floor(p/2): the map partitions inputs.
        let coords: Vec<Coord> = (0..4)
            .flat_map(|x| (0..4).flat_map(move |y| (0..4).map(move |z| Coord::new(0, x, y, z))))
            .collect();
        let (map, out) = build_strided_map(&coords, &KernelOffsets::cube(2), 2);
        assert_eq!(out.len(), 8);
        assert_eq!(map.total_pairs(), coords.len() as u64);
    }

    #[test]
    fn strided_map_k3_s2_overlaps() {
        // K=3 stride 2: windows overlap, inputs can feed several outputs.
        let coords = line(8);
        let (map, out) = build_strided_map(&coords, &KernelOffsets::cube(3), 2);
        assert_eq!(out.len(), 4);
        assert!(map.total_pairs() > coords.len() as u64);
    }

    #[test]
    fn stats_count_queries_and_pairs() {
        let coords = line(5);
        let offsets = KernelOffsets::cube(3);
        let (map, stats) = build_submanifold_map_with_stats(&coords, &offsets);
        assert_eq!(stats.inserts, 5);
        assert_eq!(stats.queries, 5 * 27);
        assert_eq!(stats.pairs, map.total_pairs());
    }

    #[test]
    fn batch_isolation() {
        // Points in different batches never pair.
        let coords = vec![Coord::new(0, 0, 0, 0), Coord::new(1, 1, 0, 0)];
        let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
        assert_eq!(map.total_pairs(), 2); // center offsets only
    }

    #[test]
    fn empty_input_produces_empty_map() {
        let map = build_submanifold_map(&[], &KernelOffsets::cube(3));
        assert_eq!(map.n_out(), 0);
        assert_eq!(map.total_pairs(), 0);
    }
}
