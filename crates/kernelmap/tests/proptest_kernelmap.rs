//! Property-based tests for coordinate hashing, kernel maps, and split
//! plans.

use proptest::prelude::*;

use ts_kernelmap::{
    argsort_by_bitmask, build_strided_map, build_submanifold_map, check_map, check_plan,
    mac_counts, pad_to_multiple, unique_coords, Coord, CoordHashMap, DeltaConfig, IncrementalMap,
    KernelMap, KernelOffsets, MapUpdate, SplitPlan,
};

fn coord_strategy() -> impl Strategy<Value = Coord> {
    (0..3i32, -60..60i32, -60..60i32, -20..20i32).prop_map(|(b, x, y, z)| Coord::new(b, x, y, z))
}

fn coords_strategy(max: usize) -> impl Strategy<Value = Vec<Coord>> {
    prop::collection::vec(coord_strategy(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coord_key_round_trips(c in coord_strategy()) {
        prop_assert_eq!(Coord::from_key(c.key()), c);
    }

    #[test]
    fn hash_map_agrees_with_std_hashmap(coords in coords_strategy(300)) {
        let table = CoordHashMap::build(&coords);
        let mut model = std::collections::HashMap::new();
        for (i, c) in coords.iter().enumerate() {
            model.entry(c.key()).or_insert(i as i32);
        }
        for c in &coords {
            prop_assert_eq!(table.get(c.key()), model.get(&c.key()).copied());
        }
        // Absent keys miss.
        let absent = Coord::new(7, 999, 999, 999);
        prop_assert_eq!(table.get(absent.key()), None);
        prop_assert_eq!(table.len(), model.len());
    }

    #[test]
    fn unique_preserves_set_and_order(coords in coords_strategy(300)) {
        let u = unique_coords(&coords);
        // No duplicates.
        let set: std::collections::HashSet<_> = u.iter().map(|c| c.key()).collect();
        prop_assert_eq!(set.len(), u.len());
        // Same set as input.
        let input_set: std::collections::HashSet<_> = coords.iter().map(|c| c.key()).collect();
        prop_assert_eq!(set, input_set);
        // First-occurrence order.
        let mut seen = std::collections::HashSet::new();
        let expected: Vec<Coord> = coords
            .iter()
            .filter(|c| seen.insert(c.key()))
            .copied()
            .collect();
        prop_assert_eq!(u, expected);
    }

    #[test]
    fn submanifold_map_is_symmetric_and_bounded(coords in coords_strategy(200)) {
        let coords = unique_coords(&coords);
        let offsets = KernelOffsets::cube(3);
        let map = build_submanifold_map(&coords, &offsets);
        // Self pairs exist for every point via the center offset.
        let center = offsets.center().unwrap();
        prop_assert_eq!(map.pairs(center).len(), coords.len());
        // Pair count bounded by n * kvol.
        prop_assert!(map.total_pairs() <= (coords.len() * 27) as u64);
        // delta/-delta symmetry.
        for k in 0..offsets.volume() {
            prop_assert_eq!(map.pairs(k).len(), map.pairs(offsets.mirror(k)).len());
        }
    }

    #[test]
    fn transpose_is_involution(coords in coords_strategy(150)) {
        let coords = unique_coords(&coords);
        let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
        let back = map.transposed().transposed();
        prop_assert_eq!(back.all_pairs(), map.all_pairs());
        prop_assert_eq!(map.transposed().total_pairs(), map.total_pairs());
    }

    #[test]
    fn strided_map_partitions_k2_s2(coords in coords_strategy(200)) {
        let coords = unique_coords(&coords);
        let (map, out) = build_strided_map(&coords, &KernelOffsets::cube(2), 2);
        // Every input appears exactly once (K=2/s=2 windows tile space).
        prop_assert_eq!(map.total_pairs(), coords.len() as u64);
        // Outputs are the unique downsampled coords.
        let expected: std::collections::HashSet<_> =
            coords.iter().map(|c| c.downsample(2).key()).collect();
        prop_assert_eq!(out.len(), expected.len());
    }

    #[test]
    fn split_plans_partition_offsets(coords in coords_strategy(150), s in 0u32..6) {
        let coords = unique_coords(&coords);
        let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
        let plan = SplitPlan::from_split_count(&map, s);
        let mut covered = vec![0u8; map.kernel_volume()];
        for r in plan.ranges() {
            prop_assert_eq!(r.order(&map).len(), map.n_out());
            // Order is a permutation.
            let mut sorted: Vec<u32> = r.order(&map).to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..map.n_out() as u32).collect::<Vec<_>>());
            for slot in covered.iter_mut().take(r.k_end).skip(r.k_begin) {
                *slot += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn mac_counts_invariants(coords in coords_strategy(150), s in 0u32..5, lockstep in 1usize..33) {
        let coords = unique_coords(&coords);
        let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
        let plan = SplitPlan::from_split_count(&map, s);
        let c = mac_counts(&map, &plan, lockstep, 4, 8);
        // Effective MACs are exactly pairs * c_in * c_out, independent of
        // the plan or lockstep width.
        prop_assert_eq!(c.effective, map.effective_macs(4, 8));
        // Total >= effective, and bounded by full-density execution.
        prop_assert!(c.total >= c.effective);
        let dense_bound = (map.n_out() as u64 + lockstep as u64) * 27 * 4 * 8;
        prop_assert!(c.total <= dense_bound);
        // Lockstep of 1 has zero waste.
        let exact = mac_counts(&map, &plan, 1, 4, 8);
        prop_assert_eq!(exact.total, exact.effective);
    }

    #[test]
    fn sorting_never_increases_waste(coords in coords_strategy(150)) {
        let coords = unique_coords(&coords);
        let map = build_submanifold_map(&coords, &KernelOffsets::cube(3));
        let unsorted = mac_counts(&map, &SplitPlan::from_split_count(&map, 0), 16, 1, 1);
        let sorted = mac_counts(&map, &SplitPlan::from_split_count(&map, 1), 16, 1, 1);
        prop_assert!(sorted.total <= unsorted.total,
            "sorted {} > unsorted {}", sorted.total, unsorted.total);
    }

    #[test]
    fn argsort_is_permutation_and_ordered(masks in prop::collection::vec(0u32..(1 << 27), 1..200)) {
        let order = argsort_by_bitmask(&masks, 0, 27);
        let mut sorted: Vec<u32> = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..masks.len() as u32).collect::<Vec<_>>());
        // Keys (MSB-first read) are non-decreasing along the order.
        let key = |m: u32| -> u32 {
            let mut v = 0;
            for k in 0..27 {
                v = (v << 1) | ((m >> k) & 1);
            }
            v
        };
        for w in order.windows(2) {
            prop_assert!(key(masks[w[0] as usize]) <= key(masks[w[1] as usize]));
        }
    }

    #[test]
    fn padding_properties(n in 0usize..100_000, m in 1usize..512) {
        let p = pad_to_multiple(n, m);
        prop_assert!(p >= n);
        prop_assert!(p < n + m);
        prop_assert_eq!(p % m, 0);
    }

    #[test]
    fn relational_maps_reject_dense_paths(edges in prop::collection::vec((0u32..50, 0u32..50), 1..200)) {
        let map = KernelMap::from_relational_pairs(50, 50, vec![edges.clone(), edges]);
        prop_assert!(!map.has_dense_repr());
        prop_assert!(map.has_multi_edges());
        // Transpose keeps the sparse-only representation.
        prop_assert!(!map.transposed().has_dense_repr());
    }
}

/// Full-state equivalence of an [`IncrementalMap`] against the
/// from-scratch reference: pairs, neighbor table and bitmasks (all via
/// [`KernelMap`]'s structural equality), plus map and split-plan
/// invariants.
fn assert_state_matches_fresh(inc: &IncrementalMap) -> Result<(), TestCaseError> {
    let fresh = build_submanifold_map(inc.coords(), inc.offsets());
    prop_assert_eq!(inc.map(), &fresh);
    prop_assert!(
        check_map(inc.map()).is_empty(),
        "{:?}",
        check_map(inc.map())
    );
    let plan_errs = check_plan(inc.map(), inc.plan(), 16);
    prop_assert!(plan_errs.is_empty(), "{plan_errs:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: a random frame stream driven through
    /// `update` at a random churn threshold stays bit-identical to a
    /// from-scratch build after every frame, whichever path (patch or
    /// rebuild) each frame took.
    #[test]
    fn incremental_stream_equals_full_rebuild(
        base in coords_strategy(120),
        steps in prop::collection::vec(
            (
                prop::collection::vec(0usize..4096, 0..20),
                prop::collection::vec(coord_strategy(), 0..20),
            ),
            1..5,
        ),
        threshold in 0.0f32..1.2,
        split in 1u32..4,
    ) {
        let mut frame = unique_coords(&base);
        let cfg = DeltaConfig { churn_threshold: threshold };
        let mut inc = IncrementalMap::new(&frame, KernelOffsets::cube(3), split);
        for (drops, adds) in &steps {
            for &idx in drops {
                if !frame.is_empty() {
                    frame.remove(idx % frame.len());
                }
            }
            frame.extend(adds.iter().copied());
            frame = unique_coords(&frame);

            let out = inc.update(&frame, &cfg);

            // The decision follows the threshold exactly.
            if out.churn > threshold {
                prop_assert_eq!(out.kind, MapUpdate::Rebuilt);
            } else {
                prop_assert_eq!(out.kind, MapUpdate::Patched);
            }
            // The state's coordinate set is the frame's set.
            prop_assert_eq!(inc.coords().len(), frame.len());
            let got: std::collections::HashSet<u64> =
                inc.coords().iter().map(|c| c.key()).collect();
            let want: std::collections::HashSet<u64> =
                frame.iter().map(|c| c.key()).collect();
            prop_assert_eq!(got, want);
            assert_state_matches_fresh(&inc)?;
        }
    }

    /// Degenerate frames: identical re-send (0% churn), empty frame,
    /// then a fully disjoint set (100% churn) — at arbitrary thresholds.
    #[test]
    fn degenerate_churn_extremes_match_rebuild(
        coords in coords_strategy(100),
        far in coords_strategy(100),
        threshold in 0.0f32..1.2,
    ) {
        let cfg = DeltaConfig { churn_threshold: threshold };
        let coords = unique_coords(&coords);
        let mut inc = IncrementalMap::new(&coords, KernelOffsets::cube(3), 2);

        // 0% churn: identical frame is always a (no-op) patch.
        let out = inc.update(&coords, &cfg);
        prop_assert_eq!(out.kind, MapUpdate::Patched);
        prop_assert_eq!((out.entered, out.exited), (0, 0));
        assert_state_matches_fresh(&inc)?;

        // Empty frame: everything exits.
        inc.update(&[], &cfg);
        prop_assert_eq!(inc.map().n_out(), 0);
        assert_state_matches_fresh(&inc)?;

        // 100% churn: a disjoint far-away set.
        let far: Vec<Coord> = unique_coords(&far)
            .into_iter()
            .map(|c| Coord::new(c.batch, c.x + 500, c.y, c.z))
            .collect();
        let out = inc.update(&far, &cfg);
        prop_assert!(out.churn >= 1.0);
        prop_assert_eq!(inc.map().n_out(), far.len());
        assert_state_matches_fresh(&inc)?;
    }

    /// Duplicate coordinates inside a frame collapse to first-occurrence
    /// order, exactly like `unique_coords` on the rebuild path.
    #[test]
    fn duplicate_frame_entries_collapse(
        coords in coords_strategy(80),
        extra in prop::collection::vec(coord_strategy(), 0..10),
        threshold in 0.0f32..1.2,
    ) {
        let cfg = DeltaConfig { churn_threshold: threshold };
        let base = unique_coords(&coords);
        let mut inc = IncrementalMap::new(&base, KernelOffsets::cube(3), 1);
        // Every entry duplicated, plus a few fresh ones (also doubled).
        let mut noisy = base.clone();
        noisy.extend(extra.iter().copied());
        noisy.extend(noisy.clone());
        inc.update(&noisy, &cfg);
        prop_assert_eq!(inc.coords().len(), unique_coords(&noisy).len());
        assert_state_matches_fresh(&inc)?;
    }
}
