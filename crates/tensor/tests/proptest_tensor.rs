//! Property-based tests for the dense matrix substrate.

use proptest::prelude::*;

use ts_tensor::{gemm, gemm_nt, gemm_tn, Matrix, Precision};

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_identity_left_and_right((m, n, _) in dims(), seed in 0u64..1000) {
        let a = ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(seed), m, n, -5.0, 5.0);
        prop_assert!(gemm(&Matrix::identity(m), &a).approx_eq(&a, 1e-5));
        prop_assert!(gemm(&a, &Matrix::identity(n)).approx_eq(&a, 1e-5));
    }

    #[test]
    fn gemm_distributes_over_addition((m, k, n) in dims(), s1 in 0u64..100, s2 in 100u64..200, s3 in 200u64..300) {
        let mut rng = ts_tensor::rng_from_seed(s1);
        let a = ts_tensor::uniform_matrix(&mut rng, m, k, -3.0, 3.0);
        let mut rng = ts_tensor::rng_from_seed(s2);
        let b1 = ts_tensor::uniform_matrix(&mut rng, k, n, -3.0, 3.0);
        let mut rng = ts_tensor::rng_from_seed(s3);
        let b2 = ts_tensor::uniform_matrix(&mut rng, k, n, -3.0, 3.0);

        let mut b_sum = b1.clone();
        b_sum.add_assign(&b2);
        let lhs = gemm(&a, &b_sum);
        let mut rhs = gemm(&a, &b1);
        rhs.add_assign(&gemm(&a, &b2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn transpose_variants_agree((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = ts_tensor::rng_from_seed(seed);
        let a = ts_tensor::uniform_matrix(&mut rng, m, k, -3.0, 3.0);
        let b = ts_tensor::uniform_matrix(&mut rng, k, n, -3.0, 3.0);

        // gemm_tn(a^T stored as a) == gemm(a^T, b)
        let tn = gemm_tn(&a, &ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(seed + 1), m, n, -3.0, 3.0));
        let a_t = a.transposed();
        let tn_ref = gemm(&a_t, &ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(seed + 1), m, n, -3.0, 3.0));
        prop_assert!(tn.approx_eq(&tn_ref, 1e-4));

        // gemm_nt(a, b^T stored as b2) == gemm(a, b2^T)
        let b2 = b.transposed(); // n x k
        let nt = gemm_nt(&a, &b2);
        let nt_ref = gemm(&a, &b2.transposed());
        prop_assert!(nt.approx_eq(&nt_ref, 1e-4));
    }

    #[test]
    fn transpose_is_involution((m, n, _) in dims(), seed in 0u64..1000) {
        let a = ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(seed), m, n, -5.0, 5.0);
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn quantization_is_idempotent(v in -70000.0f32..70000.0, p in prop::sample::select(vec![Precision::Fp16, Precision::Tf32, Precision::Fp32])) {
        let once = p.quantize(v);
        let twice = p.quantize(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn fp16_error_is_bounded(v in -60000.0f32..60000.0) {
        let q = Precision::Fp16.quantize(v);
        if v.abs() > 1e-3 {
            // Relative error below 2^-10 for normal halfs.
            prop_assert!((q - v).abs() / v.abs() < 1.0 / 1024.0 + 1e-6, "v={v} q={q}");
        }
    }

    #[test]
    fn frobenius_norm_triangle(m in 1usize..8, n in 1usize..8, s1 in 0u64..100, s2 in 100u64..200) {
        let a = ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(s1), m, n, -5.0, 5.0);
        let b = ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(s2), m, n, -5.0, 5.0);
        let mut sum = a.clone();
        sum.add_assign(&b);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }

    #[test]
    fn scale_scales_norm(m in 1usize..8, n in 1usize..8, s in 0u64..100, f in -4.0f32..4.0) {
        let mut a = ts_tensor::uniform_matrix(&mut ts_tensor::rng_from_seed(s), m, n, -5.0, 5.0);
        let before = a.frobenius_norm();
        a.scale(f);
        prop_assert!((a.frobenius_norm() - f.abs() * before).abs() < 1e-3 * (1.0 + before));
    }
}
