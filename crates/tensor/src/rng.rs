//! Deterministic random initialisation helpers.
//!
//! All randomness in the workspace flows through seeded ChaCha8 generators
//! so every experiment is reproducible bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::Matrix;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Creates a `rows x cols` matrix with entries uniform in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_matrix(rng: &mut ChaCha8Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    assert!(lo < hi, "uniform_matrix requires lo < hi");
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Creates a Xavier/Glorot-uniform initialised weight matrix of shape
/// `fan_in x fan_out`.
pub fn xavier_matrix(rng: &mut ChaCha8Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform_matrix(rng, fan_in, fan_out, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        let b = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_matrix(&mut rng_from_seed(1), 4, 4, -1.0, 1.0);
        let b = uniform_matrix(&mut rng_from_seed(2), 4, 4, -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_matrix(&mut rng_from_seed(3), 10, 10, 0.25, 0.75);
        for &v in m.as_slice() {
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn xavier_bound_scales_with_fan() {
        let m = xavier_matrix(&mut rng_from_seed(4), 512, 512);
        let bound = (6.0f32 / 1024.0).sqrt();
        for &v in m.as_slice() {
            assert!(v.abs() <= bound);
        }
    }
}
