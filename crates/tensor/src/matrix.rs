//! Row-major dense matrix and GEMM kernels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when matrix dimensions do not line up for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for MatrixShapeError {}

/// A row-major dense `f32` matrix.
///
/// This is the feature-map and weight container used throughout the
/// workspace. Rows usually index points (or output locations), columns
/// index channels.
///
/// # Examples
///
/// ```
/// use ts_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 5.0;
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length must be rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Largest absolute difference to `other`; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f32> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when `other` has the same shape and all entries are within
    /// `tol` in absolute-or-relative terms (whichever is looser).
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Computes `a * b`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_accumulate(a, b, &mut out);
    out
}

/// Computes `out += a * b` (row-major, ikj loop order for locality).
///
/// # Panics
///
/// Panics if shapes do not line up.
pub fn gemm_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "gemm output shape mismatch"
    );
    let n = b.cols();
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for j in 0..n {
                out_row[j] += aik * b_row[j];
            }
        }
    }
}

/// Computes `a^T * b` without materialising the transpose.
///
/// Reduction rows are processed in blocks of [`GEMM_TN_BLOCK`]: each
/// sweep over `out` retires a whole block, cutting output traffic by
/// the block factor while the block's `b` rows stay cache-resident.
/// Per output element the accumulation order equals the naive
/// row-at-a-time loop, so results are bit-identical to
/// [`gemm_tn_naive`].
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "gemm_tn leading dimension mismatch");
    let (k_dim, n) = (a.cols(), b.cols());
    let mut out = Matrix::zeros(k_dim, n);
    let mut r0 = 0;
    while r0 < a.rows() {
        let r1 = (r0 + GEMM_TN_BLOCK).min(a.rows());
        for i in 0..k_dim {
            // The block's column-i coefficients (the only strided loads).
            let mut coeffs = [0.0f32; GEMM_TN_BLOCK];
            let mut any_nonzero = false;
            for (t, r) in (r0..r1).enumerate() {
                coeffs[t] = a[(r, i)];
                any_nonzero |= coeffs[t] != 0.0;
            }
            if !any_nonzero {
                continue;
            }
            let out_row = out.row_mut(i);
            for (t, r) in (r0..r1).enumerate() {
                let c = coeffs[t];
                if c == 0.0 {
                    continue;
                }
                let b_row = b.row(r);
                for (o, &bj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += c * bj;
                }
            }
        }
        r0 = r1;
    }
    out
}

/// Reduction-dimension block size of [`gemm_tn`].
pub const GEMM_TN_BLOCK: usize = 8;

/// Reference `a^T * b`: one full sweep over `out` per reduction row.
/// Kept as the correctness/performance baseline for [`gemm_tn`].
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn gemm_tn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "gemm_tn leading dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for (i, &ai) in a_row.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for (j, &bj) in b_row.iter().enumerate() {
                out_row[j] += ai * bj;
            }
        }
    }
    out
}

/// Computes `a * b^T` without materialising the transpose.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, out_v) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a_row[k] * b_row[k];
            }
            *out_v = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        m[(2, 1)] = 4.5;
        assert_eq!(m[(2, 1)], 4.5);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn gemm_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(gemm(&a, &Matrix::identity(3)), a);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0], &[1.0, 1.0, 1.0]]);
        let expected = gemm(&a.transposed(), &b);
        assert_eq!(gemm_tn(&a, &b), expected);
    }

    #[test]
    fn gemm_tn_blocked_is_bit_identical_to_naive() {
        // Sizes straddling the block boundary, including a ragged tail.
        for rows in [1, 7, 8, 9, 40, 100] {
            let a = Matrix::from_vec(
                rows,
                5,
                (0..rows * 5)
                    .map(|v| ((v * 37 % 17) as f32 - 8.0) * 0.25)
                    .collect(),
            );
            let b = Matrix::from_vec(
                rows,
                6,
                (0..rows * 6)
                    .map(|v| ((v * 23 % 19) as f32 - 9.0) * 0.125)
                    .collect(),
            );
            let blocked = gemm_tn(&a, &b);
            let naive = gemm_tn_naive(&a, &b);
            assert_eq!(blocked, naive, "rows={rows}");
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let expected = gemm(&a, &b.transposed());
        assert_eq!(gemm_nt(&a, &b), expected);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a, Matrix::filled(2, 2, 1.5));
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        let a = Matrix::filled(2, 2, 100.0);
        let mut b = a.clone();
        b[(0, 0)] = 100.0001;
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn max_abs_diff_none_for_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
    }

    #[test]
    fn transposed_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = gemm(&a, &b);
    }
}
