//! Dense `f32` matrix substrate for the TorchSparse++ reproduction.
//!
//! Sparse convolution decomposes into dense matrix multiplications over
//! gathered feature rows. This crate provides the minimal dense linear
//! algebra that the dataflow executors in `ts-dataflow` are built on:
//! a row-major [`Matrix`], GEMM with transpose flags, element-wise kernels
//! used by layers (bias, ReLU, batch-norm), and deterministic random
//! initialisation.
//!
//! Numeric behaviour of reduced precisions is modelled by [`Precision`]:
//! functional execution always computes in `f32`, while FP16 storage
//! rounding can be applied explicitly with [`Precision::quantize`] when a
//! test wants to observe precision loss.
//!
//! # Examples
//!
//! ```
//! use ts_tensor::{Matrix, gemm};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = gemm(&a, &b);
//! assert_eq!(c, a);
//! ```

mod matrix;
mod ops;
mod precision;
mod rng;

pub use matrix::{
    gemm, gemm_accumulate, gemm_nt, gemm_tn, gemm_tn_naive, Matrix, MatrixShapeError, GEMM_TN_BLOCK,
};
pub use ops::{add_bias, batch_norm, relu, relu_backward, BatchNormParams};
pub use precision::{ErrorBudget, Precision};
pub use rng::{rng_from_seed, uniform_matrix, xavier_matrix};
