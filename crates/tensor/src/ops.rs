//! Element-wise layer kernels: bias, ReLU, batch normalisation.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Adds a per-channel bias vector to every row of `m`.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols(), "bias length must equal channel count");
    for i in 0..m.rows() {
        for (v, b) in m.row_mut(i).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Applies ReLU in place.
pub fn relu(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward of ReLU: zeroes gradient entries where the forward input was
/// non-positive.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(grad: &mut Matrix, forward_input: &Matrix) {
    assert_eq!(
        grad.shape(),
        forward_input.shape(),
        "relu_backward shape mismatch"
    );
    for (g, &x) in grad.as_mut_slice().iter_mut().zip(forward_input.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Learned batch-norm parameters (inference form: fold running statistics
/// into scale/shift).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNormParams {
    /// Per-channel multiplicative factor `gamma / sqrt(var + eps)`.
    pub scale: Vec<f32>,
    /// Per-channel additive factor `beta - mean * scale`.
    pub shift: Vec<f32>,
}

impl BatchNormParams {
    /// Identity normalisation over `channels` channels.
    pub fn identity(channels: usize) -> Self {
        Self {
            scale: vec![1.0; channels],
            shift: vec![0.0; channels],
        }
    }

    /// Number of channels this layer normalises.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }
}

/// Applies folded batch normalisation `y = x * scale + shift` in place.
///
/// # Panics
///
/// Panics if the parameter channel count does not match `m.cols()`.
pub fn batch_norm(m: &mut Matrix, params: &BatchNormParams) {
    assert_eq!(params.channels(), m.cols(), "batch-norm channel mismatch");
    for i in 0..m.rows() {
        for (j, v) in m.row_mut(i).iter_mut().enumerate() {
            *v = *v * params.scale[j] + params.shift[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_adds_per_channel() {
        let mut m = Matrix::zeros(2, 3);
        add_bias(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -0.5]]);
        relu(&mut m);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, 3.0]]);
        let mut g = Matrix::filled(2, 2, 1.0);
        relu_backward(&mut g, &x);
        assert_eq!(g, Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]));
    }

    #[test]
    fn batch_norm_scales_and_shifts() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let params = BatchNormParams {
            scale: vec![2.0, 0.5],
            shift: vec![1.0, -1.0],
        };
        batch_norm(&mut m, &params);
        assert_eq!(m, Matrix::from_rows(&[&[3.0, 0.0]]));
    }

    #[test]
    fn identity_batch_norm_is_noop() {
        let mut m = Matrix::from_rows(&[&[1.5, -2.5]]);
        let before = m.clone();
        batch_norm(&mut m, &BatchNormParams::identity(2));
        assert_eq!(m, before);
    }
}
