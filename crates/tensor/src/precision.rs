//! Numerical precision descriptors.
//!
//! The simulated GPU prices compute throughput per precision; the
//! functional path always runs in `f32` but can apply storage rounding to
//! model FP16/TF32 quantisation error.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Data precision a kernel executes in.
///
/// Matches the three precisions evaluated in the paper (Figure 14):
/// FP16 (tensor cores), TF32 (Ampere tensor cores) and FP32 (CUDA cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE half precision, executed on tensor cores where available.
    Fp16,
    /// NVIDIA TensorFloat-32 (19-bit mantissa truncation of FP32).
    Tf32,
    /// IEEE single precision on CUDA cores.
    Fp32,
}

impl Precision {
    /// All precisions in the order the paper reports them.
    pub const ALL: [Precision; 3] = [Precision::Fp16, Precision::Tf32, Precision::Fp32];

    /// Bytes per element when stored in DRAM.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Tf32 | Precision::Fp32 => 4,
        }
    }

    /// Rounds `v` to the representable grid of this precision.
    ///
    /// FP16 performs a round-trip through IEEE binary16 (with overflow to
    /// infinity clamped to the max finite half). TF32 truncates the
    /// mantissa to 10 explicit bits. FP32 is the identity.
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            Precision::Fp32 => v,
            Precision::Tf32 => {
                // Zero out the 13 low mantissa bits (23 -> 10 explicit bits).
                f32::from_bits(v.to_bits() & !0x1fff)
            }
            Precision::Fp16 => f16_round_trip(v),
        }
    }

    /// Applies [`Self::quantize`] to every element of a slice.
    pub fn quantize_slice(self, vs: &mut [f32]) {
        if self == Precision::Fp32 {
            return;
        }
        for v in vs {
            *v = self.quantize(*v);
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp16 => write!(f, "FP16"),
            Precision::Tf32 => write!(f, "TF32"),
            Precision::Fp32 => write!(f, "FP32"),
        }
    }
}

/// Round-trips an `f32` through IEEE binary16 with round-to-nearest-even.
fn f16_round_trip(v: f32) -> f32 {
    let bits = v.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN pass through.
        return v;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow: clamp to max finite half (65504).
        return if sign == 1 { -65504.0 } else { 65504.0 };
    }
    if unbiased < -24 {
        return if sign == 1 { -0.0 } else { 0.0 };
    }
    if unbiased < -14 {
        // Subnormal half: quantise to multiples of 2^-24.
        let q = (v / 2f32.powi(-24)).round();
        return q * 2f32.powi(-24);
    }
    // Normal half: keep 10 mantissa bits with round-to-nearest-even.
    let shift = 13;
    let halfway = 1u32 << (shift - 1);
    let tie_to_even = (frac >> shift) & 1;
    let rounded = frac + (halfway - 1) + tie_to_even;
    let new_frac = rounded >> shift << shift;
    if new_frac > 0x7f_ffff {
        // Mantissa overflowed into the exponent.
        return f32::from_bits((sign << 31) | (((exp + 1) as u32) << 23));
    }
    f32::from_bits((sign << 31) | ((exp as u32) << 23) | new_frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        for v in [0.0, -1.5, std::f32::consts::PI, 1e-30, 1e30] {
            assert_eq!(Precision::Fp32.quantize(v), v);
        }
    }

    #[test]
    fn fp16_preserves_exact_halves() {
        for v in [0.0f32, 1.0, -2.0, 0.5, 65504.0, 1024.0] {
            assert_eq!(
                Precision::Fp16.quantize(v),
                v,
                "{v} should be exact in fp16"
            );
        }
    }

    #[test]
    fn fp16_rounds_fine_values() {
        let v = 1.0 + 1e-4; // below half-precision resolution near 1.0
        let q = Precision::Fp16.quantize(v);
        assert!((q - 1.0).abs() < 1e-3);
        assert_ne!(q, v);
    }

    #[test]
    fn fp16_clamps_overflow() {
        assert_eq!(Precision::Fp16.quantize(1e6), 65504.0);
        assert_eq!(Precision::Fp16.quantize(-1e6), -65504.0);
    }

    #[test]
    fn fp16_flushes_tiny_values() {
        assert_eq!(Precision::Fp16.quantize(1e-30), 0.0);
    }

    #[test]
    fn tf32_truncates_mantissa() {
        let v = 1.0 + 2f32.powi(-20);
        assert_eq!(Precision::Tf32.quantize(v), 1.0);
        let w = 1.0 + 2f32.powi(-9);
        assert_eq!(Precision::Tf32.quantize(w), w);
    }

    #[test]
    fn bytes_per_element() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Tf32.bytes(), 4);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn quantize_error_is_relative() {
        for &v in &[0.1f32, 1.7, 123.456, 9999.0] {
            let q = Precision::Fp16.quantize(v);
            assert!((q - v).abs() / v < 1e-3, "v={v} q={q}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Fp16.to_string(), "FP16");
        assert_eq!(Precision::Tf32.to_string(), "TF32");
        assert_eq!(Precision::Fp32.to_string(), "FP32");
    }
}
