//! Numerical precision descriptors.
//!
//! The simulated GPU prices compute throughput per precision; the
//! functional path always runs in `f32` but can apply storage rounding to
//! model FP16/TF32 quantisation error.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Data precision a kernel executes in.
///
/// Matches the three precisions evaluated in the paper (Figure 14):
/// FP16 (tensor cores), TF32 (Ampere tensor cores) and FP32 (CUDA cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE half precision, executed on tensor cores where available.
    Fp16,
    /// NVIDIA TensorFloat-32 (19-bit mantissa truncation of FP32).
    Tf32,
    /// IEEE single precision on CUDA cores.
    Fp32,
}

impl Precision {
    /// All precisions in the order the paper reports them.
    pub const ALL: [Precision; 3] = [Precision::Fp16, Precision::Tf32, Precision::Fp32];

    /// Bytes per element when stored in DRAM.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Tf32 | Precision::Fp32 => 4,
        }
    }

    /// Rounds `v` to the representable grid of this precision.
    ///
    /// FP16 performs a round-trip through IEEE binary16 (with overflow to
    /// infinity clamped to the max finite half). TF32 truncates the
    /// mantissa to 10 explicit bits. FP32 is the identity.
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            Precision::Fp32 => v,
            Precision::Tf32 => {
                // Zero out the 13 low mantissa bits (23 -> 10 explicit bits).
                f32::from_bits(v.to_bits() & !0x1fff)
            }
            Precision::Fp16 => f16_round_trip(v),
        }
    }

    /// Applies [`Self::quantize`] to every element of a slice.
    pub fn quantize_slice(self, vs: &mut [f32]) {
        if self == Precision::Fp32 {
            return;
        }
        for v in vs {
            *v = self.quantize(*v);
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp16 => write!(f, "FP16"),
            Precision::Tf32 => write!(f, "TF32"),
            Precision::Fp32 => write!(f, "FP32"),
        }
    }
}

/// ULP-aware error budget for comparing two computations of the same
/// reduction at a given storage precision.
///
/// Differential tests quantize inputs (and outputs) to the precision's
/// representable grid and compute in `f32`, like tensor cores
/// accumulating in FP32. The budget then has two terms:
///
/// * a *storage* term — two values that agree to well under one ULP of
///   the storage precision may still land on adjacent grid points when
///   rounded, so the budget always admits a couple of ULPs at the
///   stored magnitude;
/// * an *accumulation* term — reassociating a `depth`-term `f32`
///   reduction (different dataflows sum in different orders) perturbs
///   the result by at most a small multiple of `depth` `f32` ULPs.
///
/// The per-precision unit roundoff comes from the same mantissa widths
/// [`Precision::quantize`] implements, so the budget is derived, not
/// hand-tuned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBudget {
    /// Storage precision being modelled.
    pub precision: Precision,
    /// Length of the longest reduction feeding one output element.
    pub depth: usize,
}

impl ErrorBudget {
    /// Safety factor on the accumulation term: reassociation error is
    /// bounded by `depth * u_f32` relative per summand, and uniform
    /// random data realises only a fraction of the bound; 8 leaves
    /// generous headroom without masking real defects (a sign flip is
    /// ~2x relative error, four orders of magnitude above the budget).
    const ACCUM_SAFETY: f32 = 8.0;

    /// Budget for a reduction of `depth` terms stored at `precision`.
    pub fn new(precision: Precision, depth: usize) -> Self {
        Self {
            precision,
            depth: depth.max(1),
        }
    }

    /// Unit roundoff of one stored element: the worst-case relative
    /// error [`Precision::quantize`] introduces for a normal value.
    /// FP16 rounds to nearest (half an ULP of a 10-bit mantissa), TF32
    /// truncates (a full ULP of a 10-bit mantissa), FP32 is exact in
    /// storage so only the `f32` compute roundoff remains.
    pub fn unit_roundoff(precision: Precision) -> f32 {
        match precision {
            Precision::Fp16 => 4.8828125e-4, // 2^-11
            Precision::Tf32 => 9.765625e-4,  // 2^-10
            Precision::Fp32 => 5.9604645e-8, // 2^-24
        }
    }

    /// Relative tolerance usable with `Matrix::approx_eq`-style
    /// comparisons (`|a - b| <= tol * max(|a|, |b|, 1)`).
    pub fn rel_tol(&self) -> f32 {
        let storage = 2.0 * Self::unit_roundoff(self.precision);
        let accum = Self::ACCUM_SAFETY * Self::unit_roundoff(Precision::Fp32) * self.depth as f32;
        storage + accum
    }

    /// Whether `a` and `b` agree within this budget.
    pub fn allows(&self, a: f32, b: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= self.rel_tol() * scale
    }

    /// The budget-normalised error of `(a, b)`: values above 1.0 are
    /// out of budget. Useful for reporting *how far* out a mismatch is.
    pub fn normalized_error(&self, a: f32, b: f32) -> f32 {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() / (self.rel_tol() * scale)
    }
}

/// Round-trips an `f32` through IEEE binary16 with round-to-nearest-even.
fn f16_round_trip(v: f32) -> f32 {
    let bits = v.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN pass through.
        return v;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow: clamp to max finite half (65504).
        return if sign == 1 { -65504.0 } else { 65504.0 };
    }
    if unbiased < -24 {
        return if sign == 1 { -0.0 } else { 0.0 };
    }
    if unbiased < -14 {
        // Subnormal half: quantise to multiples of 2^-24.
        let q = (v / 2f32.powi(-24)).round();
        return q * 2f32.powi(-24);
    }
    // Normal half: keep 10 mantissa bits with round-to-nearest-even.
    let shift = 13;
    let halfway = 1u32 << (shift - 1);
    let tie_to_even = (frac >> shift) & 1;
    let rounded = frac + (halfway - 1) + tie_to_even;
    let new_frac = rounded >> shift << shift;
    if new_frac > 0x7f_ffff {
        // Mantissa overflowed into the exponent.
        return f32::from_bits((sign << 31) | (((exp + 1) as u32) << 23));
    }
    f32::from_bits((sign << 31) | ((exp as u32) << 23) | new_frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        for v in [0.0, -1.5, std::f32::consts::PI, 1e-30, 1e30] {
            assert_eq!(Precision::Fp32.quantize(v), v);
        }
    }

    #[test]
    fn fp16_preserves_exact_halves() {
        for v in [0.0f32, 1.0, -2.0, 0.5, 65504.0, 1024.0] {
            assert_eq!(
                Precision::Fp16.quantize(v),
                v,
                "{v} should be exact in fp16"
            );
        }
    }

    #[test]
    fn fp16_rounds_fine_values() {
        let v = 1.0 + 1e-4; // below half-precision resolution near 1.0
        let q = Precision::Fp16.quantize(v);
        assert!((q - 1.0).abs() < 1e-3);
        assert_ne!(q, v);
    }

    #[test]
    fn fp16_clamps_overflow() {
        assert_eq!(Precision::Fp16.quantize(1e6), 65504.0);
        assert_eq!(Precision::Fp16.quantize(-1e6), -65504.0);
    }

    #[test]
    fn fp16_flushes_tiny_values() {
        assert_eq!(Precision::Fp16.quantize(1e-30), 0.0);
    }

    #[test]
    fn tf32_truncates_mantissa() {
        let v = 1.0 + 2f32.powi(-20);
        assert_eq!(Precision::Tf32.quantize(v), 1.0);
        let w = 1.0 + 2f32.powi(-9);
        assert_eq!(Precision::Tf32.quantize(w), w);
    }

    #[test]
    fn bytes_per_element() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Tf32.bytes(), 4);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn quantize_error_is_relative() {
        for &v in &[0.1f32, 1.7, 123.456, 9999.0] {
            let q = Precision::Fp16.quantize(v);
            assert!((q - v).abs() / v < 1e-3, "v={v} q={q}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Fp16.to_string(), "FP16");
        assert_eq!(Precision::Tf32.to_string(), "TF32");
        assert_eq!(Precision::Fp32.to_string(), "FP32");
    }

    #[test]
    fn budget_orders_by_precision() {
        let fp16 = ErrorBudget::new(Precision::Fp16, 32).rel_tol();
        let tf32 = ErrorBudget::new(Precision::Tf32, 32).rel_tol();
        let fp32 = ErrorBudget::new(Precision::Fp32, 32).rel_tol();
        assert!(fp32 < fp16, "FP32 budget must be the tightest");
        assert!(fp16 < tf32, "TF32 truncation is coarser than FP16 rounding");
    }

    #[test]
    fn budget_grows_with_depth() {
        let shallow = ErrorBudget::new(Precision::Fp32, 4).rel_tol();
        let deep = ErrorBudget::new(Precision::Fp32, 4096).rel_tol();
        assert!(deep > shallow);
    }

    #[test]
    fn budget_admits_one_quantization_ulp() {
        let b = ErrorBudget::new(Precision::Fp16, 1);
        for v in [0.3f32, 1.7, -42.5, 913.0] {
            assert!(b.allows(v, Precision::Fp16.quantize(v)), "v={v}");
        }
    }

    #[test]
    fn budget_rejects_a_sign_flip() {
        let b = ErrorBudget::new(Precision::Tf32, 1024);
        assert!(!b.allows(0.5, -0.5));
        assert!(b.normalized_error(0.5, -0.5) > 100.0);
    }

    #[test]
    fn zero_depth_is_clamped() {
        assert_eq!(ErrorBudget::new(Precision::Fp32, 0).depth, 1);
    }
}
