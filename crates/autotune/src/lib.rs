//! The **Sparse Autotuner** (Section 4 of the TorchSparse++ paper).
//!
//! Layers sharing kernel maps form *groups*; all layers in a group must
//! run the same dataflow (building maps for several dataflows would cost
//! the latency of 3–4 convolution layers, Section 4.2). The tuner
//! searches the enlarged design space of Figure 9 *group by group*,
//! greedily, against **end-to-end** simulated latency — not per-kernel
//! latency, which the paper shows is a misleading proxy (Tables 3/4).
//!
//! For training, the three kernel families (forward / dgrad / wgrad) can
//! be partially *bound* (Figure 13): binding all three is cheapest to
//! tune but loses up to 10 %; binding forward+dgrad suits
//! low-parallelism devices; binding dgrad+wgrad minimises mapping
//! overhead and suits high-parallelism devices.
//!
//! # Examples
//!
//! ```
//! use ts_autotune::{tune_inference, TunerOptions};
//! use ts_core::Session;
//! use ts_dataflow::ExecCtx;
//! use ts_gpusim::Device;
//! use ts_kernelmap::Coord;
//! use ts_tensor::Precision;
//! use ts_workloads::Workload;
//!
//! let w = Workload::NuScenesMinkUNet1f;
//! let net = w.network();
//! let scene = w.scene_scaled(1, 0.05);
//! let session = Session::new(&net, scene.coords());
//! let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
//! let result = tune_inference(&[session], &ctx, &TunerOptions::default());
//! assert!(result.tuned_latency_us <= result.default_latency_us);
//! ```

#![warn(missing_docs)]

mod inference;
mod training;

pub use inference::{
    tune_inference, tune_inference_warm, EvalMode, TuneResult, TunerOptions, TunerStats, WarmStart,
};
pub use training::{
    default_scheme_for, tune_training, tune_training_warm, BindingScheme, TrainTuneResult,
    TrainWarmStart,
};
