//! Training tuner with parameter-binding schemes (Figure 13 / 22).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use ts_core::{GroupConfigs, Session, TrainConfigs};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::Device;

use crate::inference::{cache_stats, effective_threads, sweep};
use crate::{EvalMode, TunerOptions, TunerStats};

/// How forward / dgrad / wgrad dataflow parameters are coupled during
/// training tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BindingScheme {
    /// One configuration for all three kernel families (the
    /// conventional design the paper challenges; cheapest to tune).
    AllBound,
    /// Bind forward + dgrad (same workload pattern), tune wgrad
    /// separately — the *workload-pattern oriented* scheme, best on
    /// low-parallelism devices like the 2080 Ti.
    ForwardDgrad,
    /// Bind dgrad + wgrad (they share maps, minimising mapping
    /// overhead), tune forward separately — the *sparse-mapping
    /// oriented* scheme, best on high-parallelism devices like the A100.
    DgradWgrad,
    /// Tune all three independently (O(K^3) if done exhaustively; here
    /// the greedy group tuner keeps it linear but it still pays maximal
    /// mapping overhead).
    Decoupled,
}

impl BindingScheme {
    /// All schemes, for sweeps.
    pub const ALL: [BindingScheme; 4] = [
        BindingScheme::AllBound,
        BindingScheme::ForwardDgrad,
        BindingScheme::DgradWgrad,
        BindingScheme::Decoupled,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BindingScheme::AllBound => "bind fwd+dgrad+wgrad",
            BindingScheme::ForwardDgrad => "bind fwd+dgrad",
            BindingScheme::DgradWgrad => "bind dgrad+wgrad",
            BindingScheme::Decoupled => "decoupled",
        }
    }
}

/// Picks the paper's recommended scheme for a device: dgrad+wgrad
/// binding on high-parallelism GPUs (big tensor-to-CUDA-core gap),
/// forward+dgrad binding on low-end devices.
pub fn default_scheme_for(device: &Device) -> BindingScheme {
    if device.tensor_to_cuda_ratio(ts_gpusim::Precision::Fp16) >= 8.0 {
        BindingScheme::DgradWgrad
    } else {
        BindingScheme::ForwardDgrad
    }
}

/// Result of a training tuning run.
#[derive(Debug, Clone)]
pub struct TrainTuneResult {
    /// The tuned per-family configuration tables.
    pub configs: TrainConfigs,
    /// Tuned end-to-end training-iteration latency (mean over scenes).
    pub tuned_latency_us: f64,
    /// Latency of the all-bound default configuration.
    pub default_latency_us: f64,
    /// Number of end-to-end evaluations (tuning cost).
    pub evaluations: usize,
    /// The binding scheme used.
    pub scheme: BindingScheme,
    /// Wall-clock and cache instrumentation of the run.
    pub stats: TunerStats,
}

impl TrainTuneResult {
    /// Speedup over the all-bound default.
    pub fn speedup(&self) -> f64 {
        self.default_latency_us / self.tuned_latency_us.max(1e-9)
    }
}

/// A warm start for [`tune_training_warm`]: begin the per-family
/// greedy search from `seed` (typically the nearest cached training
/// schedule, via `ts-cache`) and re-tune only the groups in `retune`.
/// Groups outside `retune` keep their seeded per-family configurations
/// untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainWarmStart {
    /// Starting fwd/dgrad/wgrad configuration tables (the transferred
    /// training schedule).
    pub seed: TrainConfigs,
    /// Indices of the groups to re-tune; duplicates and out-of-range
    /// indices are ignored. An empty list re-tunes nothing and the
    /// result simply reprices the seeded schedule.
    pub retune: Vec<usize>,
}

impl TrainWarmStart {
    /// A warm start that re-tunes every group — a cold tune that merely
    /// begins from `seed` instead of the all-bound default.
    pub fn full(seed: TrainConfigs, n_groups: usize) -> Self {
        Self {
            seed,
            retune: (0..n_groups).collect(),
        }
    }
}

fn mean_latency(sessions: &[Session], cfgs: &TrainConfigs, ctx: &ExecCtx) -> f64 {
    sessions
        .iter()
        .map(|s| s.simulate_training(cfgs, ctx).total_us())
        .sum::<f64>()
        / sessions.len() as f64
}

/// Tunes training dataflows under `scheme` by reusing the group-based
/// greedy tuner once per *bound family set* (the paper's trick that
/// brings tuning cost from O(K^2)–O(K^3) down to O(K)).
///
/// # Panics
///
/// Panics if `sessions` is empty or the space is empty.
pub fn tune_training(
    sessions: &[Session],
    ctx: &ExecCtx,
    opts: &TunerOptions,
    scheme: BindingScheme,
) -> TrainTuneResult {
    tune_training_impl(sessions, ctx, opts, scheme, None)
}

/// [`tune_training`] warm-started from a transferred training schedule:
/// the greedy per-family search begins from `warm.seed` and sweeps only
/// the groups in `warm.retune` — the training-schedule cache's transfer
/// path (`1 + |retune| × |family sets| × |space|` evaluations instead
/// of a full cold tune). `default_latency_us` reports the latency of
/// the *seeded* schedule, so [`TrainTuneResult::speedup`] measures what
/// re-tuning bought over the transfer.
///
/// # Panics
///
/// Panics if `sessions` is empty or the space is empty.
pub fn tune_training_warm(
    sessions: &[Session],
    ctx: &ExecCtx,
    opts: &TunerOptions,
    scheme: BindingScheme,
    warm: &TrainWarmStart,
) -> TrainTuneResult {
    tune_training_impl(sessions, ctx, opts, scheme, Some(warm))
}

fn tune_training_impl(
    sessions: &[Session],
    ctx: &ExecCtx,
    opts: &TunerOptions,
    scheme: BindingScheme,
    warm: Option<&TrainWarmStart>,
) -> TrainTuneResult {
    assert!(!sessions.is_empty() && !opts.space.is_empty());
    let mut span = ts_trace::span!(
        ts_trace::Subsystem::Autotune,
        "tune_training",
        scheme = scheme.name(),
        sessions = sessions.len(),
        space = opts.space.len(),
    );
    let _quiet = ts_trace::suppress_sim_kernels();
    let wall_start = Instant::now();
    let n_groups = sessions[0].groups().len();
    let threads = effective_threads(opts.threads);
    let incremental = opts.mode == EvalMode::Incremental;
    let (hits0, misses0) = cache_stats(sessions);
    let mut evaluations = 0usize;

    // A cold tune's baseline is the all-bound default; a warm run's is
    // the seeded (transferred) schedule, so `speedup()` measures what
    // re-tuning bought over the transfer.
    let baseline = match warm {
        None => TrainConfigs::bound(opts.default),
        Some(w) => w.seed.clone(),
    };
    let default_latency_us = mean_latency(sessions, &baseline, ctx);
    evaluations += 1;

    // Which groups the greedy loop sweeps, in group order. A cold tune
    // sweeps all of them; a warm start only the drifted ones.
    let sweep_groups: Vec<usize> = match warm {
        None => (0..n_groups).collect(),
        Some(w) => {
            let mut gs: Vec<usize> = w.retune.iter().copied().filter(|&g| g < n_groups).collect();
            gs.sort_unstable();
            gs.dedup();
            gs
        }
    };

    // Which families tune together: slots of family-index sets.
    // 0 = fwd, 1 = dgrad, 2 = wgrad.
    let family_sets: Vec<Vec<usize>> = match scheme {
        BindingScheme::AllBound => vec![vec![0, 1, 2]],
        BindingScheme::ForwardDgrad => vec![vec![0, 1], vec![2]],
        BindingScheme::DgradWgrad => vec![vec![1, 2], vec![0]],
        BindingScheme::Decoupled => vec![vec![0], vec![1], vec![2]],
    };

    // Incremental state: per-session residual plus per-(session, group)
    // training contributions under the current `configs`.
    let residuals: Vec<f64> = if incremental {
        sessions
            .iter()
            .map(|s| s.training_residual_us(ctx))
            .collect()
    } else {
        Vec::new()
    };
    let group_contrib = |s: &Session, g: usize, cfgs: &TrainConfigs| {
        s.group_training_us(
            g,
            &cfgs.fwd.for_group(g),
            &cfgs.dgrad.for_group(g),
            &cfgs.wgrad.for_group(g),
            ctx,
        )
    };

    let mut configs = baseline;
    let mut contrib: Vec<Vec<f64>> = if incremental {
        sessions
            .iter()
            .map(|s| {
                (0..s.groups().len())
                    .map(|g| group_contrib(s, g, &configs))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut group_wall_us = Vec::new();
    for set in &family_sets {
        // One greedy group sweep per bound family set, holding the other
        // families at their current (already tuned or default) choices.
        let families: String = set
            .iter()
            .map(|&f| ["fwd", "dgrad", "wgrad"][f])
            .collect::<Vec<_>>()
            .join("+");
        let _fspan = ts_trace::span!(
            ts_trace::Subsystem::Autotune,
            "family_set",
            families = families.as_str(),
        );
        for &g in &sweep_groups {
            let mut gspan = ts_trace::span!(ts_trace::Subsystem::Autotune, "group", g = g);
            let group_start = Instant::now();
            let cand_us = if incremental {
                // The group's per-family configs under `candidate`
                // applied to this family set.
                let cur = [
                    configs.fwd.for_group(g),
                    configs.dgrad.for_group(g),
                    configs.wgrad.for_group(g),
                ];
                let (residuals, contrib) = (&residuals, &contrib);
                sweep(&opts.space, threads, |_, cand| {
                    let mut fam = cur;
                    for &f in set {
                        fam[f] = *cand;
                    }
                    let mut total = 0.0;
                    for (si, s) in sessions.iter().enumerate() {
                        let mut t = residuals[si];
                        for (g2, &clean) in contrib[si].iter().enumerate() {
                            t += if g2 == g {
                                s.group_training_us(g, &fam[0], &fam[1], &fam[2], ctx)
                            } else {
                                clean
                            };
                        }
                        total += t;
                    }
                    total / sessions.len() as f64
                })
            } else {
                let configs = &configs;
                sweep(&opts.space, threads, |_, cand| {
                    let mut trial = configs.clone();
                    for &fam in set {
                        family_mut(&mut trial, fam).set(g, *cand);
                    }
                    mean_latency(sessions, &trial, ctx)
                })
            };
            evaluations += opts.space.len();

            let mut best: (DataflowConfig, f64) = (opts.default, f64::INFINITY);
            for (i, &t) in cand_us.iter().enumerate() {
                if t < best.1 {
                    best = (opts.space[i], t);
                }
            }
            for &fam in set {
                family_mut(&mut configs, fam).set(g, best.0);
            }
            if incremental {
                for (si, s) in sessions.iter().enumerate() {
                    if g < contrib[si].len() {
                        contrib[si][g] = group_contrib(s, g, &configs);
                    }
                }
            }
            group_wall_us.push(group_start.elapsed().as_secs_f64() * 1e6);
            if gspan.active() {
                gspan.arg("candidates", opts.space.len());
                gspan.arg("best_us", best.1);
                gspan.arg("choice", format!("{:?}", best.0));
                ts_trace::counter_add("autotune.candidates.swept", opts.space.len() as i64);
                ts_trace::counter_add("autotune.groups.tuned", 1);
            }
        }
    }

    let tuned_latency_us = mean_latency(sessions, &configs, ctx);
    let (hits1, misses1) = cache_stats(sessions);
    if span.active() {
        span.arg("evaluations", evaluations);
        span.arg("default_us", default_latency_us);
        span.arg("tuned_us", tuned_latency_us);
        if let Some(t) = ts_trace::current() {
            t.gauge_set(
                "autotune.training.speedup",
                default_latency_us / tuned_latency_us.max(1e-9),
            );
        }
    }
    TrainTuneResult {
        configs,
        tuned_latency_us,
        default_latency_us,
        evaluations,
        scheme,
        stats: TunerStats {
            wall_us: wall_start.elapsed().as_secs_f64() * 1e6,
            group_wall_us,
            prepare_cache_hits: hits1 - hits0,
            prepare_cache_misses: misses1 - misses0,
            threads,
            incremental,
        },
    }
}

fn family_mut(cfgs: &mut TrainConfigs, fam: usize) -> &mut GroupConfigs {
    match fam {
        0 => &mut cfgs.fwd,
        1 => &mut cfgs.dgrad,
        2 => &mut cfgs.wgrad,
        _ => unreachable!("family index is 0..3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_tensor::Precision;
    use ts_workloads::Workload;

    fn session() -> Session {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let scene = w.batch_scaled(5, 0.05, 2);
        Session::new(&net, scene.coords())
    }

    #[test]
    fn all_schemes_beat_or_match_default() {
        let s = session();
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        for scheme in BindingScheme::ALL {
            let r = tune_training(
                std::slice::from_ref(&s),
                &ctx,
                &TunerOptions::default(),
                scheme,
            );
            assert!(
                r.tuned_latency_us <= r.default_latency_us + 1e-6,
                "{}: {} > {}",
                scheme.name(),
                r.tuned_latency_us,
                r.default_latency_us
            );
        }
    }

    #[test]
    fn partial_binding_not_worse_than_all_bound() {
        let s = session();
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        let all = tune_training(
            std::slice::from_ref(&s),
            &ctx,
            &TunerOptions::default(),
            BindingScheme::AllBound,
        );
        let dw = tune_training(
            &[s],
            &ctx,
            &TunerOptions::default(),
            BindingScheme::DgradWgrad,
        );
        assert!(dw.tuned_latency_us <= all.tuned_latency_us * 1.001);
    }

    #[test]
    fn evaluation_cost_ranks_by_scheme() {
        let s = session();
        let ctx = ExecCtx::simulate(Device::rtx2080ti(), Precision::Fp16);
        let opts = TunerOptions::default();
        let all = tune_training(
            std::slice::from_ref(&s),
            &ctx,
            &opts,
            BindingScheme::AllBound,
        );
        let fd = tune_training(
            std::slice::from_ref(&s),
            &ctx,
            &opts,
            BindingScheme::ForwardDgrad,
        );
        let dec = tune_training(&[s], &ctx, &opts, BindingScheme::Decoupled);
        assert!(all.evaluations < fd.evaluations);
        assert!(fd.evaluations < dec.evaluations);
    }

    #[test]
    fn incremental_matches_full_resimulation_for_training() {
        let s = session();
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        for scheme in [BindingScheme::DgradWgrad, BindingScheme::Decoupled] {
            let inc = tune_training(
                std::slice::from_ref(&s),
                &ctx,
                &TunerOptions::default(),
                scheme,
            );
            let full = tune_training(
                std::slice::from_ref(&s),
                &ctx,
                &TunerOptions::default().with_mode(EvalMode::FullResimulation),
                scheme,
            );
            assert_eq!(inc.configs, full.configs, "{}", scheme.name());
            assert_eq!(inc.tuned_latency_us, full.tuned_latency_us);
            assert_eq!(inc.default_latency_us, full.default_latency_us);
            assert_eq!(inc.evaluations, full.evaluations);
        }
    }

    #[test]
    fn warm_start_with_empty_retune_reprices_seed() {
        let s = session();
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        let opts = TunerOptions::default();
        let cold = tune_training(
            std::slice::from_ref(&s),
            &ctx,
            &opts,
            BindingScheme::DgradWgrad,
        );
        let warm = TrainWarmStart {
            seed: cold.configs.clone(),
            retune: Vec::new(),
        };
        let re = tune_training_warm(&[s], &ctx, &opts, BindingScheme::DgradWgrad, &warm);
        assert_eq!(re.evaluations, 1);
        assert_eq!(re.configs, cold.configs);
        assert_eq!(re.tuned_latency_us, cold.tuned_latency_us);
        // The warm baseline is the seed itself, so repricing is neutral.
        assert_eq!(re.default_latency_us, re.tuned_latency_us);
    }

    #[test]
    fn full_warm_start_from_default_matches_cold_tune() {
        let s = session();
        let n_groups = s.groups().len();
        let ctx = ExecCtx::simulate(Device::rtx2080ti(), Precision::Fp16);
        let opts = TunerOptions::default();
        let cold = tune_training(
            std::slice::from_ref(&s),
            &ctx,
            &opts,
            BindingScheme::ForwardDgrad,
        );
        let warm = TrainWarmStart::full(TrainConfigs::bound(opts.default), n_groups);
        let re = tune_training_warm(&[s], &ctx, &opts, BindingScheme::ForwardDgrad, &warm);
        assert_eq!(re.configs, cold.configs);
        assert_eq!(re.tuned_latency_us, cold.tuned_latency_us);
        assert_eq!(re.evaluations, cold.evaluations);
    }

    #[test]
    fn device_scheme_defaults_match_paper() {
        assert_eq!(
            default_scheme_for(&Device::a100()),
            BindingScheme::DgradWgrad
        );
        assert_eq!(
            default_scheme_for(&Device::rtx2080ti()),
            BindingScheme::ForwardDgrad
        );
    }
}
