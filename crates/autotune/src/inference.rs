//! Group-based greedy exhaustive search for inference (Figure 12).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use ts_core::{GroupConfigs, GroupKey, Session};
use ts_dataflow::{DataflowConfig, ExecCtx};

/// How candidate configurations are priced during the greedy search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Decomposed objective: per-group latency contributions are cached
    /// and only the group under test is re-simulated per candidate.
    /// Chooses the same configurations as [`EvalMode::FullResimulation`]
    /// at a fraction of the cost (the contribution of a group depends
    /// only on its own configuration).
    Incremental,
    /// Re-simulate the whole network end-to-end for every candidate
    /// (the naive reference implementation; kept for validation).
    FullResimulation,
}

/// Options controlling the inference tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerOptions {
    /// The dataflow design space to search per group.
    pub space: Vec<DataflowConfig>,
    /// Configuration used for not-yet-tuned groups and as the
    /// comparison baseline (SpConv v2's default: sorted implicit GEMM).
    pub default: DataflowConfig,
    /// Candidate pricing strategy.
    pub mode: EvalMode,
    /// Worker threads for the candidate sweep; 0 means one per
    /// available CPU. The result does not depend on this value.
    pub threads: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        Self {
            space: DataflowConfig::full_space(4),
            default: DataflowConfig::implicit_gemm(1),
            mode: EvalMode::Incremental,
            threads: 0,
        }
    }
}

impl TunerOptions {
    /// Tuner restricted to SpConv v2's design space (splits 1–2 only).
    pub fn spconv_v2() -> Self {
        Self {
            space: DataflowConfig::spconv_v2_space(),
            default: DataflowConfig::implicit_gemm(1),
            ..Self::default()
        }
    }

    /// Switches the candidate pricing strategy.
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the candidate-sweep worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Expands the design space with explicit tile policies: every
    /// dataflow is tried under each policy (adaptive tiling is itself a
    /// tunable dimension, Section 6.2).
    pub fn with_tile_policies(mut self, policies: &[ts_kernelgen::TilePolicy]) -> Self {
        let base = std::mem::take(&mut self.space);
        self.space = base
            .into_iter()
            .flat_map(|cfg| policies.iter().map(move |&p| cfg.with_tile_policy(p)))
            .collect();
        self
    }

    /// Tuner over implicit GEMM with the given split choices only
    /// (Table 5's design-space-restriction study).
    pub fn implicit_only(splits: &[u32]) -> Self {
        Self {
            space: splits
                .iter()
                .map(|&s| DataflowConfig::implicit_gemm(s))
                .collect(),
            default: DataflowConfig::implicit_gemm(splits[0]),
            ..Self::default()
        }
    }
}

/// Instrumentation of one tuning run: wall-clock cost and prepare-cache
/// behaviour (the simulated-latency *result* is in the accompanying
/// tune result; these numbers describe the tuner itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerStats {
    /// End-to-end wall-clock time of the tuning run, microseconds.
    pub wall_us: f64,
    /// Wall-clock time spent sweeping each group, microseconds.
    pub group_wall_us: Vec<f64>,
    /// Session prepare-cache hits during the run (summed over sessions).
    pub prepare_cache_hits: u64,
    /// Session prepare-cache misses during the run.
    pub prepare_cache_misses: u64,
    /// Worker threads used for candidate sweeps.
    pub threads: usize,
    /// Whether the incremental (decomposed) objective was used.
    pub incremental: bool,
}

/// Resolves a requested thread count (0 = one per available CPU).
pub(crate) fn effective_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluates `eval(i, &space[i])` for every candidate using up to
/// `threads` scoped worker threads, returning results in candidate
/// order — so the caller's argmin is deterministic and identical to a
/// serial sweep regardless of parallelism.
pub(crate) fn sweep<F>(space: &[DataflowConfig], threads: usize, eval: F) -> Vec<f64>
where
    F: Fn(usize, &DataflowConfig) -> f64 + Sync,
{
    let n = space.len();
    let workers = effective_threads(threads).min(n).max(1);
    let mut out = vec![0.0f64; n];
    if workers == 1 {
        for (i, cand) in space.iter().enumerate() {
            out[i] = eval(i, cand);
        }
        return out;
    }
    let chunk = n.div_ceil(workers);
    let eval = &eval;
    // Propagate the caller's tracer (if any) into the scoped workers so
    // counters recorded during candidate evaluation land in one place.
    let tracer = ts_trace::current();
    crossbeam::thread::scope(|scope| {
        for (ci, (cands, outs)) in space.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            let base = ci * chunk;
            let tracer = tracer.clone();
            scope.spawn(move |_| {
                ts_trace::install_opt(tracer.as_ref());
                for (j, (cand, slot)) in cands.iter().zip(outs.iter_mut()).enumerate() {
                    *slot = eval(base + j, cand);
                }
            });
        }
    })
    .expect("candidate sweep worker panicked");
    out
}

/// Sums `(hits, misses)` of every session's prepare cache.
pub(crate) fn cache_stats(sessions: &[Session]) -> (u64, u64) {
    sessions.iter().fold((0, 0), |(h, m), s| {
        let c = s.prepare_cache_counters();
        (h + c.hits, m + c.misses)
    })
}

/// Result of an inference tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// Per-group winning configurations.
    pub configs: Option<GroupConfigs>,
    /// End-to-end latency with the tuned configuration (mean over
    /// sample scenes), microseconds.
    pub tuned_latency_us: f64,
    /// End-to-end latency with the uniform default configuration.
    pub default_latency_us: f64,
    /// Number of end-to-end evaluations performed — the tuner's cost,
    /// linear in (groups x space size) thanks to the greedy scheme.
    pub evaluations: usize,
    /// The winning choice per group, in group order.
    pub per_group_choice: Vec<(GroupKey, DataflowConfig)>,
    /// Wall-clock and cache instrumentation of the run.
    pub stats: TunerStats,
}

impl TuneResult {
    /// Speedup of the tuned configuration over the default.
    pub fn speedup(&self) -> f64 {
        self.default_latency_us / self.tuned_latency_us.max(1e-9)
    }

    /// The tuned per-group configuration table, or `None` if `configs`
    /// was stripped before serialization (e.g. a latency-only export).
    pub fn group_configs(&self) -> Option<&GroupConfigs> {
        self.configs.as_ref()
    }

    /// Serialises the full result (including the schedule) to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on failure.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a result saved with [`TuneResult::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<TuneResult, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A warm start for [`tune_inference_warm`]: begin the greedy search
/// from `seed` (typically the nearest cached schedule, via `ts-cache`)
/// and re-tune only the groups in `retune` — the groups whose map
/// statistics drifted from the workload the seed was tuned on. Groups
/// outside `retune` keep their seeded configuration untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Starting per-group configuration table (the transferred schedule).
    pub seed: GroupConfigs,
    /// Indices of the groups to re-tune; duplicates and out-of-range
    /// indices are ignored. An empty list re-tunes nothing and the
    /// result simply reprices the seeded schedule.
    pub retune: Vec<usize>,
}

impl WarmStart {
    /// A warm start that re-tunes every group of a session with
    /// `n_groups` groups — equivalent to a cold tune that merely begins
    /// from `seed` instead of the uniform default.
    pub fn full(seed: GroupConfigs, n_groups: usize) -> Self {
        Self {
            seed,
            retune: (0..n_groups).collect(),
        }
    }
}

fn mean_latency(sessions: &[Session], cfgs: &GroupConfigs, ctx: &ExecCtx) -> f64 {
    sessions
        .iter()
        .map(|s| s.simulate_inference(cfgs, ctx).total_us())
        .sum::<f64>()
        / sessions.len() as f64
}

/// Runs the group-based greedy exhaustive search over `sessions`
/// (typically a handful of sample scenes of the target workload — the
/// paper uses e.g. 100 Waymo scenes; the tuned schedule is then reused
/// for millions of scenes).
///
/// Groups are tuned in first-use order: group `k` tries every candidate
/// while groups `1..k` keep their tuned choices and groups `k+1..` the
/// default — reducing complexity from exponential to linear. End-to-end
/// latency is the objective, because U-Net groups interleave and
/// per-group times alone cannot capture mapping amortisation.
///
/// Under [`EvalMode::Incremental`] (the default) the end-to-end
/// objective is evaluated as `residual + Σ per-group contributions`
/// with every clean group's contribution served from a cache, so each
/// candidate only re-simulates the group under test; candidates are
/// additionally swept in parallel with scoped threads. Reported
/// latencies (`default_latency_us`, `tuned_latency_us`) always come
/// from full monolithic simulations, so they are bit-identical across
/// modes.
///
/// # Panics
///
/// Panics if `sessions` is empty or the search space is empty.
pub fn tune_inference(sessions: &[Session], ctx: &ExecCtx, opts: &TunerOptions) -> TuneResult {
    tune_impl(sessions, ctx, opts, None)
}

/// [`tune_inference`] warm-started from a transferred schedule: the
/// greedy search begins from `warm.seed` instead of the uniform
/// default and sweeps only the groups listed in `warm.retune`; every
/// other group keeps its seeded configuration.
///
/// This is the cross-workload transfer path of the schedule cache
/// (`ts-cache`): a new workload whose map statistics mostly match a
/// previously tuned one only pays `1 + |retune| x |space|` evaluations
/// instead of `1 + n_groups x |space|`. With
/// [`WarmStart::full`]`(GroupConfigs::uniform(opts.default), n)` the
/// result is bit-identical to a cold [`tune_inference`].
///
/// `default_latency_us` reports the latency of the *seeded* schedule
/// (the warm run's baseline), so [`TuneResult::speedup`] measures the
/// improvement re-tuning bought over the transferred schedule.
///
/// # Panics
///
/// Panics if `sessions` is empty or the search space is empty.
pub fn tune_inference_warm(
    sessions: &[Session],
    ctx: &ExecCtx,
    opts: &TunerOptions,
    warm: &WarmStart,
) -> TuneResult {
    tune_impl(sessions, ctx, opts, Some(warm))
}

fn tune_impl(
    sessions: &[Session],
    ctx: &ExecCtx,
    opts: &TunerOptions,
    warm: Option<&WarmStart>,
) -> TuneResult {
    assert!(
        !sessions.is_empty(),
        "tuner needs at least one sample scene"
    );
    assert!(
        !opts.space.is_empty(),
        "tuner needs a non-empty design space"
    );
    let mut span = ts_trace::span!(
        ts_trace::Subsystem::Autotune,
        "tune_inference",
        sessions = sessions.len(),
        space = opts.space.len(),
        incremental = opts.mode == EvalMode::Incremental,
        warm = warm.is_some(),
    );
    // Candidate pricing floods the simulated-kernel lanes; keep the
    // trace to the tuner's own decision structure.
    let _quiet = ts_trace::suppress_sim_kernels();
    let wall_start = Instant::now();
    let n_groups = sessions[0].groups().len();
    let threads = effective_threads(opts.threads);
    let incremental = opts.mode == EvalMode::Incremental;
    let (hits0, misses0) = cache_stats(sessions);

    // Which groups the greedy loop sweeps, in group order. A cold tune
    // sweeps all of them; a warm start only the drifted ones.
    let sweep_groups: Vec<usize> = match warm {
        None => (0..n_groups).collect(),
        Some(w) => {
            let mut gs: Vec<usize> = w.retune.iter().copied().filter(|&g| g < n_groups).collect();
            gs.sort_unstable();
            gs.dedup();
            gs
        }
    };

    let mut configs = match warm {
        None => GroupConfigs::uniform(opts.default),
        Some(w) => w.seed.clone(),
    };
    let default_latency_us = mean_latency(sessions, &configs, ctx);
    let mut evaluations = 1;

    // Incremental state: per-session residual plus per-(session, group)
    // latency contributions under the current `configs`.
    let residuals: Vec<f64> = if incremental {
        sessions
            .iter()
            .map(|s| s.inference_residual_us(ctx))
            .collect()
    } else {
        Vec::new()
    };
    let mut contrib: Vec<Vec<f64>> = if incremental {
        sessions
            .iter()
            .map(|s| {
                (0..s.groups().len())
                    .map(|g| s.group_inference_us(g, &configs.for_group(g), ctx))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut group_wall_us = vec![0.0f64; n_groups];
    for &g in &sweep_groups {
        let mut gspan = ts_trace::span!(ts_trace::Subsystem::Autotune, "group", g = g);
        let group_start = Instant::now();
        let cand_us = if incremental {
            let (residuals, contrib) = (&residuals, &contrib);
            sweep(&opts.space, threads, |_, cand| {
                let mut total = 0.0;
                for (si, s) in sessions.iter().enumerate() {
                    let mut t = residuals[si];
                    for (g2, &clean) in contrib[si].iter().enumerate() {
                        t += if g2 == g {
                            s.group_inference_us(g, cand, ctx)
                        } else {
                            clean
                        };
                    }
                    total += t;
                }
                total / sessions.len() as f64
            })
        } else {
            let configs = &configs;
            sweep(&opts.space, threads, |_, cand| {
                let mut trial = configs.clone();
                trial.set(g, *cand);
                mean_latency(sessions, &trial, ctx)
            })
        };
        evaluations += opts.space.len();

        // Serial argmin in candidate order with strict `<`: identical
        // tie-breaking to the naive serial tuner.
        let mut best = (opts.default, f64::INFINITY);
        for (i, &t) in cand_us.iter().enumerate() {
            if t < best.1 {
                best = (opts.space[i], t);
            }
        }
        configs.set(g, best.0);
        if incremental {
            for (si, s) in sessions.iter().enumerate() {
                if g < contrib[si].len() {
                    contrib[si][g] = s.group_inference_us(g, &best.0, ctx);
                }
            }
        }
        group_wall_us[g] = group_start.elapsed().as_secs_f64() * 1e6;
        if gspan.active() {
            gspan.arg("candidates", opts.space.len());
            gspan.arg("best_us", best.1);
            gspan.arg("choice", format!("{:?}", best.0));
            ts_trace::counter_add("autotune.candidates.swept", opts.space.len() as i64);
            ts_trace::counter_add("autotune.groups.tuned", 1);
        }
    }

    let tuned_latency_us = mean_latency(sessions, &configs, ctx);
    let per_group_choice = sessions[0]
        .groups()
        .iter()
        .enumerate()
        .map(|(g, info)| (info.key, configs.for_group(g)))
        .collect();
    let (hits1, misses1) = cache_stats(sessions);

    if span.active() {
        span.arg("evaluations", evaluations);
        span.arg("default_us", default_latency_us);
        span.arg("tuned_us", tuned_latency_us);
        if let Some(t) = ts_trace::current() {
            t.gauge_set(
                "autotune.inference.speedup",
                default_latency_us / tuned_latency_us.max(1e-9),
            );
        }
    }
    TuneResult {
        configs: Some(configs),
        tuned_latency_us,
        default_latency_us,
        evaluations,
        per_group_choice,
        stats: TunerStats {
            wall_us: wall_start.elapsed().as_secs_f64() * 1e6,
            group_wall_us,
            prepare_cache_hits: hits1 - hits0,
            prepare_cache_misses: misses1 - misses0,
            threads,
            incremental,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_gpusim::Device;
    use ts_kernelmap::Coord;
    use ts_tensor::Precision;
    use ts_workloads::Workload;

    fn session(scale: f32) -> Session {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let scene = w.scene_scaled(3, scale);
        Session::new(&net, scene.coords())
    }

    #[test]
    fn tuned_never_loses_to_default() {
        let s = session(0.06);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert!(r.tuned_latency_us <= r.default_latency_us + 1e-6);
        assert!(r.speedup() >= 1.0);
    }

    #[test]
    fn evaluation_count_is_linear() {
        let s = session(0.06);
        let n_groups = s.groups().len();
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let opts = TunerOptions::default();
        let r = tune_inference(&[s], &ctx, &opts);
        assert_eq!(r.evaluations, 1 + n_groups * opts.space.len());
    }

    #[test]
    fn full_space_beats_spconv_space() {
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp32);
        let s1 = session(0.06);
        let full = tune_inference(&[s1], &ctx, &TunerOptions::default());
        let s2 = session(0.06);
        let restricted = tune_inference(&[s2], &ctx, &TunerOptions::spconv_v2());
        assert!(
            full.tuned_latency_us <= restricted.tuned_latency_us + 1e-6,
            "full {} > restricted {}",
            full.tuned_latency_us,
            restricted.tuned_latency_us
        );
    }

    #[test]
    fn per_group_choices_cover_all_groups() {
        let s = session(0.05);
        let n = s.groups().len();
        let ctx = ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert_eq!(r.per_group_choice.len(), n);
    }

    #[test]
    fn works_on_multiple_scenes() {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let sessions: Vec<Session> = (0..2)
            .map(|i| {
                let scene = w.scene_scaled(10 + i, 0.05);
                Session::new(&net, scene.coords())
            })
            .collect();
        let ctx = ExecCtx::simulate(Device::rtx2080ti(), Precision::Fp16);
        let r = tune_inference(&sessions, &ctx, &TunerOptions::default());
        assert!(r.tuned_latency_us > 0.0);
    }

    #[test]
    fn tune_results_round_trip_through_json() {
        let s = session(0.05);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        let json = r.to_json().expect("serializes");
        let back = TuneResult::from_json(&json).expect("deserializes");
        assert_eq!(back.per_group_choice, r.per_group_choice);
        assert_eq!(
            back.group_configs().expect("configs present").for_group(0),
            r.group_configs().expect("configs present").for_group(0)
        );
        assert_eq!(back.tuned_latency_us, r.tuned_latency_us);
        assert_eq!(back.stats, r.stats);
    }

    /// The tentpole equivalence claim: incremental pricing picks the
    /// same schedule as full re-simulation, bit for bit.
    #[test]
    fn incremental_matches_full_resimulation() {
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let inc = tune_inference(&[session(0.06)], &ctx, &TunerOptions::default());
        let full = tune_inference(
            &[session(0.06)],
            &ctx,
            &TunerOptions::default().with_mode(EvalMode::FullResimulation),
        );
        assert_eq!(inc.per_group_choice, full.per_group_choice);
        assert_eq!(inc.tuned_latency_us, full.tuned_latency_us);
        assert_eq!(inc.default_latency_us, full.default_latency_us);
        assert_eq!(inc.evaluations, full.evaluations);
        assert!(inc.stats.incremental);
        assert!(!full.stats.incremental);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        let serial = tune_inference(
            &[session(0.05)],
            &ctx,
            &TunerOptions::default().with_threads(1),
        );
        let par = tune_inference(
            &[session(0.05)],
            &ctx,
            &TunerOptions::default().with_threads(4),
        );
        assert_eq!(serial.per_group_choice, par.per_group_choice);
        assert_eq!(serial.tuned_latency_us, par.tuned_latency_us);
        assert_eq!(par.stats.threads, 4);
    }

    #[test]
    fn stats_are_populated() {
        let s = session(0.05);
        let n = s.groups().len();
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert!(r.stats.wall_us > 0.0);
        assert_eq!(r.stats.group_wall_us.len(), n);
        assert!(
            r.stats.prepare_cache_hits > 0,
            "greedy sweep revisits configurations, so the cache must hit"
        );
        assert!(r.stats.prepare_cache_misses > 0);
    }

    #[test]
    fn tile_policy_dimension_never_loses() {
        let s = session(0.05);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let base = tune_inference(std::slice::from_ref(&s), &ctx, &TunerOptions::default());
        let with_tiles = tune_inference(
            &[s],
            &ctx,
            &TunerOptions::default().with_tile_policies(&[
                ts_kernelgen::TilePolicy::Adaptive,
                ts_kernelgen::TilePolicy::Fixed(ts_gpusim::TileShape::small()),
                ts_kernelgen::TilePolicy::Fixed(ts_gpusim::TileShape::large()),
            ]),
        );
        assert!(with_tiles.tuned_latency_us <= base.tuned_latency_us + 1e-6);
        assert_eq!(with_tiles.evaluations, 1 + s_groups(&with_tiles) * 7 * 3);
    }

    fn s_groups(r: &TuneResult) -> usize {
        r.per_group_choice.len()
    }

    #[test]
    fn tiny_grid_session_tunes() {
        let mut b = ts_core::NetworkBuilder::new("tiny", 4);
        let c = b.conv_block("c", ts_core::NetworkBuilder::INPUT, 8, 3, 1);
        let _ = b.conv_block("d", c, 16, 2, 2);
        let net = b.build();
        let coords: Vec<Coord> = (0..100).map(|i| Coord::new(0, i % 10, i / 10, 0)).collect();
        let s = Session::new(&net, &coords);
        let ctx = ExecCtx::simulate(Device::gtx1080ti(), Precision::Fp32);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert_eq!(r.per_group_choice.len(), 2);
    }
}
