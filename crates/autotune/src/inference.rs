//! Group-based greedy exhaustive search for inference (Figure 12).

use serde::{Deserialize, Serialize};

use ts_core::{GroupConfigs, GroupKey, Session};
use ts_dataflow::{DataflowConfig, ExecCtx};

/// Options controlling the inference tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerOptions {
    /// The dataflow design space to search per group.
    pub space: Vec<DataflowConfig>,
    /// Configuration used for not-yet-tuned groups and as the
    /// comparison baseline (SpConv v2's default: sorted implicit GEMM).
    pub default: DataflowConfig,
}

impl Default for TunerOptions {
    fn default() -> Self {
        Self {
            space: DataflowConfig::full_space(4),
            default: DataflowConfig::implicit_gemm(1),
        }
    }
}

impl TunerOptions {
    /// Tuner restricted to SpConv v2's design space (splits 1–2 only).
    pub fn spconv_v2() -> Self {
        Self { space: DataflowConfig::spconv_v2_space(), default: DataflowConfig::implicit_gemm(1) }
    }

    /// Expands the design space with explicit tile policies: every
    /// dataflow is tried under each policy (adaptive tiling is itself a
    /// tunable dimension, Section 6.2).
    pub fn with_tile_policies(mut self, policies: &[ts_kernelgen::TilePolicy]) -> Self {
        let base = std::mem::take(&mut self.space);
        self.space = base
            .into_iter()
            .flat_map(|cfg| policies.iter().map(move |&p| cfg.with_tile_policy(p)))
            .collect();
        self
    }

    /// Tuner over implicit GEMM with the given split choices only
    /// (Table 5's design-space-restriction study).
    pub fn implicit_only(splits: &[u32]) -> Self {
        Self {
            space: splits.iter().map(|&s| DataflowConfig::implicit_gemm(s)).collect(),
            default: DataflowConfig::implicit_gemm(splits[0]),
        }
    }
}

/// Result of an inference tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// Per-group winning configurations.
    pub configs: Option<GroupConfigs>,
    /// End-to-end latency with the tuned configuration (mean over
    /// sample scenes), microseconds.
    pub tuned_latency_us: f64,
    /// End-to-end latency with the uniform default configuration.
    pub default_latency_us: f64,
    /// Number of end-to-end evaluations performed — the tuner's cost,
    /// linear in (groups x space size) thanks to the greedy scheme.
    pub evaluations: usize,
    /// The winning choice per group, in group order.
    pub per_group_choice: Vec<(GroupKey, DataflowConfig)>,
}

impl TuneResult {
    /// Speedup of the tuned configuration over the default.
    pub fn speedup(&self) -> f64 {
        self.default_latency_us / self.tuned_latency_us.max(1e-9)
    }

    /// The tuned per-group configuration table.
    ///
    /// # Panics
    ///
    /// Panics if `configs` was stripped before serialization.
    pub fn group_configs(&self) -> &GroupConfigs {
        self.configs.as_ref().expect("configs present on tuned results")
    }

    /// Serialises the full result (including the schedule) to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on failure.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a result saved with [`TuneResult::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<TuneResult, serde_json::Error> {
        serde_json::from_str(json)
    }
}

fn mean_latency(sessions: &[Session], cfgs: &GroupConfigs, ctx: &ExecCtx) -> f64 {
    sessions.iter().map(|s| s.simulate_inference(cfgs, ctx).total_us()).sum::<f64>()
        / sessions.len().max(1) as f64
}

/// Runs the group-based greedy exhaustive search over `sessions`
/// (typically a handful of sample scenes of the target workload — the
/// paper uses e.g. 100 Waymo scenes; the tuned schedule is then reused
/// for millions of scenes).
///
/// Groups are tuned in first-use order: group `k` tries every candidate
/// while groups `1..k` keep their tuned choices and groups `k+1..` the
/// default — reducing complexity from exponential to linear. End-to-end
/// latency is the objective, because U-Net groups interleave and
/// per-group times alone cannot capture mapping amortisation.
///
/// # Panics
///
/// Panics if `sessions` is empty or the search space is empty.
pub fn tune_inference(sessions: &[Session], ctx: &ExecCtx, opts: &TunerOptions) -> TuneResult {
    assert!(!sessions.is_empty(), "tuner needs at least one sample scene");
    assert!(!opts.space.is_empty(), "tuner needs a non-empty design space");
    let n_groups = sessions[0].groups().len();

    let mut configs = GroupConfigs::uniform(opts.default);
    let default_latency_us = mean_latency(sessions, &configs, ctx);
    let mut evaluations = 1;

    for g in 0..n_groups {
        let mut best = (opts.default, f64::INFINITY);
        for &candidate in &opts.space {
            let mut trial = configs.clone();
            trial.set(g, candidate);
            let t = mean_latency(sessions, &trial, ctx);
            evaluations += 1;
            if t < best.1 {
                best = (candidate, t);
            }
        }
        configs.set(g, best.0);
    }

    let tuned_latency_us = mean_latency(sessions, &configs, ctx);
    let per_group_choice = sessions[0]
        .groups()
        .iter()
        .enumerate()
        .map(|(g, info)| (info.key, configs.for_group(g)))
        .collect();

    TuneResult {
        configs: Some(configs),
        tuned_latency_us,
        default_latency_us,
        evaluations,
        per_group_choice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_gpusim::Device;
    use ts_kernelmap::Coord;
    use ts_tensor::Precision;
    use ts_workloads::Workload;

    fn session(scale: f32) -> Session {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let scene = w.scene_scaled(3, scale);
        Session::new(&net, scene.coords())
    }

    #[test]
    fn tuned_never_loses_to_default() {
        let s = session(0.06);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert!(r.tuned_latency_us <= r.default_latency_us + 1e-6);
        assert!(r.speedup() >= 1.0);
    }

    #[test]
    fn evaluation_count_is_linear() {
        let s = session(0.06);
        let n_groups = s.groups().len();
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let opts = TunerOptions::default();
        let r = tune_inference(&[s], &ctx, &opts);
        assert_eq!(r.evaluations, 1 + n_groups * opts.space.len());
    }

    #[test]
    fn full_space_beats_spconv_space() {
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp32);
        let s1 = session(0.06);
        let full = tune_inference(&[s1], &ctx, &TunerOptions::default());
        let s2 = session(0.06);
        let restricted = tune_inference(&[s2], &ctx, &TunerOptions::spconv_v2());
        assert!(
            full.tuned_latency_us <= restricted.tuned_latency_us + 1e-6,
            "full {} > restricted {}",
            full.tuned_latency_us,
            restricted.tuned_latency_us
        );
    }

    #[test]
    fn per_group_choices_cover_all_groups() {
        let s = session(0.05);
        let n = s.groups().len();
        let ctx = ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert_eq!(r.per_group_choice.len(), n);
    }

    #[test]
    fn works_on_multiple_scenes() {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let sessions: Vec<Session> = (0..2)
            .map(|i| {
                let scene = w.scene_scaled(10 + i, 0.05);
                Session::new(&net, scene.coords())
            })
            .collect();
        let ctx = ExecCtx::simulate(Device::rtx2080ti(), Precision::Fp16);
        let r = tune_inference(&sessions, &ctx, &TunerOptions::default());
        assert!(r.tuned_latency_us > 0.0);
    }

    #[test]
    fn tune_results_round_trip_through_json() {
        let s = session(0.05);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        let json = r.to_json().expect("serializes");
        let back = TuneResult::from_json(&json).expect("deserializes");
        assert_eq!(back.per_group_choice, r.per_group_choice);
        assert_eq!(
            back.group_configs().for_group(0),
            r.group_configs().for_group(0)
        );
        assert_eq!(back.tuned_latency_us, r.tuned_latency_us);
    }

    #[test]
    fn tile_policy_dimension_never_loses() {
        let s = session(0.05);
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
        let base = tune_inference(&[s.clone()], &ctx, &TunerOptions::default());
        let with_tiles = tune_inference(
            &[s],
            &ctx,
            &TunerOptions::default().with_tile_policies(&[
                ts_kernelgen::TilePolicy::Adaptive,
                ts_kernelgen::TilePolicy::Fixed(ts_gpusim::TileShape::small()),
                ts_kernelgen::TilePolicy::Fixed(ts_gpusim::TileShape::large()),
            ]),
        );
        assert!(with_tiles.tuned_latency_us <= base.tuned_latency_us + 1e-6);
        assert_eq!(with_tiles.evaluations, 1 + s_groups(&with_tiles) * 7 * 3);
    }

    fn s_groups(r: &TuneResult) -> usize {
        r.per_group_choice.len()
    }

    #[test]
    fn tiny_grid_session_tunes() {
        let mut b = ts_core::NetworkBuilder::new("tiny", 4);
        let c = b.conv_block("c", ts_core::NetworkBuilder::INPUT, 8, 3, 1);
        let _ = b.conv_block("d", c, 16, 2, 2);
        let net = b.build();
        let coords: Vec<Coord> =
            (0..100).map(|i| Coord::new(0, i % 10, i / 10, 0)).collect();
        let s = Session::new(&net, &coords);
        let ctx = ExecCtx::simulate(Device::gtx1080ti(), Precision::Fp32);
        let r = tune_inference(&[s], &ctx, &TunerOptions::default());
        assert_eq!(r.per_group_choice.len(), 2);
    }
}
