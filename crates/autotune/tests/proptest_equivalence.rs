//! Property-based equivalence of the incremental tuner and the naive
//! full-resimulation tuner, plus concurrency smoke tests.
//!
//! The incremental evaluator's correctness argument is that a group's
//! latency contribution depends only on its own configuration, so
//! `residual + Σ contributions` recomposes the monolithic objective.
//! These properties stress that claim across random networks, scenes,
//! devices, precisions and binding schemes: the chosen schedule, the
//! reported latencies (bit for bit) and the evaluation accounting must
//! all match the naive reference.

use proptest::prelude::*;

use ts_autotune::{tune_inference, tune_training, BindingScheme, EvalMode, TunerOptions};
use ts_core::{Network, NetworkBuilder, Session};
use ts_dataflow::ExecCtx;
use ts_gpusim::Device;
use ts_kernelmap::{unique_coords, Coord};
use ts_tensor::Precision;
use ts_workloads::Workload;

fn device(idx: usize) -> Device {
    match idx % 5 {
        0 => Device::rtx3090(),
        1 => Device::a100(),
        2 => Device::rtx2080ti(),
        3 => Device::jetson_orin(),
        _ => Device::gtx1080ti(),
    }
}

fn precision(idx: usize) -> Precision {
    if idx.is_multiple_of(2) {
        Precision::Fp16
    } else {
        Precision::Fp32
    }
}

/// A small random network: a chain of submanifold blocks, optionally
/// followed by a strided downsample + transposed upsample pair (so both
/// map orientations are exercised).
fn build_network(channels: &[usize], downsample: bool) -> Network {
    let mut b = NetworkBuilder::new("prop", 4);
    let mut prev = NetworkBuilder::INPUT;
    for (i, &c) in channels.iter().enumerate() {
        prev = b.conv_block(&format!("c{i}"), prev, c, 3, 1);
    }
    if downsample {
        let d = b.conv_block("down", prev, 16, 2, 2);
        let _ = b.conv_block_transposed("up", d, 8, 2, 2);
    }
    b.build()
}

fn coords_strategy() -> impl Strategy<Value = Vec<Coord>> {
    prop::collection::vec((0..10i32, 0..10i32, 0..4i32), 20..120).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, z)| Coord::new(0, x, y, z))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_inference_equals_naive(
        coords in coords_strategy(),
        channels in prop::collection::vec(4usize..17, 1..3),
        downsample in any::<bool>(),
        dev in 0usize..5,
        prec in 0usize..2,
    ) {
        let net = build_network(&channels, downsample);
        let coords = unique_coords(&coords);
        let session = Session::new(&net, &coords);
        let sessions = std::slice::from_ref(&session);
        let ctx = ExecCtx::simulate(device(dev), precision(prec));
        let opts = TunerOptions::default().with_threads(1);
        let inc = tune_inference(sessions, &ctx, &opts);
        let full = tune_inference(
            sessions,
            &ctx,
            &opts.clone().with_mode(EvalMode::FullResimulation),
        );
        prop_assert_eq!(&inc.per_group_choice, &full.per_group_choice);
        prop_assert_eq!(inc.tuned_latency_us.to_bits(), full.tuned_latency_us.to_bits());
        prop_assert_eq!(inc.default_latency_us.to_bits(), full.default_latency_us.to_bits());
        prop_assert_eq!(inc.evaluations, full.evaluations);
    }

    #[test]
    fn incremental_training_equals_naive(
        coords in coords_strategy(),
        channels in prop::collection::vec(4usize..17, 1..3),
        downsample in any::<bool>(),
        dev in 0usize..5,
        prec in 0usize..2,
        scheme in 0usize..4,
    ) {
        let net = build_network(&channels, downsample);
        let coords = unique_coords(&coords);
        let session = Session::new(&net, &coords);
        let sessions = std::slice::from_ref(&session);
        let ctx = ExecCtx::simulate(device(dev), precision(prec));
        let scheme = BindingScheme::ALL[scheme];
        let opts = TunerOptions::default().with_threads(1);
        let inc = tune_training(sessions, &ctx, &opts, scheme);
        let full = tune_training(
            sessions,
            &ctx,
            &opts.clone().with_mode(EvalMode::FullResimulation),
            scheme,
        );
        prop_assert_eq!(inc.tuned_latency_us.to_bits(), full.tuned_latency_us.to_bits());
        prop_assert_eq!(inc.default_latency_us.to_bits(), full.default_latency_us.to_bits());
        prop_assert_eq!(inc.evaluations, full.evaluations);
        prop_assert_eq!(
            inc.configs.fwd.for_group(0), full.configs.fwd.for_group(0)
        );
        prop_assert_eq!(
            inc.configs.dgrad.for_group(0), full.configs.dgrad.for_group(0)
        );
        prop_assert_eq!(
            inc.configs.wgrad.for_group(0), full.configs.wgrad.for_group(0)
        );
    }
}

fn workload_session() -> Session {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let scene = w.scene_scaled(5, 0.05);
    Session::new(&net, scene.coords())
}

/// Parallel sweeps must agree with serial sweeps: same schedule, same
/// bit-identical latencies, regardless of worker count.
#[test]
fn parallel_and_serial_sweeps_agree() {
    let session = workload_session();
    let sessions = std::slice::from_ref(&session);
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let serial = tune_inference(sessions, &ctx, &TunerOptions::default().with_threads(1));
    for threads in [2, 4, 8] {
        let par = tune_inference(
            sessions,
            &ctx,
            &TunerOptions::default().with_threads(threads),
        );
        assert_eq!(
            par.per_group_choice, serial.per_group_choice,
            "threads={threads}"
        );
        assert_eq!(
            par.tuned_latency_us.to_bits(),
            serial.tuned_latency_us.to_bits(),
            "threads={threads}"
        );
    }
}

/// `Session` is shared across scoped threads by the sweep; hammer the
/// same session from several *concurrent tuning runs* to smoke-test the
/// prepare cache's interior locking.
#[test]
fn concurrent_tuning_runs_share_a_session() {
    let session = workload_session();
    let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
    let reference = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default().with_threads(1),
    );
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let session = &session;
                let ctx = &ctx;
                scope.spawn(move || {
                    tune_inference(
                        std::slice::from_ref(session),
                        ctx,
                        &TunerOptions::default().with_threads(1 + i % 2),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tuning thread panicked"))
            .collect()
    });
    for r in &results {
        assert_eq!(r.per_group_choice, reference.per_group_choice);
        assert_eq!(
            r.tuned_latency_us.to_bits(),
            reference.tuned_latency_us.to_bits()
        );
    }
}
