//! The end-to-end trainer: fused step pipeline over multi-frame
//! batched LiDAR scenes.
//!
//! Each [`Trainer::step`] compiles one fused [`StepPlan`]-shaped
//! artifact — session (kernel maps patched incrementally across
//! temporally coherent steps), tuned per-family dataflow schedule
//! (pulled through the training-schedule cache), and simulated
//! per-phase cost — then executes the functional pipeline: forward →
//! loss → dgrad → wgrad per micro-batch, gradient accumulation,
//! dynamic-loss-scale overflow check, and a momentum-SGD update on the
//! FP32 master weights.

use std::fmt;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use ts_autotune::{default_scheme_for, BindingScheme, TunerOptions};
use ts_cache::{tune_training_cached, DriftPolicy, TrainScheduleCache, TuneOrigin};
use ts_core::{
    forward_backward, CompileError, LossScaler, Network, NetworkWeights, SparseTensor, TrainConfigs,
};
use ts_dataflow::{ConvWeights, ExecCtx};
use ts_kernelmap::{Coord, DeltaConfig, MapUpdate};
use ts_obs::{HealthSnapshot, HistogramSnapshot, ObsConfig, Telemetry};
use ts_tensor::Matrix;
use ts_trace::Subsystem;
use ts_workloads::{LidarScene, LidarStream};

use crate::plan::{compile_step, optimizer_us, split_count_for, PlanState, StepSim};

/// A step failed: either the scene would not compile, or the
/// training-schedule cache's write-back hit an I/O error.
#[derive(Debug)]
pub enum TrainError {
    /// The batched scene failed session compilation.
    Compile(CompileError),
    /// The directory-backed schedule cache failed to persist an entry.
    Cache(io::Error),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Compile(e) => write!(f, "step compilation failed: {e}"),
            TrainError::Cache(e) => write!(f, "schedule cache write-back failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CompileError> for TrainError {
    fn from(e: CompileError) -> Self {
        TrainError::Compile(e)
    }
}

impl From<io::Error> for TrainError {
    fn from(e: io::Error) -> Self {
        TrainError::Cache(e)
    }
}

/// Trainer construction parameters. [`Default`] gives a small
/// mixed-precision configuration: 4-frame batches accumulated over 2
/// micro-batches, device-chosen binding scheme, momentum SGD.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Learning rate of the momentum-SGD update.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// Frames batched into one training step (batch indices `0..B`).
    pub batch_frames: usize,
    /// Micro-batches the step's gradient is accumulated over
    /// (clamped to `[1, batch_frames]`).
    pub micro_batches: usize,
    /// Mixed-precision training with dynamic loss scaling.
    pub amp: bool,
    /// Kernel-family binding scheme; `None` picks the device default
    /// ([`default_scheme_for`]).
    pub scheme: Option<BindingScheme>,
    /// Autotuner search options for the step schedule.
    pub tuner: TunerOptions,
    /// Warm-start drift policy for the training-schedule cache.
    pub drift: DriftPolicy,
    /// Incremental kernel-map patch/rebuild policy.
    pub delta: DeltaConfig,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            momentum: 0.9,
            batch_frames: 4,
            micro_batches: 2,
            amp: true,
            scheme: None,
            tuner: TunerOptions::default(),
            drift: DriftPolicy::default(),
            delta: DeltaConfig::default(),
        }
    }
}

/// What one [`Trainer::step`] did, for logging and assertions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepReport {
    /// 1-based step number.
    pub step: u64,
    /// Accumulated loss over the step's micro-batches.
    pub loss: f32,
    /// Whether the optimizer update ran (`false` on AMP overflow).
    pub applied: bool,
    /// Loss scale *after* the step's scaler update (1.0 without AMP).
    pub loss_scale: f32,
    /// Micro-batches executed.
    pub micro_batches: usize,
    /// Simulated per-phase step cost.
    pub sim: StepSim,
    /// How the schedule was obtained: `"hit"`, `"warm"` or `"cold"`.
    pub tune_origin: String,
    /// The same step priced under the unbound all-default schedule
    /// (`TrainConfigs::bound(default)`): identical mapping and
    /// optimizer phases, untuned compute. `unbound_sim.step_us() /
    /// sim.step_us()` is the bound-vs-unbound throughput gain.
    pub unbound_sim: StepSim,
    /// How the kernel map was serviced: `"patched"` or `"rebuilt"`.
    pub map_update: String,
    /// Points that entered the stride-1 map since the previous step.
    pub entered: usize,
    /// Points that exited the stride-1 map since the previous step.
    pub exited: usize,
}

/// Deterministic summary of a training run, for golden-trajectory
/// comparison: the per-step loss curve plus a digest of the final
/// weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainRun {
    /// Accumulated loss per step, in order.
    pub losses: Vec<f32>,
    /// FNV-1a digest over the final conv weights' f32 bit patterns.
    pub weights_digest: String,
    /// Final dynamic loss scale (1.0 without AMP).
    pub loss_scale: f32,
    /// Steps skipped due to AMP overflow.
    pub skipped: u32,
}

/// FNV-1a digest over every conv weight's f32 bit pattern, in network
/// order. Bit-exact weights ⇔ equal digests, on any platform.
pub fn weights_digest(weights: &NetworkWeights) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for w in weights.convs.iter().flatten() {
        for k in 0..w.kernel_volume() {
            for &v in w.offset(k).as_slice() {
                for byte in v.to_bits().to_le_bytes() {
                    mix(byte);
                }
            }
        }
    }
    format!("{h:016x}")
}

/// The end-to-end training harness. See the module docs for the step
/// anatomy; [`Trainer::run_stream`] drives it over a [`LidarStream`]
/// with a sliding multi-frame batch window.
pub struct Trainer {
    network: Network,
    weights: NetworkWeights,
    velocity: Vec<Option<ConvWeights>>,
    amp: Option<LossScaler>,
    cfg: TrainerConfig,
    scheme: BindingScheme,
    ctx: ExecCtx,
    cache: TrainScheduleCache,
    state: Option<PlanState>,
    split_count: u32,
    param_bytes: u64,
    steps: u64,
    skipped: u32,
    telemetry: Option<Telemetry>,
    now_us: u64,
}

impl Trainer {
    /// Builds a trainer for `network` with weights initialised from
    /// `seed`, an in-memory schedule cache, and the binding scheme
    /// resolved from `cfg.scheme` or the device model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.lr <= 0`, `cfg.momentum` is outside `[0, 1)`, or
    /// `cfg.batch_frames == 0`.
    pub fn new(network: &Network, seed: u64, ctx: &ExecCtx, cfg: TrainerConfig) -> Self {
        assert!(cfg.lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(cfg.batch_frames > 0, "batch window must hold a frame");
        let weights = network.init_weights(seed);
        let velocity = weights
            .convs
            .iter()
            .map(|w| {
                w.as_ref()
                    .map(|w| ConvWeights::zeros(w.kernel_volume(), w.c_in(), w.c_out()))
            })
            .collect();
        let param_bytes: u64 = weights
            .convs
            .iter()
            .flatten()
            .map(|w| w.param_count() as u64 * 4)
            .sum();
        let scheme = cfg
            .scheme
            .unwrap_or_else(|| default_scheme_for(ctx.device()));
        let split_count = split_count_for(&cfg.tuner.default);
        let amp = cfg.amp.then(LossScaler::new);
        Self {
            network: network.clone(),
            weights,
            velocity,
            amp,
            cfg,
            scheme,
            ctx: ctx.clone(),
            cache: TrainScheduleCache::in_memory(),
            state: None,
            split_count,
            param_bytes,
            steps: 0,
            skipped: 0,
            telemetry: None,
            now_us: 0,
        }
    }

    /// Backs the training-schedule cache with `dir`, loading any
    /// compatible entries already there (warm starts across runs).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created or
    /// scanned.
    pub fn with_cache_dir(mut self, dir: impl AsRef<Path>) -> io::Result<Self> {
        self.cache = TrainScheduleCache::open(dir)?;
        Ok(self)
    }

    /// Attaches live telemetry: each step feeds its simulated latency
    /// into a [`Telemetry`] registry on a virtual clock advanced by the
    /// simulated step time.
    pub fn with_telemetry(mut self, cfg: ObsConfig) -> Self {
        self.telemetry = Some(Telemetry::new(cfg));
        self
    }

    /// The binding scheme steps tune under.
    pub fn scheme(&self) -> BindingScheme {
        self.scheme
    }

    /// Current weights (FP32 master copies).
    pub fn weights(&self) -> &NetworkWeights {
        &self.weights
    }

    /// Consumes the trainer, returning the trained weights.
    pub fn into_weights(self) -> NetworkWeights {
        self.weights
    }

    /// The loss-scaler state (when AMP is enabled).
    pub fn scaler(&self) -> Option<&LossScaler> {
        self.amp.as_ref()
    }

    /// The incremental-map reuse state (after the first step).
    pub fn plan_state(&self) -> Option<&PlanState> {
        self.state.as_ref()
    }

    /// The training-schedule cache behind the step pipeline.
    pub fn cache(&self) -> &TrainScheduleCache {
        &self.cache
    }

    /// Steps executed so far (including overflow-skipped ones).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Virtual simulated time consumed by all steps so far (µs).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Latency snapshot from the attached telemetry (if any) at the
    /// current virtual time.
    pub fn latency(&self) -> Option<HistogramSnapshot> {
        self.telemetry.as_ref().map(|t| t.latency_at(self.now_us))
    }

    /// Health snapshot from the attached telemetry (if any) at the
    /// current virtual time.
    pub fn health(&self) -> Option<HealthSnapshot> {
        self.telemetry
            .as_ref()
            .map(|t| t.health_snapshot_at(self.now_us, 0))
    }

    /// Summarises the run for golden-trajectory comparison.
    pub fn train_run(&self, losses: Vec<f32>) -> TrainRun {
        TrainRun {
            losses,
            weights_digest: weights_digest(&self.weights),
            loss_scale: self.amp.as_ref().map_or(1.0, |a| a.scale),
            skipped: self.skipped,
        }
    }

    /// Runs one fused training step over a batched scene.
    ///
    /// The step compiles its session (patching the stride-1 map from
    /// the previous step when the scene is temporally coherent), pulls
    /// the tuned schedule through the cache, accumulates gradients over
    /// micro-batches (feature rows outside a micro-batch's batch-index
    /// chunk masked to zero — sparse conv never crosses batch
    /// boundaries, so the accumulated gradient equals the full-batch
    /// gradient up to summation order), applies the momentum update
    /// unless AMP overflowed, and advances the simulated clock.
    ///
    /// # Errors
    ///
    /// [`TrainError::Compile`] if the scene fails session compilation
    /// (duplicate coordinates, channel mismatch), [`TrainError::Cache`]
    /// if a directory-backed cache fails to persist the tuned schedule.
    pub fn step(&mut self, input: &SparseTensor) -> Result<StepReport, TrainError> {
        let _span = ts_trace::span!(Subsystem::Train, "train.step", step = self.steps + 1);
        let (session, canon, outcome) = compile_step(
            &self.network,
            &mut self.state,
            input,
            &self.cfg.delta,
            self.split_count,
        )?;
        ts_trace::counter_add("train.plan.compiled", 1);

        let tune = tune_training_cached(
            &mut self.cache,
            std::slice::from_ref(&session),
            &self.ctx,
            &self.cfg.tuner,
            self.scheme,
            &self.cfg.drift,
        )?;

        // Partition the batch indices present into contiguous chunks.
        let mut batches: Vec<i32> = canon.coords().iter().map(|c| c.batch).collect();
        batches.sort_unstable();
        batches.dedup();
        let k = self.cfg.micro_batches.clamp(1, batches.len().max(1));
        let chunk = batches.len().div_ceil(k);

        let loss_scale = self.amp.as_ref().map_or(1.0, |a| a.scale);
        let fp16 = self.amp.is_some();
        let mut loss = 0.0f32;
        let mut overflow = false;
        let mut acc: Vec<Option<ConvWeights>> = self
            .velocity
            .iter()
            .map(|v| {
                v.as_ref()
                    .map(|v| ConvWeights::zeros(v.kernel_volume(), v.c_in(), v.c_out()))
            })
            .collect();
        for lo in (0..batches.len()).step_by(chunk.max(1)) {
            let span = &batches[lo..(lo + chunk).min(batches.len())];
            let micro = mask_to_batches(&canon, span);
            let bw = forward_backward(
                &self.network,
                &self.weights,
                &session,
                &micro,
                &tune.result.configs,
                &self.ctx,
                loss_scale,
                fp16,
            );
            loss += bw.loss;
            overflow |= bw.overflow;
            ts_trace::counter_add("train.microbatches.executed", 1);
            if !bw.overflow {
                for (slot, dw) in acc.iter_mut().zip(bw.grads.iter()) {
                    if let (Some(slot), Some(dw)) = (slot.as_mut(), dw.as_ref()) {
                        slot.axpy(1.0, dw);
                    }
                }
            }
        }

        let applied = !overflow;
        if overflow {
            self.amp
                .as_mut()
                .expect("overflow implies AMP")
                .update(true);
            self.skipped += 1;
            ts_trace::counter_add("train.steps.skipped_overflow", 1);
        } else {
            for (i, dw) in acc.iter().enumerate() {
                let Some(dw) = dw else { continue };
                let v = self.velocity[i].as_mut().expect("velocity slot");
                for kv in 0..v.kernel_volume() {
                    v.offset_mut(kv).scale(self.cfg.momentum);
                }
                v.axpy(1.0, dw);
                self.weights.convs[i]
                    .as_mut()
                    .expect("weights slot")
                    .axpy(-self.cfg.lr, v);
            }
            if let Some(scaler) = self.amp.as_mut() {
                scaler.update(false);
            }
            ts_trace::counter_add("train.steps.completed", 1);
        }

        // Price the fused step: mapping once, compute per micro-batch,
        // optimizer once. The unbound all-default schedule is priced on
        // the same session so the tuned schedule's gain stays visible
        // even when the schedule itself came straight from the cache.
        let report = session.simulate_training(&tune.result.configs, &self.ctx);
        let optim = optimizer_us(self.param_bytes, &self.ctx);
        let sim = StepSim::from_report(&report, k, optim);
        let unbound_report =
            session.simulate_training(&TrainConfigs::bound(self.cfg.tuner.default), &self.ctx);
        let unbound_sim = StepSim::from_report(&unbound_report, k, optim);
        self.steps += 1;
        let step_us = sim.step_us();
        self.now_us += step_us.max(0.0) as u64;
        if let Some(t) = &self.telemetry {
            let _ = t.on_completed_at(self.now_us, 0, step_us.max(0.0) as u64, false);
            t.on_batch_at(self.now_us, self.steps, k as u64, step_us);
        }

        Ok(StepReport {
            step: self.steps,
            loss,
            applied,
            loss_scale: self.amp.as_ref().map_or(1.0, |a| a.scale),
            micro_batches: k,
            sim,
            unbound_sim,
            tune_origin: match tune.origin {
                TuneOrigin::Hit => "hit",
                TuneOrigin::WarmStart => "warm",
                TuneOrigin::Cold => "cold",
            }
            .to_string(),
            map_update: match outcome.kind {
                MapUpdate::Patched => "patched",
                MapUpdate::Rebuilt => "rebuilt",
            }
            .to_string(),
            entered: outcome.entered,
            exited: outcome.exited,
        })
    }

    /// Drives `steps` training steps over a LiDAR stream with a sliding
    /// `batch_frames`-wide window.
    ///
    /// A frame keeps the batch slot `frame_number % batch_frames` for
    /// its whole window lifetime, so consecutive steps differ by
    /// exactly one swapped slot — the low-churn shape the incremental
    /// kernel map patches cheaply.
    ///
    /// # Errors
    ///
    /// Propagates the first failing step's [`TrainError`].
    pub fn run_stream(
        &mut self,
        stream: &mut LidarStream,
        steps: usize,
    ) -> Result<Vec<StepReport>, TrainError> {
        let b = self.cfg.batch_frames;
        let mut window: Vec<Option<LidarScene>> = vec![None; b];
        // Fill the initial window.
        for _ in 0..b {
            let slot = (stream.frames_emitted() % b as u64) as usize;
            window[slot] = Some(stream.next_frame());
        }
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            let input = merge_window(&window);
            reports.push(self.step(&input)?);
            let slot = (stream.frames_emitted() % b as u64) as usize;
            window[slot] = Some(stream.next_frame());
        }
        Ok(reports)
    }
}

/// Clones `input` with every feature row whose batch index is outside
/// `span` zeroed. The coordinate set (and therefore the kernel map) is
/// unchanged; zero rows contribute zero to the loss and gradients.
fn mask_to_batches(input: &SparseTensor, span: &[i32]) -> SparseTensor {
    let mut out = input.clone();
    for (i, c) in input.coords().iter().enumerate() {
        if !span.contains(&c.batch) {
            out.feats_mut().row_mut(i).fill(0.0);
        }
    }
    out
}

/// Merges the window's frames into one batched scene: slot `s`'s
/// coordinates are rebatched to batch index `s`, features concatenated
/// in slot order.
fn merge_window(window: &[Option<LidarScene>]) -> SparseTensor {
    let frames: Vec<(usize, &LidarScene)> = window
        .iter()
        .enumerate()
        .filter_map(|(s, f)| f.as_ref().map(|f| (s, f)))
        .collect();
    let total: usize = frames.iter().map(|(_, f)| f.coords.len()).sum();
    let cols = frames.first().map_or(0, |(_, f)| f.feats.cols());
    let mut coords = Vec::with_capacity(total);
    let mut feats = Matrix::zeros(total, cols);
    let mut row = 0;
    for (slot, frame) in frames {
        for (i, c) in frame.coords.iter().enumerate() {
            coords.push(Coord::new(slot as i32, c.x, c.y, c.z));
            feats.row_mut(row).copy_from_slice(frame.feats.row(i));
            row += 1;
        }
    }
    SparseTensor::new(coords, feats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::NetworkBuilder;
    use ts_gpusim::Device;
    use ts_tensor::Precision;
    use ts_workloads::LidarConfig;

    fn net() -> Network {
        let mut b = NetworkBuilder::new("train-test", 4);
        let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
        let _ = b.conv_block("head", c, 4, 3, 1);
        b.build()
    }

    fn ctx() -> ExecCtx {
        ExecCtx::simulate(Device::a100(), Precision::Fp16)
    }

    fn lidar() -> LidarConfig {
        LidarConfig {
            beams: 8,
            azimuth_steps: 90,
            elevation_min_deg: -25.0,
            elevation_max_deg: 3.0,
            max_range_m: 40.0,
            voxel_size_m: 0.2,
            obstacles: 6,
            dropout: 0.05,
        }
    }

    fn scene(seed: u64, frames: u32) -> SparseTensor {
        let mut window: Vec<Option<LidarScene>> = Vec::new();
        for f in 0..frames {
            window.push(Some(LidarScene::generate(&lidar(), seed + f as u64, 1, 0)));
        }
        merge_window(&window)
    }

    #[test]
    fn same_scene_second_step_patches_and_hits_cache() {
        let ctx = ctx();
        let mut t = Trainer::new(&net(), 7, &ctx, TrainerConfig::default());
        let input = scene(11, 2);
        let r1 = t.step(&input).unwrap();
        let r2 = t.step(&input).unwrap();
        assert_eq!(r1.map_update, "rebuilt", "seeding step builds the map");
        assert_eq!(r2.map_update, "patched", "identical scene patches");
        assert_eq!(r2.entered, 0);
        assert_eq!(r2.exited, 0);
        assert_eq!(r1.tune_origin, "cold");
        assert_eq!(r2.tune_origin, "hit", "same key re-served from cache");
        assert!(r2.sim.map_us < r1.sim.map_us, "patched mapping is cheaper");
        let st = t.plan_state().unwrap();
        assert_eq!(st.frames(), 2);
        assert_eq!(st.patched(), 1);
    }

    #[test]
    fn training_reduces_loss_without_amp() {
        let ctx = ctx();
        let cfg = TrainerConfig {
            amp: false,
            lr: 2e-3,
            micro_batches: 1,
            ..TrainerConfig::default()
        };
        let mut t = Trainer::new(&net(), 7, &ctx, cfg);
        let input = scene(3, 2);
        let first = t.step(&input).unwrap().loss;
        let mut last = first;
        for _ in 0..5 {
            last = t.step(&input).unwrap().loss;
        }
        assert!(first.is_finite() && last.is_finite());
        assert!(
            last < first,
            "SGD on 0.5||out||^2 must shrink it: {first} -> {last}"
        );
    }

    #[test]
    fn microbatch_accumulation_matches_full_batch() {
        let ctx = ctx();
        let input = scene(5, 4);
        let base = TrainerConfig {
            amp: false,
            ..TrainerConfig::default()
        };
        let mut full = Trainer::new(
            &net(),
            9,
            &ctx,
            TrainerConfig {
                micro_batches: 1,
                ..base.clone()
            },
        );
        let mut split = Trainer::new(
            &net(),
            9,
            &ctx,
            TrainerConfig {
                micro_batches: 4,
                ..base
            },
        );
        let rf = full.step(&input).unwrap();
        let rs = split.step(&input).unwrap();
        assert_eq!(rf.micro_batches, 1);
        assert_eq!(rs.micro_batches, 4);
        let rel = (rf.loss - rs.loss).abs() / rf.loss.abs().max(1e-6);
        assert!(rel < 1e-4, "losses diverge: {} vs {}", rf.loss, rs.loss);
        let budget = ts_tensor::ErrorBudget::new(Precision::Fp32, 4);
        for (a, b) in full
            .weights()
            .convs
            .iter()
            .zip(split.weights().convs.iter())
        {
            let (Some(a), Some(b)) = (a.as_ref(), b.as_ref()) else {
                continue;
            };
            for k in 0..a.kernel_volume() {
                let worst = a
                    .offset(k)
                    .as_slice()
                    .iter()
                    .zip(b.offset(k).as_slice())
                    .map(|(&x, &y)| budget.normalized_error(x, y))
                    .fold(0.0f32, f32::max);
                assert!(worst < 1.0, "offset {k} outside budget: {worst}");
            }
        }
    }

    #[test]
    fn run_stream_smoke_and_digest_changes() {
        let ctx = ctx();
        let cfg = TrainerConfig {
            batch_frames: 2,
            micro_batches: 2,
            ..TrainerConfig::default()
        };
        let mut t = Trainer::new(&net(), 7, &ctx, cfg);
        let before = weights_digest(t.weights());
        let mut stream = LidarStream::new(lidar(), 7).with_motion(0.2, 0.01);
        let reports = t.run_stream(&mut stream, 3).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(t.steps(), 3);
        assert!(reports.iter().all(|r| r.loss.is_finite() && r.loss > 0.0));
        assert!(t.now_us() > 0, "virtual clock advances");
        let run = t.train_run(reports.iter().map(|r| r.loss).collect());
        assert_eq!(run.losses.len(), 3);
        assert_ne!(run.weights_digest, before, "training moved the weights");
        // Digest is deterministic over the same weights.
        assert_eq!(run.weights_digest, weights_digest(t.weights()));
    }

    #[test]
    fn step_sim_composes_phases() {
        let ctx = ctx();
        let cfg = TrainerConfig {
            micro_batches: 2,
            ..TrainerConfig::default()
        };
        let mut t = Trainer::new(&net(), 7, &ctx, cfg);
        let r = t.step(&scene(13, 2)).unwrap();
        let s = &r.sim;
        assert!(s.map_us > 0.0, "mapping priced");
        assert!(s.fwd_us > 0.0 && s.dgrad_us > 0.0 && s.wgrad_us > 0.0);
        assert!(s.optim_us > 0.0, "optimizer priced");
        let expect = s.map_us + 2.0 * (s.fwd_us + s.dgrad_us + s.wgrad_us) + s.optim_us;
        assert!((s.step_us() - expect).abs() < 1e-9);
    }

    #[test]
    fn telemetry_records_step_latency() {
        let ctx = ctx();
        let mut t = Trainer::new(&net(), 7, &ctx, TrainerConfig::default())
            .with_telemetry(ObsConfig::default());
        t.step(&scene(17, 2)).unwrap();
        t.step(&scene(17, 2)).unwrap();
        let lat = t.latency().expect("telemetry attached");
        assert_eq!(lat.count, 2, "both steps recorded");
        let health = t.health().expect("telemetry attached");
        assert!(health.completed >= 2);
    }
}
