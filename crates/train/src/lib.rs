//! TorchSparse++ end-to-end training harness (ts-train).
//!
//! Reproduces the training half of the TorchSparse++ story: each
//! training step is compiled once into a fused step plan — forward →
//! loss → dgrad → wgrad → optimizer update — over a multi-frame
//! batched LiDAR scene, with:
//!
//! * **incremental kernel maps** patched across temporally coherent
//!   steps (the streaming machinery of `Engine::infer_stream`, reused
//!   for the training window);
//! * **binding-scheme tuning**: fwd / dgrad / wgrad dataflows tuned
//!   jointly under a per-device-class binding policy (fwd+dgrad bound
//!   on low-parallelism devices, dgrad+wgrad on A100-class parts,
//!   paper Fig. 22), warm-started through the training-schedule cache;
//! * **gradient accumulation** over micro-batches, exact up to
//!   floating-point summation order because sparse convolution never
//!   crosses batch boundaries;
//! * **mixed-precision loss scaling** with dynamic overflow backoff,
//!   checked against `ts_tensor::ErrorBudget` by the conformance suite
//!   in ts-verify (`verify --train`).
//!
//! # Examples
//!
//! ```
//! use ts_train::{Trainer, TrainerConfig};
//! use ts_core::NetworkBuilder;
//! use ts_dataflow::ExecCtx;
//! use ts_gpusim::Device;
//! use ts_tensor::Precision;
//! use ts_workloads::{LidarConfig, LidarStream};
//!
//! let mut b = NetworkBuilder::new("tiny", 4);
//! let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
//! let _ = b.conv_block("head", c, 4, 3, 1);
//! let net = b.build();
//!
//! let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
//! let cfg = TrainerConfig {
//!     batch_frames: 2,
//!     micro_batches: 2,
//!     ..TrainerConfig::default()
//! };
//! let mut trainer = Trainer::new(&net, 7, &ctx, cfg);
//! let lidar = LidarConfig {
//!     beams: 8,
//!     azimuth_steps: 90,
//!     elevation_min_deg: -25.0,
//!     elevation_max_deg: 3.0,
//!     max_range_m: 40.0,
//!     voxel_size_m: 0.2,
//!     obstacles: 6,
//!     dropout: 0.05,
//! };
//! let mut stream = LidarStream::new(lidar, 7).with_motion(0.4, 0.01);
//! let reports = trainer.run_stream(&mut stream, 3).unwrap();
//! assert_eq!(reports.len(), 3);
//! assert!(reports.iter().all(|r| r.loss.is_finite()));
//! ```

mod plan;
mod trainer;

pub use plan::{PlanState, StepSim};
pub use trainer::{weights_digest, StepReport, TrainError, TrainRun, Trainer, TrainerConfig};
