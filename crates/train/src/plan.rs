//! The fused step plan: one compiled artifact per training step.
//!
//! A [`StepPlan`] is everything a step needs, resolved once before any
//! feature math runs: the compiled [`Session`] (kernel maps, layer
//! groups, prepare cache), the tuned per-family [`TrainConfigs`] pulled
//! through the training-schedule cache, and the simulated per-phase
//! cost ([`StepSim`]). Across temporally coherent steps the stride-1
//! submanifold map is patched incrementally ([`PlanState`], the same
//! machinery as `Engine::infer_stream`) instead of rebuilt, so the
//! simulated mapping cost shrinks to the frame delta.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use ts_core::{permute_to, CompileError, Network, Op, Session, SparseTensor, SubmanifoldReuse};
use ts_dataflow::{DataflowKind, ExecCtx};
use ts_gpusim::{KernelDesc, KernelTrace};
use ts_kernelmap::{
    Coord, DeltaConfig, IncrementalMap, KernelOffsets, MapStats, MapUpdate, UpdateOutcome,
};

/// Simulated per-phase cost of one training step, bucketed from the
/// session's training simulation plus a separately priced optimizer
/// update.
///
/// A step with `micro_batches = k` runs the mapping phase once, the
/// compute phases (forward, dgrad, wgrad) once per micro-batch, and
/// the optimizer once — [`StepSim::step_us`] composes the phases
/// accordingly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSim {
    /// Kernel-map construction / patch / reordering cost (µs).
    pub map_us: f64,
    /// Forward kernels (µs, one micro-batch).
    pub fwd_us: f64,
    /// Input-gradient kernels plus elementwise backward (µs, one
    /// micro-batch).
    pub dgrad_us: f64,
    /// Weight-gradient kernels (µs, one micro-batch).
    pub wgrad_us: f64,
    /// Momentum-SGD parameter update (µs, once per step).
    pub optim_us: f64,
    /// Micro-batches accumulated per step.
    pub micro_batches: usize,
}

impl StepSim {
    /// Buckets a `simulate_training` report by timing-entry name:
    /// `* mapping` entries are the mapping phase, `*:dgrad` /
    /// `*:wgrad` the two gradient phases (elementwise `*:bwd` rides
    /// with dgrad), everything else is forward.
    pub fn from_report(report: &ts_core::RunReport, micro_batches: usize, optim_us: f64) -> Self {
        let mut sim = StepSim {
            map_us: 0.0,
            fwd_us: 0.0,
            dgrad_us: 0.0,
            wgrad_us: 0.0,
            optim_us,
            micro_batches: micro_batches.max(1),
        };
        for t in report.timings() {
            if t.name.contains("mapping") {
                sim.map_us += t.time_us;
            } else if t.name.ends_with(":wgrad") {
                sim.wgrad_us += t.time_us;
            } else if t.name.ends_with(":dgrad") || t.name.ends_with(":bwd") {
                sim.dgrad_us += t.time_us;
            } else {
                sim.fwd_us += t.time_us;
            }
        }
        sim
    }

    /// One micro-batch's compute cost (forward + dgrad + wgrad, µs).
    pub fn compute_us(&self) -> f64 {
        self.fwd_us + self.dgrad_us + self.wgrad_us
    }

    /// End-to-end simulated step latency: mapping once, compute per
    /// micro-batch, optimizer once.
    pub fn step_us(&self) -> f64 {
        self.map_us + self.compute_us() * self.micro_batches as f64 + self.optim_us
    }
}

/// Prices the fused momentum-SGD update: streaming reads of weights,
/// gradients and velocity (FP32 master copies) against writes of the
/// updated weights and velocity.
pub(crate) fn optimizer_us(param_bytes: u64, ctx: &ExecCtx) -> f64 {
    if param_bytes == 0 {
        return 0.0;
    }
    let mut trace = KernelTrace::new();
    let desc = KernelDesc::memory("optimizer-update", 3 * param_bytes, 2 * param_bytes);
    ctx.cost.record(&mut trace, desc);
    trace.total_us()
}

/// Per-trainer temporal state: the incrementally maintained stride-1
/// submanifold map threaded across steps, plus reuse accounting.
#[derive(Debug, Clone)]
pub struct PlanState {
    inc: IncrementalMap,
    frames: u64,
    patched: u64,
    rebuilt: u64,
}

impl PlanState {
    fn new(coords: &[Coord], kernel_size: u32, split_count: u32) -> Self {
        Self {
            inc: IncrementalMap::new(coords, KernelOffsets::cube(kernel_size), split_count),
            frames: 1,
            patched: 0,
            rebuilt: 1,
        }
    }

    /// The current step's coordinates in the state's canonical order.
    pub fn coords(&self) -> &[Coord] {
        self.inc.coords()
    }

    /// Kernel size of the maintained submanifold map.
    pub fn kernel_size(&self) -> u32 {
        self.inc.offsets().kernel_size()
    }

    /// Steps serviced through this state (including the seeding step).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Steps serviced by an in-place patch.
    pub fn patched(&self) -> u64 {
        self.patched
    }

    /// Steps serviced by a full rebuild (including the seeding step).
    pub fn rebuilt(&self) -> u64 {
        self.rebuilt
    }

    /// Fraction of steps serviced without a full map rebuild.
    pub fn reuse_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.patched as f64 / self.frames as f64
        }
    }
}

/// Kernel size of the network's stride-1 submanifold group eligible
/// for incremental maintenance (odd kernel, larger than 1³, consuming
/// input-resolution coordinates) — the same rule as
/// `Engine::infer_stream`.
pub(crate) fn eligible_kernel_size(net: &Network) -> Option<u32> {
    net.nodes()
        .iter()
        .enumerate()
        .skip(1)
        .find_map(|(_, node)| match node.op {
            Op::Conv(s)
                if s.stride == 1
                    && !s.transposed
                    && s.kernel_size % 2 == 1
                    && s.kernel_size > 1
                    && net.stride(node.input) == 1 =>
            {
                Some(s.kernel_size)
            }
            _ => None,
        })
}

/// The split count the state's split plan should track.
pub(crate) fn split_count_for(default: &ts_dataflow::DataflowConfig) -> u32 {
    match default.kind {
        DataflowKind::ImplicitGemm { splits } => splits.max(1),
        _ => 1,
    }
}

/// Outcome of a step serviced without a prior state (or without an
/// eligible group): everything entered, full-build stats.
fn full_outcome(points: usize, stats: MapStats) -> UpdateOutcome {
    UpdateOutcome {
        kind: MapUpdate::Rebuilt,
        stats,
        entered: points,
        exited: 0,
        churn: 1.0,
    }
}

/// Compiles one step's session against `input`, reusing (and
/// advancing) the incremental map in `state` when the network has an
/// eligible submanifold group. Returns the session, the input permuted
/// to the session's canonical coordinate order, and the map-update
/// outcome.
///
/// # Errors
///
/// [`CompileError::ChannelMismatch`] / [`CompileError::DuplicateCoords`]
/// on malformed input (the state is left unchanged), or any session
/// compilation error.
pub(crate) fn compile_step(
    network: &Network,
    state: &mut Option<PlanState>,
    input: &SparseTensor,
    delta: &DeltaConfig,
    split_count: u32,
) -> Result<(Session, SparseTensor, UpdateOutcome), CompileError> {
    if input.channels() != network.in_channels() {
        return Err(CompileError::ChannelMismatch {
            expected: network.in_channels(),
            got: input.channels(),
        });
    }
    let unique = ts_kernelmap::unique_coords(input.coords()).len();
    if unique != input.num_points() {
        return Err(CompileError::DuplicateCoords {
            points: input.num_points(),
            unique,
        });
    }

    let Some(ks) = eligible_kernel_size(network) else {
        let session = Session::try_new(network, input.coords())?;
        let outcome = full_outcome(input.num_points(), MapStats::default());
        return Ok((session, input.clone(), outcome));
    };

    // A state maintained for a different kernel is stale.
    if state.as_ref().is_some_and(|s| s.kernel_size() != ks) {
        *state = None;
    }

    match state.as_mut() {
        None => {
            // Seeding step: full compile prices the full map build.
            let session = Session::try_new(network, input.coords())?;
            let stats = session
                .groups()
                .iter()
                .find(|g| g.key.lo_stride == 1 && g.key.hi_stride == 1 && g.key.kernel_size == ks)
                .map(|g| g.build_stats)
                .unwrap_or_default();
            *state = Some(PlanState::new(input.coords(), ks, split_count));
            let outcome = full_outcome(input.num_points(), stats);
            Ok((session, input.clone(), outcome))
        }
        Some(st) => {
            let outcome = st.inc.update(input.coords(), delta);
            st.frames += 1;
            match outcome.kind {
                MapUpdate::Patched => st.patched += 1,
                MapUpdate::Rebuilt => st.rebuilt += 1,
            }
            match outcome.kind {
                MapUpdate::Patched => ts_trace::counter_add("train.map.patched", 1),
                MapUpdate::Rebuilt => ts_trace::counter_add("train.map.rebuilt", 1),
            }

            #[cfg(debug_assertions)]
            {
                let violations = ts_kernelmap::check_map(st.inc.map());
                debug_assert!(
                    violations.is_empty(),
                    "incremental map violates invariants: {violations:?}"
                );
                let plan_violations = ts_kernelmap::check_plan(st.inc.map(), st.inc.plan(), 128);
                debug_assert!(
                    plan_violations.is_empty(),
                    "incremental split plan violates invariants: {plan_violations:?}"
                );
            }

            let reuse = SubmanifoldReuse {
                kernel_size: ks,
                map: Arc::new(st.inc.map().clone()),
                stats: outcome.stats,
            };
            let permuted = permute_to(input, st.coords());
            let session = Session::try_new_with_reuse(network, st.coords(), Some(&reuse))?;
            Ok((session, permuted, outcome))
        }
    }
}
