//! Kernel generation requests.

use serde::{Deserialize, Serialize};

use ts_gpusim::{Precision, TileShape};

/// Which overlapped dataflow the generator should emit.
///
/// Gather-GEMM-scatter needs no generated kernel (it calls vendor GEMM),
/// so only the two fused dataflows appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneratedDataflow {
    /// Output-stationary implicit GEMM (Figure 5 of the paper).
    ImplicitGemm,
    /// Block-fused fetch-on-demand (Section 2.2.2).
    FetchOnDemand,
}

impl GeneratedDataflow {
    /// Kernel-name fragment used in emitted source.
    pub fn name(self) -> &'static str {
        match self {
            GeneratedDataflow::ImplicitGemm => "implicit_gemm",
            GeneratedDataflow::FetchOnDemand => "fetch_on_demand",
        }
    }
}

/// Whether workload shapes are compile-time constants or runtime values.
///
/// Point clouds have a different point count every frame, so deployable
/// kernels must be [`ShapeMode::Dynamic`]; [`ShapeMode::Fixed`] exists to
/// reproduce the idealized constant-folded experiment of Figure 8 and the
/// gap studies of Figures 20–21.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeMode {
    /// Shapes compiled in as constants (TVM/TensorRT style).
    Fixed,
    /// Shapes passed as kernel arguments.
    Dynamic,
}

/// A complete kernel-generation request.
///
/// Defaults correspond to the shipped TorchSparse++ configuration:
/// dynamic shapes with hoisting and padding both enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Dataflow to emit.
    pub dataflow: GeneratedDataflow,
    /// CTA tile sizes (the only tunable dimension, per Section 3.2).
    pub tile: TileShape,
    /// Execution precision.
    pub precision: Precision,
    /// Fixed or dynamic shape mode.
    pub shape_mode: ShapeMode,
    /// Hoist loop-invariant address arithmetic out of the inner loop.
    pub hoist_invariants: bool,
    /// Assume the map was padded to a multiple of `cta_m`, removing
    /// boundary checks.
    pub padded_map: bool,
}

impl KernelSpec {
    /// Creates the default (shipping) configuration for a dataflow, tile
    /// and precision: dynamic shapes, hoisting and padding enabled.
    pub fn new(dataflow: GeneratedDataflow, tile: TileShape, precision: Precision) -> Self {
        Self {
            dataflow,
            tile,
            precision,
            shape_mode: ShapeMode::Dynamic,
            hoist_invariants: true,
            padded_map: true,
        }
    }

    /// The naive dynamic-shape port of a fixed-shape kernel: constants
    /// unfolded, nothing hoisted, boundary checks everywhere. This is the
    /// starting point of the Figure 20/21 ablations.
    pub fn naive_dynamic(
        dataflow: GeneratedDataflow,
        tile: TileShape,
        precision: Precision,
    ) -> Self {
        Self {
            dataflow,
            tile,
            precision,
            shape_mode: ShapeMode::Dynamic,
            hoist_invariants: false,
            padded_map: false,
        }
    }

    /// The idealized constant-folded kernel of Figure 8 (not deployable:
    /// requires compiling one kernel per workload shape).
    pub fn fixed_shape(dataflow: GeneratedDataflow, tile: TileShape, precision: Precision) -> Self {
        Self {
            dataflow,
            tile,
            precision,
            shape_mode: ShapeMode::Fixed,
            hoist_invariants: true,
            padded_map: true,
        }
    }

    /// Returns a copy with hoisting toggled.
    pub fn with_hoisting(mut self, on: bool) -> Self {
        self.hoist_invariants = on;
        self
    }

    /// Returns a copy with map padding toggled.
    pub fn with_padding(mut self, on: bool) -> Self {
        self.padded_map = on;
        self
    }

    /// Returns a copy with a different tile.
    pub fn with_tile(mut self, tile: TileShape) -> Self {
        self.tile = tile;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_fully_optimised() {
        let s = KernelSpec::new(
            GeneratedDataflow::ImplicitGemm,
            TileShape::large(),
            Precision::Fp16,
        );
        assert!(s.hoist_invariants);
        assert!(s.padded_map);
        assert_eq!(s.shape_mode, ShapeMode::Dynamic);
    }

    #[test]
    fn naive_dynamic_disables_optimisations() {
        let s = KernelSpec::naive_dynamic(
            GeneratedDataflow::ImplicitGemm,
            TileShape::large(),
            Precision::Fp16,
        );
        assert!(!s.hoist_invariants);
        assert!(!s.padded_map);
    }

    #[test]
    fn builders_toggle_flags() {
        let s = KernelSpec::new(
            GeneratedDataflow::FetchOnDemand,
            TileShape::small(),
            Precision::Fp32,
        )
        .with_hoisting(false)
        .with_padding(false);
        assert!(!s.hoist_invariants);
        assert!(!s.padded_map);
    }

    #[test]
    fn dataflow_names_differ() {
        assert_ne!(
            GeneratedDataflow::ImplicitGemm.name(),
            GeneratedDataflow::FetchOnDemand.name()
        );
    }
}
