//! Maps source structure to performance-penalty factors.
//!
//! The cost model in `ts-gpusim` multiplies a kernel's compute time by an
//! addressing factor and a control-flow factor. Both are derived from the
//! [`SourceStats`](crate::SourceStats) of the emitted kernel, calibrated
//! against the paper's measured gaps: naive dynamic-shape kernels are
//! 1.5–1.7x slower than fixed-shape ones (Figure 20), and unpadded
//! boundary checks cost 1.14–1.35x (Figure 21).

use serde::{Deserialize, Serialize};

use crate::{generate, KernelSpec, ShapeMode};

/// Compute-time multipliers derived from a kernel's source structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyFactors {
    /// Multiplier from inner-loop address arithmetic (>= 1).
    pub addr: f64,
    /// Multiplier from inner-loop boundary checks (>= 1).
    pub ctrl: f64,
}

impl PenaltyFactors {
    /// Computes both factors for a spec.
    pub fn for_spec(spec: &KernelSpec) -> Self {
        Self {
            addr: addr_overhead_factor(spec),
            ctrl: ctrl_overhead_factor(spec),
        }
    }

    /// The combined multiplier.
    pub fn combined(&self) -> f64 {
        self.addr * self.ctrl
    }
}

/// Cost in compute-time fraction of one un-hoisted address op executed
/// every inner-loop iteration. Calibrated so six ops (div, mod, two mul,
/// two add — the naive template) land in the paper's 1.5–1.7x band,
/// modulated by `LD_A_THR` (more loads per thread amortise better).
const ADDR_OP_COST: f64 = 0.115;

/// Cost of one boundary-check branch per inner-loop iteration, modulated
/// by `cta_m` (larger row tiles amortise the check over more work).
/// Calibrated to the paper's 1.14–1.35x band.
const BRANCH_COST_BASE: f64 = 18.0;

/// Addressing-overhead multiplier for `spec` (Figure 20).
///
/// Fixed-shape kernels fold everything to constants (factor 1.0, with a
/// small residual 1.01 from reduced register reuse relative to the
/// hoisted pointer form — the paper observes hoisted dynamic kernels
/// running slightly *faster* than fixed-shape ones on 5 of 7 workloads).
pub fn addr_overhead_factor(spec: &KernelSpec) -> f64 {
    let stats = generate(spec).stats;
    match spec.shape_mode {
        ShapeMode::Fixed => 1.01,
        ShapeMode::Dynamic => {
            if stats.inner_loop_addr_ops <= 1 {
                1.0
            } else {
                // div/mod on an RF operand are the expensive ops; the
                // amortisation improves with LD_A_THR but the paper's
                // measured band is 1.5-1.7x for the 6-op naive template.
                let amortise = 4.0 / stats.ld_a_thr as f64;
                1.0 + ADDR_OP_COST * stats.inner_loop_addr_ops as f64 * (0.75 + 0.25 * amortise)
            }
        }
    }
}

/// Control-flow-overhead multiplier for `spec` (Figure 21).
pub fn ctrl_overhead_factor(spec: &KernelSpec) -> f64 {
    let stats = generate(spec).stats;
    if stats.inner_loop_branches == 0 {
        return 1.0;
    }
    let cta_m = spec.tile.cta_m as f64;
    (1.0 + BRANCH_COST_BASE / cta_m).clamp(1.1, 1.35)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratedDataflow;
    use ts_gpusim::{Precision, TileShape};

    fn base(tile: TileShape) -> KernelSpec {
        KernelSpec::new(GeneratedDataflow::ImplicitGemm, tile, Precision::Fp16)
    }

    #[test]
    fn optimised_kernel_pays_no_penalty() {
        let f = PenaltyFactors::for_spec(&base(TileShape::large()));
        assert_eq!(f.addr, 1.0);
        assert_eq!(f.ctrl, 1.0);
        assert_eq!(f.combined(), 1.0);
    }

    #[test]
    fn naive_dynamic_lands_in_paper_band() {
        // Paper: up to 1.7x for LD_A_THR=4, at least 1.5x overall.
        for &k in &[32u32, 64] {
            let spec = KernelSpec::naive_dynamic(
                GeneratedDataflow::ImplicitGemm,
                TileShape::new(128, 128, k),
                Precision::Fp16,
            );
            let f = addr_overhead_factor(&spec);
            assert!((1.45..=1.75).contains(&f), "cta_k={k}: addr factor {f}");
        }
    }

    #[test]
    fn unpadded_branch_cost_in_paper_band() {
        for &m in &[32u32, 64, 128] {
            let spec = base(TileShape::new(m, 64, 32)).with_padding(false);
            let f = ctrl_overhead_factor(&spec);
            assert!((1.1..=1.35).contains(&f), "cta_m={m}: ctrl factor {f}");
        }
    }

    #[test]
    fn smaller_cta_m_pays_more_for_branches() {
        let small = ctrl_overhead_factor(&base(TileShape::new(32, 64, 32)).with_padding(false));
        let large = ctrl_overhead_factor(&base(TileShape::new(128, 64, 32)).with_padding(false));
        assert!(small > large);
    }

    #[test]
    fn fixed_shape_slightly_slower_than_hoisted_dynamic() {
        let fixed = addr_overhead_factor(&KernelSpec::fixed_shape(
            GeneratedDataflow::ImplicitGemm,
            TileShape::large(),
            Precision::Fp16,
        ));
        let hoisted = addr_overhead_factor(&base(TileShape::large()));
        assert!(fixed > hoisted);
    }

    #[test]
    fn hoisting_alone_closes_most_of_the_gap() {
        let naive = KernelSpec::naive_dynamic(
            GeneratedDataflow::ImplicitGemm,
            TileShape::large(),
            Precision::Fp16,
        );
        let hoisted = naive.with_hoisting(true);
        assert!(addr_overhead_factor(&naive) > 1.4);
        assert_eq!(addr_overhead_factor(&hoisted), 1.0);
    }
}
