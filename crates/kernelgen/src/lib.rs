//! The **Sparse Kernel Generator** (Section 3 of the TorchSparse++
//! paper).
//!
//! The paper's key systems idea: a dense, fixed-shape tensor-compiler
//! GEMM template can be turned into *sparse, dynamic-shape* convolution
//! kernels by replacing only the global-memory iterators with
//! indirectly-addressed ones — at less than a tenth of the engineering
//! cost of SpConv v2's 40k-line metaprogrammer. Two source-level
//! transforms recover fixed-shape performance:
//!
//! * **loop-invariant hoisting** of address arithmetic (the div/mod on
//!   `C_in` moves out of the innermost `ldA` loop), closing an up-to-1.7x
//!   gap (Figure 20);
//! * **map padding** to a multiple of `cta_m`, removing the boundary
//!   check on map loads, closing an up-to-1.35x gap (Figure 21).
//!
//! This crate reproduces the generator: [`KernelSpec`] describes the
//! requested kernel, [`generate`] emits CUDA-like source from the
//! three-part template of Figure 7 (constant / sparse-iterator /
//! tile-size-specialised MMA) and returns [`SourceStats`] counting the
//! address operations and branches left in the inner loop. Those counts
//! drive the performance penalties priced by `ts-gpusim`, and
//! [`generator_loc`] accounts the lines-of-code claim.
//!
//! # Examples
//!
//! ```
//! use ts_kernelgen::{generate, GeneratedDataflow, KernelSpec};
//! use ts_gpusim::{Precision, TileShape};
//!
//! let spec = KernelSpec::new(GeneratedDataflow::ImplicitGemm, TileShape::large(), Precision::Fp16);
//! let kernel = generate(&spec);
//! assert!(kernel.source.contains("__global__"));
//! assert_eq!(kernel.stats.inner_loop_branches, 0); // padded by default
//! ```

mod analysis;
mod codegen;
mod engineering;
mod spec;
mod tensorir;
mod tiling;

pub use analysis::{addr_overhead_factor, ctrl_overhead_factor, PenaltyFactors};
pub use codegen::{generate, GeneratedKernel, SourceStats};
pub use engineering::{generator_loc, EngineeringCost, SPCONV_V2_METAPROGRAMMER_LOC};
pub use spec::{GeneratedDataflow, KernelSpec, ShapeMode};
pub use tensorir::{emit_tensorir, TensorIrTemplate};
pub use tiling::{adaptive_tile, TilePolicy, ADAPTIVE_MAC_THRESHOLD};
