//! Engineering-cost accounting: the "one-tenth of the engineering cost"
//! claim.
//!
//! SpConv v2 re-implemented CUTLASS in a custom Python metaprogrammer of
//! more than 40,000 lines. The Sparse Kernel Generator only hand-writes
//! the fixed sparse-iterator template plus a TensorIR-style MMA template
//! ("hundreds of lines"); everything else is emitted. We count the
//! template source that would need to be hand-maintained.

use serde::{Deserialize, Serialize};

use crate::{generate, GeneratedDataflow, KernelSpec};
use ts_gpusim::{Precision, TileShape};

/// Lines of code of the SpConv v2 metaprogrammer, as reported in the
/// paper (Sections 1 and 2.3).
pub const SPCONV_V2_METAPROGRAMMER_LOC: usize = 40_000;

/// Engineering cost comparison between this generator and SpConv v2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineeringCost {
    /// Hand-maintained template lines in this generator.
    pub generator_loc: usize,
    /// SpConv v2 metaprogrammer lines.
    pub spconv_v2_loc: usize,
}

impl EngineeringCost {
    /// Fraction of SpConv v2's engineering cost (paper: < 10 %, quoted
    /// as "only 5 % of the lines of code" in Section 6.3).
    pub fn fraction_of_spconv(&self) -> f64 {
        self.generator_loc as f64 / self.spconv_v2_loc as f64
    }
}

/// Counts the hand-maintained template lines: one emission of each
/// dataflow's template (the red sparse iterators + gray scaffolding are
/// the fixed hand-written part; the blue MMA body is compiler-emitted
/// per tile, so it is counted once, not per tile size).
pub fn generator_loc() -> EngineeringCost {
    let mut loc = 0;
    for dataflow in [
        GeneratedDataflow::ImplicitGemm,
        GeneratedDataflow::FetchOnDemand,
    ] {
        let spec = KernelSpec::new(dataflow, TileShape::large(), Precision::Fp16);
        loc += generate(&spec).stats.total_lines;
        // The naive/hoisted/padded variants share the template; the
        // transform passes themselves are ~100 lines each.
        loc += 100;
    }
    // TensorIR-style MMA emission template.
    loc += 150;
    EngineeringCost {
        generator_loc: loc,
        spconv_v2_loc: SPCONV_V2_METAPROGRAMMER_LOC,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_under_a_tenth_of_spconv() {
        let cost = generator_loc();
        assert!(
            cost.fraction_of_spconv() < 0.10,
            "generator fraction = {:.3}",
            cost.fraction_of_spconv()
        );
    }

    #[test]
    fn generator_is_hundreds_of_lines() {
        let cost = generator_loc();
        assert!(cost.generator_loc >= 200, "loc = {}", cost.generator_loc);
        assert!(cost.generator_loc <= 2000, "loc = {}", cost.generator_loc);
    }
}
