//! Tile-size selection policies, including the adaptive tiling of
//! Section 6.2 ("up to 1.6x speedup over fixed tiling").

use serde::{Deserialize, Serialize};

use ts_gpusim::{best_tile_for, Device, Precision, TileShape};

/// MAC threshold above which the adaptive policy switches to the large
/// tile set (the paper keys its two tile sets on "the MACs of the
/// workload").
pub const ADAPTIVE_MAC_THRESHOLD: u64 = 1 << 31;

/// How a layer picks its CTA tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TilePolicy {
    /// Always use one tile (the fixed-tiling ablation baselines).
    Fixed(TileShape),
    /// Pick between the small and large tile sets by workload MACs
    /// (the shipping TorchSparse++ behaviour).
    #[default]
    Adaptive,
    /// Exhaustively search the full tile space per shape (the idealized
    /// Figure 8 experiment; too slow to deploy, used by benchmarks).
    Searched,
}

impl TilePolicy {
    /// Resolves the tile for a GEMM of logical shape `m x n x k`.
    pub fn tile_for(
        &self,
        m: u64,
        n: u64,
        k: u64,
        device: &Device,
        precision: Precision,
    ) -> TileShape {
        match *self {
            TilePolicy::Fixed(t) => t,
            TilePolicy::Adaptive => adaptive_tile(m, n, k),
            TilePolicy::Searched => best_tile_for(m, n, k, device, precision).0,
        }
    }
}

/// The two-set adaptive tile choice keyed on workload MACs.
pub fn adaptive_tile(m: u64, n: u64, k: u64) -> TileShape {
    let macs = m.saturating_mul(n).saturating_mul(k);
    if macs >= ADAPTIVE_MAC_THRESHOLD && n >= 128 {
        TileShape::large()
    } else if macs >= ADAPTIVE_MAC_THRESHOLD {
        TileShape::new(128, 64, 32)
    } else if n >= 64 {
        TileShape::small()
    } else {
        TileShape::new(64, 32, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_uses_large_tiles_for_big_workloads() {
        let t = adaptive_tile(1 << 18, 256, 1728);
        assert_eq!(t, TileShape::large());
    }

    #[test]
    fn adaptive_uses_small_tiles_for_small_workloads() {
        let t = adaptive_tile(2000, 64, 576);
        assert_eq!(t, TileShape::small());
    }

    #[test]
    fn narrow_outputs_get_narrow_tiles() {
        let t = adaptive_tile(2000, 32, 288);
        assert!(t.cta_n <= 32);
    }

    #[test]
    fn searched_policy_never_loses_to_fixed() {
        let d = Device::rtx3090();
        let p = Precision::Fp16;
        for &(m, n, k) in &[
            (100_000u64, 256, 1728),
            (2000, 64, 576),
            (30_000, 128, 3456),
        ] {
            let searched = TilePolicy::Searched.tile_for(m, n, k, &d, p);
            let fixed = TileShape::large();
            let u_s = ts_gpusim::gemm_utilization(m, n, k, searched, &d, p);
            let u_f = ts_gpusim::gemm_utilization(m, n, k, fixed, &d, p);
            assert!(u_s >= u_f, "searched {u_s} < fixed {u_f} at ({m},{n},{k})");
        }
    }

    #[test]
    fn default_policy_is_adaptive() {
        assert_eq!(TilePolicy::default(), TilePolicy::Adaptive);
    }
}
