//! TensorIR-style emission of the on-chip MMA subroutine — the "blue"
//! part of Figure 7.
//!
//! The paper's generator hand-writes one TensorIR template whose
//! scheduled output (for each tile size) becomes the on-chip MMA
//! subroutine of the CUDA kernel. This module emits that template as a
//! TVM-script-like text block, parameterised by tile sizes only —
//! demonstrating the paper's point that the *entire* compiler-facing
//! surface is a few dozen lines.

use serde::{Deserialize, Serialize};

use ts_gpusim::{Precision, TileShape};

/// An emitted TensorIR-style schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorIrTemplate {
    /// The TVM-script-like source text.
    pub script: String,
    /// Number of MMA intrinsic tensorizations in the schedule.
    pub mma_tensorizations: usize,
    /// Warp-level tile grid (warps_m, warps_n).
    pub warp_grid: (u32, u32),
}

/// Warp tile constants of the emitted schedule (one tensor-core MMA
/// fragment per step).
const WARP_M: u32 = 16;
const WARP_N: u32 = 16;
const MMA_K: u32 = 16;

/// Emits the TensorIR matmul template scheduled for `tile` at
/// `precision`.
///
/// The schedule follows the standard tensorized GEMM recipe: block the
/// output space by the CTA tile, stage operands through shared memory
/// with double buffering, split the warp grid, and tensorize the inner
/// 16x16x16 block to the `mma_sync` intrinsic.
pub fn emit_tensorir(tile: TileShape, precision: Precision) -> TensorIrTemplate {
    let warps_m = (tile.cta_m / WARP_M).max(1);
    let warps_n = (tile.cta_n / WARP_N).max(1);
    let k_steps = (tile.cta_k / MMA_K).max(1);
    let dtype = match precision {
        Precision::Fp16 => "float16",
        Precision::Tf32 => "tfloat32",
        Precision::Fp32 => "float32",
    };

    let mut s = String::new();
    let mut push = |line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    push("# TensorIR template (blue part of Figure 7); only tile sizes vary.");
    push("@T.prim_func");
    push(&format!(
        "def mma_subroutine(A: T.Buffer(({}, {}), \"{dtype}\"),",
        tile.cta_m, tile.cta_k
    ));
    push(&format!(
        "                   B: T.Buffer(({}, {}), \"{dtype}\"),",
        tile.cta_k, tile.cta_n
    ));
    push(&format!(
        "                   C: T.Buffer(({}, {}), \"float32\")):",
        tile.cta_m, tile.cta_n
    ));
    push("    # schedule: shared-memory staging with double buffering");
    push(&format!(
        "    A_sh = T.alloc_buffer(({}, {}), \"{dtype}\", scope=\"shared\")",
        tile.cta_m, tile.cta_k
    ));
    push(&format!(
        "    B_sh = T.alloc_buffer(({}, {}), \"{dtype}\", scope=\"shared\")",
        tile.cta_k, tile.cta_n
    ));
    push(&format!(
        "    for wm in T.thread_binding({warps_m}, thread=\"threadIdx.y\"):"
    ));
    push(&format!(
        "        for wn in T.thread_binding({warps_n}, thread=\"threadIdx.z\"):"
    ));
    push(&format!("            for kk in T.serial({k_steps}):"));
    push("                with T.block(\"mma\"):");
    push(&format!(
        "                    T.reads(A_sh[wm * {WARP_M}, kk * {MMA_K}], B_sh[kk * {MMA_K}, wn * {WARP_N}])"
    ));
    push(&format!(
        "                    T.writes(C[wm * {WARP_M}, wn * {WARP_N}])"
    ));
    push(&format!(
        "                    T.tensorize(mma_sync_m{WARP_M}n{WARP_N}k{MMA_K}_{dtype})"
    ));

    TensorIrTemplate {
        script: s,
        mma_tensorizations: (warps_m * warps_n * k_steps) as usize,
        warp_grid: (warps_m, warps_n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_parameterises_by_tile_only() {
        let a = emit_tensorir(TileShape::new(128, 128, 32), Precision::Fp16);
        let b = emit_tensorir(TileShape::new(64, 64, 32), Precision::Fp16);
        assert_ne!(a.script, b.script);
        // Same structure: identical line count, only constants differ.
        assert_eq!(a.script.lines().count(), b.script.lines().count());
    }

    #[test]
    fn warp_grid_matches_tile() {
        let t = emit_tensorir(TileShape::new(128, 64, 32), Precision::Fp16);
        assert_eq!(t.warp_grid, (8, 4));
        assert_eq!(t.mma_tensorizations, 8 * 4 * 2);
    }

    #[test]
    fn precision_selects_dtype() {
        let f16 = emit_tensorir(TileShape::large(), Precision::Fp16);
        assert!(f16.script.contains("float16"));
        let tf32 = emit_tensorir(TileShape::large(), Precision::Tf32);
        assert!(tf32.script.contains("tfloat32"));
    }

    #[test]
    fn template_stays_tiny() {
        // The paper's engineering-cost claim: "hundreds of lines" total;
        // the compiler-facing template itself is a few dozen.
        let t = emit_tensorir(TileShape::large(), Precision::Fp16);
        assert!(t.script.lines().count() < 40);
        assert!(t.script.contains("T.tensorize"));
    }
}
