//! Property-based tests of the Sparse Kernel Generator across its whole
//! specification space.

use proptest::prelude::*;

use ts_gpusim::{Precision, TileShape};
use ts_kernelgen::{
    addr_overhead_factor, ctrl_overhead_factor, emit_tensorir, generate, GeneratedDataflow,
    KernelSpec, ShapeMode,
};

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        prop::sample::select(vec![
            GeneratedDataflow::ImplicitGemm,
            GeneratedDataflow::FetchOnDemand,
        ]),
        prop::sample::select(TileShape::search_space()),
        prop::sample::select(vec![Precision::Fp16, Precision::Tf32, Precision::Fp32]),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(dataflow, tile, precision, hoist, pad, fixed)| KernelSpec {
                dataflow,
                tile,
                precision,
                shape_mode: if fixed {
                    ShapeMode::Fixed
                } else {
                    ShapeMode::Dynamic
                },
                hoist_invariants: hoist,
                padded_map: pad,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emission_is_deterministic_and_structured(spec in spec_strategy()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.source.contains("__global__"));
        prop_assert!(a.source.ends_with("}\n"), "source must close the kernel body");
        prop_assert_eq!(a.stats.total_lines, a.source.lines().count());
    }

    #[test]
    fn penalties_are_bounded_and_consistent(spec in spec_strategy()) {
        let addr = addr_overhead_factor(&spec);
        let ctrl = ctrl_overhead_factor(&spec);
        prop_assert!((1.0..=2.0).contains(&addr), "addr = {addr}");
        prop_assert!((1.0..=1.35).contains(&ctrl), "ctrl = {ctrl}");
        // Fully optimised dynamic kernels pay nothing.
        if spec.shape_mode == ShapeMode::Dynamic && spec.hoist_invariants {
            prop_assert_eq!(addr, 1.0);
        }
        if spec.padded_map || spec.shape_mode == ShapeMode::Fixed {
            prop_assert_eq!(ctrl, 1.0);
        }
    }

    #[test]
    fn hoisting_and_padding_never_hurt(spec in spec_strategy()) {
        let hoisted = spec.with_hoisting(true);
        let unhoisted = spec.with_hoisting(false);
        prop_assert!(addr_overhead_factor(&hoisted) <= addr_overhead_factor(&unhoisted));
        let padded = spec.with_padding(true);
        let unpadded = spec.with_padding(false);
        prop_assert!(ctrl_overhead_factor(&padded) <= ctrl_overhead_factor(&unpadded));
    }

    #[test]
    fn kernel_names_are_unique_per_spec_dimension(
        tile_a in prop::sample::select(TileShape::search_space()),
        tile_b in prop::sample::select(TileShape::search_space()),
    ) {
        let a = generate(&KernelSpec::new(GeneratedDataflow::ImplicitGemm, tile_a, Precision::Fp16));
        let b = generate(&KernelSpec::new(GeneratedDataflow::ImplicitGemm, tile_b, Precision::Fp16));
        if tile_a != tile_b {
            prop_assert_ne!(a.source, b.source);
        } else {
            prop_assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn tensorir_tensorizations_match_tile_arithmetic(
        tile in prop::sample::select(TileShape::search_space()),
        p in prop::sample::select(vec![Precision::Fp16, Precision::Tf32, Precision::Fp32]),
    ) {
        let t = emit_tensorir(tile, p);
        let (wm, wn) = t.warp_grid;
        prop_assert_eq!(wm, (tile.cta_m / 16).max(1));
        prop_assert_eq!(wn, (tile.cta_n / 16).max(1));
        prop_assert_eq!(
            t.mma_tensorizations as u32,
            wm * wn * (tile.cta_k / 16).max(1)
        );
        prop_assert!(t.script.contains("T.tensorize"));
    }
}
