//! Property-based tests of the cost model: monotonicity, bounds, and
//! device-scaling behaviour.

use proptest::prelude::*;

use ts_gpusim::{
    gemm_dram_traffic, gemm_utilization, CostModel, Device, KernelDesc, Overlap, Precision,
    TileShape,
};

fn devices() -> Vec<Device> {
    Device::paper_lineup()
}

fn tile_strategy() -> impl Strategy<Value = TileShape> {
    prop::sample::select(TileShape::search_space())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_time_is_positive_and_finite(
        macs in 0u64..1 << 36,
        read in 0u64..1 << 32,
        write in 0u64..1 << 30,
        launches in 1u32..64,
        di in 0usize..5,
    ) {
        let model = CostModel::new(devices()[di].clone());
        let k = KernelDesc::gemm("k", 1024, 64, 64, Precision::Fp16)
            .with_macs(macs)
            .with_traffic(read, write)
            .with_launches(launches);
        let t = model.kernel_time_us(&k);
        prop_assert!(t.is_finite() && t > 0.0);
        // Launch overhead is a hard floor.
        prop_assert!(t >= launches as f64 * model.device().launch_overhead_us);
    }

    #[test]
    fn more_macs_never_run_faster(macs in 0u64..1 << 34, extra in 0u64..1 << 34, di in 0usize..5) {
        let model = CostModel::new(devices()[di].clone());
        let base = KernelDesc::gemm("a", 4096, 128, 512, Precision::Fp16).with_macs(macs);
        let bigger = base.clone().with_macs(macs + extra);
        prop_assert!(model.kernel_time_us(&bigger) >= model.kernel_time_us(&base));
    }

    #[test]
    fn more_bytes_never_run_faster(read in 0u64..1 << 30, extra in 0u64..1 << 30, di in 0usize..5) {
        let model = CostModel::new(devices()[di].clone());
        let base = KernelDesc::memory("m", read, 0);
        let bigger = KernelDesc::memory("m", read + extra, 0);
        prop_assert!(model.kernel_time_us(&bigger) >= model.kernel_time_us(&base));
    }

    #[test]
    fn overlap_full_never_slower_than_none(
        macs in 1u64..1 << 33,
        read in 1u64..1 << 30,
        di in 0usize..5,
    ) {
        let model = CostModel::new(devices()[di].clone());
        let over = KernelDesc::gemm("a", 2048, 128, 256, Precision::Fp16)
            .with_macs(macs)
            .with_traffic(read, read / 2)
            .with_overlap(Overlap::Full);
        let seq = over.clone().with_overlap(Overlap::None);
        prop_assert!(model.kernel_time_us(&over) <= model.kernel_time_us(&seq) + 1e-12);
    }

    #[test]
    fn utilization_is_bounded(
        m in 1u64..1 << 20,
        n in 1u64..512,
        k in 1u64..1 << 14,
        tile in tile_strategy(),
        di in 0usize..5,
        p in prop::sample::select(vec![Precision::Fp16, Precision::Tf32, Precision::Fp32]),
    ) {
        let u = gemm_utilization(m, n, k, tile, &devices()[di], p);
        prop_assert!((0.0..=1.0).contains(&u), "u = {u}");
    }

    #[test]
    fn traffic_is_monotone_in_every_dim(
        m in 1u64..1 << 16,
        n in 1u64..512,
        k in 1u64..1 << 12,
        tile in tile_strategy(),
    ) {
        let p = Precision::Fp16;
        let (r0, w0) = gemm_dram_traffic(m, n, k, tile, p);
        let (r1, w1) = gemm_dram_traffic(m + 64, n, k, tile, p);
        prop_assert!(r1 >= r0 && w1 >= w0);
        let (r2, w2) = gemm_dram_traffic(m, n + 16, k, tile, p);
        prop_assert!(r2 >= r0 && w2 >= w0);
        let (r3, w3) = gemm_dram_traffic(m, n, k + 32, tile, p);
        prop_assert!(r3 >= r0 && w3 == w0);
    }

    #[test]
    fn bandwidth_scaling_never_speeds_up_memory_kernels(
        read in 1u64..1 << 30,
        f in 0.1f64..1.0,
        di in 0usize..5,
    ) {
        let d = devices()[di].clone();
        let slow = CostModel::new(d.with_bandwidth_scale(f));
        let fast = CostModel::new(d);
        let k = KernelDesc::memory("m", read, read);
        prop_assert!(slow.kernel_time_us(&k) >= fast.kernel_time_us(&k) - 1e-12);
    }

    #[test]
    fn compute_scaling_never_speeds_up_gemms(
        macs in 1u64..1 << 34,
        f in 0.1f64..1.0,
        di in 0usize..5,
    ) {
        let d = devices()[di].clone();
        let slow = CostModel::new(d.with_compute_scale(f));
        let fast = CostModel::new(d);
        let k = KernelDesc::gemm("g", 8192, 256, 512, Precision::Fp16).with_macs(macs);
        prop_assert!(slow.kernel_time_us(&k) >= fast.kernel_time_us(&k) - 1e-12);
    }

    #[test]
    fn penalties_scale_whole_kernel(
        macs in 1u64..1 << 32,
        read in 1u64..1 << 28,
        addr in 1.0f64..2.0,
        ctrl in 1.0f64..1.5,
    ) {
        let model = CostModel::new(Device::rtx3090());
        let base = KernelDesc::gemm("g", 4096, 128, 512, Precision::Fp16)
            .with_macs(macs)
            .with_traffic(read, read / 4);
        let pen = base.clone().with_addr_overhead(addr).with_ctrl_overhead(ctrl);
        let t0 = model.kernel_time_us(&base) - model.device().launch_overhead_us;
        let t1 = model.kernel_time_us(&pen) - model.device().launch_overhead_us;
        prop_assert!((t1 / t0 - addr * ctrl).abs() < 1e-6, "ratio {} vs {}", t1 / t0, addr * ctrl);
    }
}
