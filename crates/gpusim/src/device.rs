//! GPU device specifications.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Precision;

/// NVIDIA GPU micro-architecture generation.
///
/// Determines which precisions have tensor-core support: TF32 exists only
/// on Ampere; Pascal has no tensor cores at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// GTX 10-series (no tensor cores).
    Pascal,
    /// RTX 20-series (FP16 tensor cores, no TF32).
    Turing,
    /// A100 / RTX 30-series / Orin (FP16 + TF32 tensor cores).
    Ampere,
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arch::Pascal => write!(f, "Pascal"),
            Arch::Turing => write!(f, "Turing"),
            Arch::Ampere => write!(f, "Ampere"),
        }
    }
}

/// Specification of a simulated GPU.
///
/// The presets mirror the five devices of the paper's evaluation. All
/// figures are public datasheet numbers; the cost model only relies on
/// their *ratios* (tensor-core vs. CUDA-core throughput, compute vs.
/// bandwidth), which is what makes the paper's device-dependent
/// conclusions (e.g. "A100 is far less sensitive to redundant computation
/// than to mapping overhead") reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable device name.
    pub name: String,
    /// Micro-architecture generation.
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak FP16 tensor-core throughput in TFLOPS (2 * TMACS).
    pub fp16_tflops: f64,
    /// Peak TF32 tensor-core throughput in TFLOPS.
    pub tf32_tflops: f64,
    /// Peak FP32 CUDA-core throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Shared-memory capacity per SM in KiB.
    pub smem_kib_per_sm: u32,
    /// Fixed cost of launching one kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Multiplier applied to atomically-written DRAM bytes
    /// (serialisation of conflicting writes in fetch-on-demand).
    pub atomic_penalty: f64,
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} SMs @ {:.2} GHz, {:.0}/{:.0}/{:.0} TFLOPS fp16/tf32/fp32, {:.0} GB/s)",
            self.name,
            self.arch,
            self.sm_count,
            self.clock_ghz,
            self.fp16_tflops,
            self.tf32_tflops,
            self.fp32_tflops,
            self.dram_gbps
        )
    }
}

impl Device {
    /// NVIDIA A100 (SXM4 40 GB).
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            arch: Arch::Ampere,
            sm_count: 108,
            clock_ghz: 1.41,
            fp16_tflops: 312.0,
            tf32_tflops: 156.0,
            fp32_tflops: 19.5,
            dram_gbps: 1555.0,
            smem_kib_per_sm: 164,
            launch_overhead_us: 4.0,
            atomic_penalty: 2.0,
        }
    }

    /// NVIDIA GeForce RTX 3090.
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090".to_owned(),
            arch: Arch::Ampere,
            sm_count: 82,
            clock_ghz: 1.70,
            // The paper quotes "an ample 71 TFLOPS FP16 peak throughput".
            fp16_tflops: 71.0,
            tf32_tflops: 35.6,
            fp32_tflops: 35.6,
            dram_gbps: 936.0,
            smem_kib_per_sm: 100,
            launch_overhead_us: 4.0,
            atomic_penalty: 2.0,
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti.
    ///
    /// The paper calls out a "much smaller performance gap between tensor
    /// and CUDA cores on 2080 Ti (3x)"; the preset encodes exactly that
    /// ratio.
    pub fn rtx2080ti() -> Self {
        Self {
            name: "RTX 2080 Ti".to_owned(),
            arch: Arch::Turing,
            sm_count: 68,
            clock_ghz: 1.545,
            fp16_tflops: 40.2, // 3x the CUDA-core FP32 peak
            tf32_tflops: 13.4, // no TF32 on Turing: falls back to FP32
            fp32_tflops: 13.4,
            dram_gbps: 616.0,
            smem_kib_per_sm: 64,
            launch_overhead_us: 4.5,
            atomic_penalty: 2.5,
        }
    }

    /// NVIDIA GeForce GTX 1080 Ti (Pascal, no tensor cores).
    pub fn gtx1080ti() -> Self {
        Self {
            name: "GTX 1080 Ti".to_owned(),
            arch: Arch::Pascal,
            sm_count: 28,
            clock_ghz: 1.582,
            fp16_tflops: 11.3, // no tensor cores: FP16 executes at FP32 rate
            tf32_tflops: 11.3,
            fp32_tflops: 11.3,
            dram_gbps: 484.0,
            smem_kib_per_sm: 96,
            launch_overhead_us: 5.0,
            atomic_penalty: 3.0,
        }
    }

    /// NVIDIA Jetson AGX Orin (edge platform used for ADAS deployment).
    pub fn jetson_orin() -> Self {
        Self {
            name: "Jetson Orin".to_owned(),
            arch: Arch::Ampere,
            sm_count: 16,
            clock_ghz: 1.3,
            fp16_tflops: 10.6,
            tf32_tflops: 5.3,
            fp32_tflops: 5.3,
            dram_gbps: 204.8,
            smem_kib_per_sm: 164,
            launch_overhead_us: 8.0,
            atomic_penalty: 2.5,
        }
    }

    /// All five evaluation devices of the paper.
    pub fn paper_lineup() -> Vec<Device> {
        vec![
            Device::a100(),
            Device::rtx3090(),
            Device::rtx2080ti(),
            Device::gtx1080ti(),
            Device::jetson_orin(),
        ]
    }

    /// Peak MAC throughput in MACs per microsecond for `precision`.
    ///
    /// One FLOP pair (multiply+add) counts as one MAC, so this is
    /// `TFLOPS / 2 * 1e6`.
    pub fn peak_macs_per_us(&self, precision: Precision) -> f64 {
        let tflops = match precision {
            Precision::Fp16 => self.fp16_tflops,
            Precision::Tf32 => self.tf32_tflops,
            Precision::Fp32 => self.fp32_tflops,
        };
        tflops / 2.0 * 1e6
    }

    /// CUDA-core scalar throughput in operations per microsecond
    /// (used for mapping kernels: hashing, sorting, reordering).
    pub fn cuda_ops_per_us(&self) -> f64 {
        self.fp32_tflops * 1e6
    }

    /// DRAM bandwidth in bytes per microsecond.
    pub fn bytes_per_us(&self) -> f64 {
        self.dram_gbps * 1e3
    }

    /// Ratio of tensor-core to CUDA-core throughput at `precision`
    /// (the paper's "16x on A100, 3x on 2080 Ti" device characteristic).
    pub fn tensor_to_cuda_ratio(&self, precision: Precision) -> f64 {
        self.peak_macs_per_us(precision) / (self.fp32_tflops / 2.0 * 1e6)
    }

    /// Returns a copy with DRAM bandwidth scaled by `factor`
    /// (micro-architectural ablation of Section 6.3).
    pub fn with_bandwidth_scale(&self, factor: f64) -> Device {
        let mut d = self.clone();
        d.dram_gbps *= factor;
        d.name = format!("{} (bw x{factor})", self.name);
        d
    }

    /// Returns a copy with the SM domain scaled by `factor` — peak MMA
    /// and CUDA throughput *and* the clock that drives latency hiding
    /// (the paper's compute ablation locks the SM clock, which slows
    /// everything on-chip while DRAM bandwidth stays fixed; Section 6.3).
    pub fn with_compute_scale(&self, factor: f64) -> Device {
        let mut d = self.clone();
        d.fp16_tflops *= factor;
        d.tf32_tflops *= factor;
        d.fp32_tflops *= factor;
        d.clock_ghz *= factor;
        d.name = format!("{} (compute x{factor})", self.name);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_has_16x_tensor_to_cuda_gap() {
        let d = Device::a100();
        let ratio = d.tensor_to_cuda_ratio(Precision::Fp16);
        assert!((ratio - 16.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn rtx2080ti_has_3x_tensor_to_cuda_gap() {
        let d = Device::rtx2080ti();
        let ratio = d.tensor_to_cuda_ratio(Precision::Fp16);
        assert!((ratio - 3.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn pascal_has_no_tensor_speedup() {
        let d = Device::gtx1080ti();
        assert_eq!(
            d.peak_macs_per_us(Precision::Fp16),
            d.peak_macs_per_us(Precision::Fp32)
        );
    }

    #[test]
    fn turing_tf32_falls_back_to_fp32() {
        let d = Device::rtx2080ti();
        assert_eq!(
            d.peak_macs_per_us(Precision::Tf32),
            d.peak_macs_per_us(Precision::Fp32)
        );
    }

    #[test]
    fn lineup_covers_three_architectures() {
        let archs: std::collections::HashSet<_> =
            Device::paper_lineup().iter().map(|d| d.arch).collect();
        assert!(archs.contains(&Arch::Pascal));
        assert!(archs.contains(&Arch::Turing));
        assert!(archs.contains(&Arch::Ampere));
    }

    #[test]
    fn bandwidth_scaling_only_touches_dram() {
        let d = Device::rtx3090();
        let half = d.with_bandwidth_scale(0.5);
        assert_eq!(half.dram_gbps, d.dram_gbps * 0.5);
        assert_eq!(half.fp16_tflops, d.fp16_tflops);
    }

    #[test]
    fn compute_scaling_touches_all_precisions() {
        let d = Device::rtx3090();
        let half = d.with_compute_scale(0.5);
        assert_eq!(half.fp16_tflops, d.fp16_tflops * 0.5);
        assert_eq!(half.fp32_tflops, d.fp32_tflops * 0.5);
        assert_eq!(half.dram_gbps, d.dram_gbps);
    }

    #[test]
    fn display_includes_key_specs() {
        let d = Device::a100();
        let s = d.to_string();
        assert!(s.contains("A100") && s.contains("Ampere") && s.contains("108 SMs"));
    }

    #[test]
    fn orin_is_the_lowest_parallelism_device() {
        let lineup = Device::paper_lineup();
        let orin = Device::jetson_orin();
        assert!(lineup.iter().all(|d| d.sm_count >= orin.sm_count));
    }
}
