//! Kernel workload descriptors.

use serde::{Deserialize, Serialize};

use crate::Precision;

/// What a kernel contributes to when traces are aggregated.
///
/// The split between `Mapping` and `Compute` is the load-bearing
/// distinction of the paper's analysis (Tables 3 vs. 4): mapping kernels
/// (hash building, bitmask sorting, map reordering) run on CUDA cores and
/// can dominate end-to-end time even when compute kernels got faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Matrix-multiply style compute (GEMM, implicit GEMM, fetch-on-demand).
    Compute,
    /// Map construction: hashing, neighbor queries, bitmasks, sorting,
    /// reordering, padding.
    Mapping,
    /// Partial-sum reduction across mask splits.
    Reduction,
    /// Pure data movement: gather/scatter/transpose/copy.
    Memory,
    /// Element-wise layers (bias, BN, ReLU) and other small kernels.
    Elementwise,
}

impl KernelClass {
    /// All classes, for aggregation tables.
    pub const ALL: [KernelClass; 5] = [
        KernelClass::Compute,
        KernelClass::Mapping,
        KernelClass::Reduction,
        KernelClass::Memory,
        KernelClass::Elementwise,
    ];

    /// Short label used in printed breakdowns.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Compute => "compute",
            KernelClass::Mapping => "mapping",
            KernelClass::Reduction => "reduction",
            KernelClass::Memory => "memory",
            KernelClass::Elementwise => "elementwise",
        }
    }
}

/// Whether a kernel can hide memory latency behind computation.
///
/// Gather-GEMM-scatter launches separate memory and compute kernels, so
/// nothing overlaps (Figure 3a/b of the paper); fetch-on-demand and
/// implicit GEMM pipeline loads against MMA instructions (Figure 3c/d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Overlap {
    /// Memory and compute phases serialise: `t = t_mem + t_compute`.
    None,
    /// Memory access is pipelined behind compute: `t = max(t_mem, t_compute)`.
    Full,
}

/// CTA-level tile shape of a generated GEMM kernel.
///
/// Only tiling sizes are tunable in the Sparse Kernel Generator (Section
/// 3.2 of the paper argues this reduced design space does not compromise
/// performance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Output rows computed per CTA.
    pub cta_m: u32,
    /// Output columns computed per CTA.
    pub cta_n: u32,
    /// K-dimension chunk staged through shared memory per iteration.
    pub cta_k: u32,
    /// Number of pipeline stages (double buffering = 2).
    pub stages: u32,
}

impl TileShape {
    /// Creates a tile shape with double buffering.
    pub fn new(cta_m: u32, cta_n: u32, cta_k: u32) -> Self {
        Self {
            cta_m,
            cta_n,
            cta_k,
            stages: 2,
        }
    }

    /// Shared-memory footprint in bytes for `precision` operands.
    pub fn smem_bytes(&self, precision: Precision) -> u64 {
        let elems = (self.cta_m + self.cta_n) as u64 * self.cta_k as u64;
        elems * precision.bytes() as u64 * self.stages as u64
    }

    /// The large default tile used for compute-heavy layers.
    pub fn large() -> Self {
        Self::new(128, 128, 32)
    }

    /// The small default tile used for low-parallelism layers.
    pub fn small() -> Self {
        Self::new(64, 64, 32)
    }

    /// The tile-size search space of the Sparse Kernel Generator.
    pub fn search_space() -> Vec<TileShape> {
        let mut v = Vec::new();
        for &(m, n) in &[
            (128, 128),
            (128, 64),
            (64, 128),
            (64, 64),
            (32, 64),
            (64, 32),
            (32, 32),
            (16, 64),
        ] {
            for &k in &[16, 32, 64] {
                v.push(TileShape::new(m, n, k));
            }
        }
        v
    }
}

impl std::fmt::Display for TileShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.cta_m, self.cta_n, self.cta_k)
    }
}

/// Descriptor of one simulated kernel launch.
///
/// Dataflow executors build these from *exact* workload statistics (real
/// kernel maps, real bitmask population counts), then [`crate::CostModel`]
/// prices them. Construct via the provided constructors and refine with
/// the builder-style `with_*` methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable label (appears in traces).
    pub name: String,
    /// Aggregation category.
    pub class: KernelClass,
    /// Total MACs executed, *including* warp-lockstep waste.
    pub macs: u64,
    /// Scalar CUDA-core operations (mapping work, address math priced
    /// separately from MMA).
    pub cuda_ops: u64,
    /// Bytes read from DRAM.
    pub dram_read: u64,
    /// Bytes written to DRAM (non-atomic).
    pub dram_write: u64,
    /// Bytes written atomically (subject to the device atomic penalty).
    pub atomic_write: u64,
    /// Overlap semantics of this kernel.
    pub overlap: Overlap,
    /// Execution precision for MAC throughput selection.
    pub precision: Precision,
    /// Logical GEMM shape, when the kernel is a (implicit) GEMM; enables
    /// tile/wave quantization modelling.
    pub gemm_shape: Option<(u64, u64, u64)>,
    /// CTA tile, when the kernel is a generated GEMM.
    pub tile: Option<TileShape>,
    /// Multiplier (>= 1) on kernel time from address arithmetic that was
    /// *not* hoisted out of the inner loop (Section 3.2 / Figure 20).
    /// Address math sits on the load path, so it slows the whole kernel.
    pub addr_overhead: f64,
    /// Multiplier (>= 1) on kernel time from boundary-check control flow
    /// (Section 3.2 / Figure 21).
    pub ctrl_overhead: f64,
    /// Explicit MMA-pipe utilization override. When set, it replaces the
    /// tile/shape-derived utilization (used by sparse kernels, whose
    /// occupancy effects are modelled as [`KernelDesc::latency_stretch`]
    /// instead).
    pub util_override: Option<f64>,
    /// Wall-clock stretch (>= 1) from SM under-occupancy: latency-bound
    /// kernels with too few CTAs cannot hide memory latency, stretching
    /// both compute and memory phases.
    pub latency_stretch: f64,
    /// Number of sub-kernels this descriptor stands for (multiplies the
    /// launch overhead; used for per-offset host loops).
    pub launches: u32,
}

impl KernelDesc {
    /// A GEMM compute kernel of logical shape `m x n x k` with the default
    /// operand/output DRAM traffic and full overlap.
    pub fn gemm(name: impl Into<String>, m: u64, n: u64, k: u64, precision: Precision) -> Self {
        let tile = TileShape::large();
        let (read, write) = crate::cost::gemm_dram_traffic(m, n, k, tile, precision);
        Self {
            name: name.into(),
            class: KernelClass::Compute,
            macs: m * n * k,
            cuda_ops: 0,
            dram_read: read,
            dram_write: write,
            atomic_write: 0,
            overlap: Overlap::Full,
            precision,
            gemm_shape: Some((m, n, k)),
            tile: Some(tile),
            addr_overhead: 1.0,
            ctrl_overhead: 1.0,
            util_override: None,
            latency_stretch: 1.0,
            launches: 1,
        }
    }

    /// A mapping kernel processing `elems` elements with `bytes` of DRAM
    /// traffic (split evenly read/write) on CUDA cores.
    pub fn mapping(name: impl Into<String>, elems: u64, bytes: u64) -> Self {
        Self {
            name: name.into(),
            class: KernelClass::Mapping,
            macs: 0,
            cuda_ops: elems,
            dram_read: bytes / 2,
            dram_write: bytes - bytes / 2,
            atomic_write: 0,
            overlap: Overlap::Full,
            precision: Precision::Fp32,
            gemm_shape: None,
            tile: None,
            addr_overhead: 1.0,
            ctrl_overhead: 1.0,
            util_override: None,
            latency_stretch: 1.0,
            launches: 1,
        }
    }

    /// A pure data-movement kernel (gather/scatter/copy).
    pub fn memory(name: impl Into<String>, read: u64, write: u64) -> Self {
        Self {
            name: name.into(),
            class: KernelClass::Memory,
            macs: 0,
            cuda_ops: 0,
            dram_read: read,
            dram_write: write,
            atomic_write: 0,
            overlap: Overlap::Full,
            precision: Precision::Fp32,
            gemm_shape: None,
            tile: None,
            addr_overhead: 1.0,
            ctrl_overhead: 1.0,
            util_override: None,
            latency_stretch: 1.0,
            launches: 1,
        }
    }

    /// Sets the kernel class.
    pub fn with_class(mut self, class: KernelClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the total MAC count (e.g. to include warp-lockstep waste).
    pub fn with_macs(mut self, macs: u64) -> Self {
        self.macs = macs;
        self
    }

    /// Sets the CTA tile.
    pub fn with_tile(mut self, tile: TileShape) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Sets explicit DRAM traffic.
    pub fn with_traffic(mut self, read: u64, write: u64) -> Self {
        self.dram_read = read;
        self.dram_write = write;
        self
    }

    /// Marks `bytes` of the write traffic as atomic.
    pub fn with_atomic_write(mut self, bytes: u64) -> Self {
        self.atomic_write = bytes;
        self
    }

    /// Sets overlap semantics.
    pub fn with_overlap(mut self, overlap: Overlap) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the addressing-overhead multiplier (>= 1).
    pub fn with_addr_overhead(mut self, factor: f64) -> Self {
        self.addr_overhead = factor;
        self
    }

    /// Sets the control-flow-overhead multiplier (>= 1).
    pub fn with_ctrl_overhead(mut self, factor: f64) -> Self {
        self.ctrl_overhead = factor;
        self
    }

    /// Sets an explicit MMA utilization (see [`KernelDesc::util_override`]).
    pub fn with_util(mut self, util: f64) -> Self {
        self.util_override = Some(util.clamp(1e-4, 1.0));
        self
    }

    /// Sets the under-occupancy stretch factor (>= 1).
    pub fn with_latency_stretch(mut self, stretch: f64) -> Self {
        self.latency_stretch = stretch.max(1.0);
        self
    }

    /// Sets how many kernel launches this descriptor stands for.
    pub fn with_launches(mut self, launches: u32) -> Self {
        self.launches = launches.max(1);
        self
    }

    /// Total DRAM bytes moved (read + write, atomics included once).
    pub fn total_bytes(&self) -> u64 {
        self.dram_read + self.dram_write + self.atomic_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_constructor_sets_macs() {
        let k = KernelDesc::gemm("g", 100, 64, 32, Precision::Fp16);
        assert_eq!(k.macs, 100 * 64 * 32);
        assert_eq!(k.class, KernelClass::Compute);
        assert!(k.dram_read > 0 && k.dram_write > 0);
    }

    #[test]
    fn builder_methods_compose() {
        let k = KernelDesc::gemm("g", 10, 10, 10, Precision::Fp32)
            .with_macs(2000)
            .with_addr_overhead(1.5)
            .with_ctrl_overhead(1.3)
            .with_launches(27);
        assert_eq!(k.macs, 2000);
        assert_eq!(k.addr_overhead, 1.5);
        assert_eq!(k.ctrl_overhead, 1.3);
        assert_eq!(k.launches, 27);
    }

    #[test]
    fn tile_smem_footprint() {
        let t = TileShape::new(128, 128, 32);
        // (128+128)*32 elems * 2 bytes * 2 stages = 32 KiB
        assert_eq!(t.smem_bytes(Precision::Fp16), 32 * 1024);
    }

    #[test]
    fn search_space_is_nontrivial_and_unique() {
        let space = TileShape::search_space();
        assert!(space.len() >= 20);
        let set: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(set.len(), space.len());
    }

    #[test]
    fn launches_clamped_to_one() {
        let k = KernelDesc::mapping("m", 10, 10).with_launches(0);
        assert_eq!(k.launches, 1);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            KernelClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), KernelClass::ALL.len());
    }
}
