//! Kernel launch traces and per-category latency aggregation.

use serde::{Deserialize, Serialize};

use crate::{CostModel, KernelClass, KernelDesc};

/// One priced kernel launch inside a [`KernelTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The workload descriptor.
    pub desc: KernelDesc,
    /// Simulated duration in microseconds (including launch overhead).
    pub time_us: f64,
}

/// An ordered record of every kernel a dataflow "launched", with
/// simulated timings.
///
/// Traces are how the reproduction distinguishes *kernel-only* latency
/// (paper Table 4) from *end-to-end* latency including mapping overhead
/// (paper Table 3): aggregate with [`KernelTrace::class_us`].
///
/// # Examples
///
/// ```
/// use ts_gpusim::{KernelClass, KernelDesc, KernelTrace};
///
/// let mut trace = KernelTrace::new();
/// trace.push(KernelDesc::mapping("hash build", 1000, 8000), 12.0);
/// assert_eq!(trace.total_us(), 12.0);
/// assert_eq!(trace.class_us(KernelClass::Mapping), 12.0);
/// assert_eq!(trace.class_us(KernelClass::Compute), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTrace {
    entries: Vec<TraceEntry>,
}

impl KernelTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a priced kernel.
    pub fn push(&mut self, desc: KernelDesc, time_us: f64) {
        self.entries.push(TraceEntry { desc, time_us });
    }

    /// Appends every entry of `other`.
    pub fn merge(&mut self, other: KernelTrace) {
        self.entries.extend(other.entries);
    }

    /// The recorded entries in launch order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of kernel launches recorded (counting multi-launch
    /// descriptors once per launch).
    pub fn launch_count(&self) -> u64 {
        self.entries.iter().map(|e| e.desc.launches as u64).sum()
    }

    /// Total simulated time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.entries.iter().map(|e| e.time_us).sum()
    }

    /// Total simulated time of kernels in `class`.
    pub fn class_us(&self, class: KernelClass) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.desc.class == class)
            .map(|e| e.time_us)
            .sum()
    }

    /// Per-class breakdown `(class, microseconds)` over all classes that
    /// appear in the trace.
    pub fn breakdown(&self) -> Vec<(KernelClass, f64)> {
        KernelClass::ALL
            .iter()
            .map(|&c| (c, self.class_us(c)))
            .filter(|&(_, t)| t > 0.0)
            .collect()
    }

    /// Total MACs across all kernels (including warp-lockstep waste).
    pub fn total_macs(&self) -> u64 {
        self.entries.iter().map(|e| e.desc.macs).sum()
    }

    /// Total DRAM bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.desc.total_bytes()).sum()
    }

    /// True when no kernels were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exports the trace in Chrome tracing (`chrome://tracing` /
    /// Perfetto) JSON format: each kernel becomes a complete event on a
    /// per-class track, laid out sequentially in launch order.
    pub fn to_chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("[");
        let mut t = 0.0f64;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = e.desc.name.replace('"', "'");
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},                 \"pid\":1,\"tid\":\"{}\",\"args\":{{\"macs\":{},\"bytes\":{},\"launches\":{}}}}}",
                t,
                e.time_us,
                e.desc.class.label(),
                e.desc.macs,
                e.desc.total_bytes(),
                e.desc.launches,
            );
            t += e.time_us;
        }
        out.push(']');
        out
    }

    /// Emits every entry as a `ts-trace` simulated-kernel span
    /// (subsystem `gpusim`, per-thread `gpu#tid` lane) carrying kernel
    /// class, MAC count and the occupancy `cost` attributes to it.
    ///
    /// Call this on a *final* merged trace (e.g. a completed
    /// `RunReport`), not at record time: prepared sub-traces are cached
    /// and re-merged across frames, so record-time emission would miss
    /// cache hits and double-count sub-trace merges. No-op unless a
    /// tracer is installed on the calling thread.
    pub fn emit_trace_spans(&self, cost: &CostModel) {
        if !ts_trace::active() {
            return;
        }
        for e in &self.entries {
            ts_trace::sim_kernel(
                &e.desc.name,
                e.desc.class.label(),
                e.desc.macs,
                cost.utilization(&e.desc),
                e.time_us,
            );
        }
    }

    /// Renders a human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trace: {} launches, {:.1} us total",
            self.launch_count(),
            self.total_us()
        );
        for (class, t) in self.breakdown() {
            let _ = writeln!(s, "  {:<12} {:>10.1} us", class.label(), t);
        }
        s
    }
}

impl FromIterator<TraceEntry> for KernelTrace {
    fn from_iter<T: IntoIterator<Item = TraceEntry>>(iter: T) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for KernelTrace {
    fn extend<T: IntoIterator<Item = TraceEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    #[test]
    fn totals_accumulate() {
        let mut t = KernelTrace::new();
        t.push(KernelDesc::mapping("a", 10, 10), 5.0);
        t.push(KernelDesc::gemm("b", 8, 8, 8, Precision::Fp32), 7.5);
        assert_eq!(t.total_us(), 12.5);
        assert_eq!(t.class_us(KernelClass::Mapping), 5.0);
        assert_eq!(t.class_us(KernelClass::Compute), 7.5);
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = KernelTrace::new();
        a.push(KernelDesc::mapping("a", 1, 1), 1.0);
        let mut b = KernelTrace::new();
        b.push(KernelDesc::mapping("b", 1, 1), 2.0);
        a.merge(b);
        assert_eq!(a.total_us(), 3.0);
    }

    #[test]
    fn launch_count_respects_multi_launch_descs() {
        let mut t = KernelTrace::new();
        t.push(KernelDesc::mapping("m", 1, 1).with_launches(27), 1.0);
        assert_eq!(t.launch_count(), 27);
    }

    #[test]
    fn breakdown_skips_empty_classes() {
        let mut t = KernelTrace::new();
        t.push(KernelDesc::mapping("m", 1, 1), 1.0);
        let b = t.breakdown();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].0, KernelClass::Mapping);
    }

    #[test]
    fn summary_mentions_classes() {
        let mut t = KernelTrace::new();
        t.push(KernelDesc::mapping("m", 1, 1), 1.0);
        let s = t.summary();
        assert!(s.contains("mapping"));
        assert!(!s.is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let mut t = KernelTrace::new();
        t.push(KernelDesc::mapping("hash \"build\"", 10, 10), 5.0);
        t.push(KernelDesc::gemm("conv", 8, 8, 8, Precision::Fp32), 7.5);
        let json = t.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1]["ts"], 5.0);
        assert_eq!(events[1]["dur"], 7.5);
        assert_eq!(events[0]["tid"], "mapping");
        assert_eq!(events[1]["tid"], "compute");
    }

    #[test]
    fn from_iterator_collects() {
        let t: KernelTrace = vec![TraceEntry {
            desc: KernelDesc::mapping("x", 1, 1),
            time_us: 4.0,
        }]
        .into_iter()
        .collect();
        assert_eq!(t.total_us(), 4.0);
    }
}
