//! Analytical GPU execution model for the TorchSparse++ reproduction.
//!
//! The paper's artifact is CUDA running on real NVIDIA GPUs. This crate
//! replaces that hardware with a first-principles performance model:
//!
//! * [`Device`] — per-GPU specifications (SM count, clock, per-precision
//!   peak throughput, DRAM bandwidth, launch overhead) with presets for
//!   every GPU the paper evaluates (A100, RTX 3090, RTX 2080 Ti,
//!   GTX 1080 Ti, Jetson AGX Orin).
//! * [`KernelDesc`] — a workload descriptor for one GPU kernel launch:
//!   MACs (including warp-lockstep waste), scalar CUDA-core work, DRAM
//!   read/write bytes, atomic traffic and overlap semantics.
//! * [`CostModel`] — prices a kernel on a device using a roofline with
//!   tile/wave quantization, occupancy and pipelining effects — exactly
//!   the effects the paper's evaluation hinges on (overlapped vs.
//!   sequential dataflows, mapping overhead vs. tensor-core throughput,
//!   redundant computation from warp lockstep).
//! * [`KernelTrace`] — the sequence of kernels a dataflow "launches",
//!   with per-category aggregation (mapping vs. compute vs. reduction),
//!   which is how Table 3 vs. Table 4 of the paper is reproduced.
//!
//! # Examples
//!
//! ```
//! use ts_gpusim::{CostModel, Device, KernelDesc, Precision};
//!
//! let model = CostModel::new(Device::rtx3090());
//! let gemm = KernelDesc::gemm("example", 4096, 256, 256, Precision::Fp16);
//! assert!(model.kernel_time_us(&gemm) > 0.0);
//! ```

mod cost;
mod device;
mod kernel;
mod trace;

pub use cost::{best_tile_for, gemm_dram_traffic, gemm_utilization, CostModel};
pub use device::{Arch, Device};
pub use kernel::{KernelClass, KernelDesc, Overlap, TileShape};
pub use trace::{KernelTrace, TraceEntry};

/// Numeric precision selecting which peak throughput a kernel uses
/// (re-exported from `ts-tensor`, the single definition in the workspace).
pub use ts_tensor::Precision;
