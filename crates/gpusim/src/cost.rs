//! The analytical cost model: prices [`KernelDesc`]s on a [`Device`].

use crate::{Device, KernelDesc, KernelTrace, Overlap, Precision, TileShape};

/// Fraction of peak scalar throughput achieved by irregular mapping
/// kernels (hash probes, argsort, reorder). These are latency-bound
/// pointer-chasing workloads, far from peak FLOPS.
const MAPPING_CUDA_EFF: f64 = 0.02;

/// Default utilization assumed for compute kernels without tile/shape
/// information (e.g. vendor-library GEMMs that we don't tile ourselves).
const DEFAULT_COMPUTE_UTIL: f64 = 0.70;

/// Fraction of DRAM bandwidth achievable by streaming memory kernels.
const STREAM_BW_EFF: f64 = 0.85;

/// L2 hit benefit applied to operand re-reads of a tiled GEMM.
const L2_REREAD_FACTOR: f64 = 0.30;

/// Per-SM, per-GHz latency-hiding capacity in bytes/us: how much
/// exposed-latency traffic one SM-GHz can keep in flight. Under-occupied
/// kernels' extra memory stalls scale with the SM domain (count x
/// clock), not DRAM bandwidth — which is why the paper finds halving
/// compute costs more than halving bandwidth (Section 6.3). Calibrated
/// so the RTX 3090's latency path matches its bandwidth path at nominal
/// occupancy.
const SM_LATENCY_CAPACITY: f64 = 5600.0;

/// Estimates DRAM traffic (read, write) in bytes for a tiled GEMM of
/// logical shape `m x n x k`.
///
/// Each CTA column re-reads the A operand and each CTA row re-reads the
/// B operand; re-reads beyond the first pass are discounted by the L2
/// factor. Output is written once.
pub fn gemm_dram_traffic(
    m: u64,
    n: u64,
    k: u64,
    tile: TileShape,
    precision: Precision,
) -> (u64, u64) {
    let b = precision.bytes() as u64;
    let tiles_m = m.div_ceil(tile.cta_m as u64).max(1);
    let tiles_n = n.div_ceil(tile.cta_n as u64).max(1);
    let a_first = m * k * b;
    let b_first = k * n * b;
    let a_rereads = (tiles_n - 1) * m * k * b;
    let b_rereads = (tiles_m - 1) * k * n * b;
    let read = a_first + b_first + ((a_rereads + b_rereads) as f64 * L2_REREAD_FACTOR) as u64;
    let write = m * n * b;
    (read, write)
}

/// Models the fraction of peak MAC throughput a tiled GEMM of logical
/// shape `m x n x k` achieves on `device`.
///
/// Combines four effects, all of which the paper's tile-size study
/// (Figure 8) and split-count study (Table 5) depend on:
///
/// 1. *intrinsic tile efficiency* — larger CTA tiles amortise scheduling
///    and achieve better compute/byte ratios;
/// 2. *tile quantization* — partial tiles at the m/n edges waste lanes;
/// 3. *wave quantization / occupancy* — too few CTAs leave SMs idle
///    (this is why splitting masks helps small segmentation workloads);
/// 4. *K-loop pipeline drain* — short K loops pay a startup/drain cost.
pub fn gemm_utilization(
    m: u64,
    n: u64,
    k: u64,
    tile: TileShape,
    device: &Device,
    precision: Precision,
) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 1.0;
    }
    let cta_m = tile.cta_m as u64;
    let cta_n = tile.cta_n as u64;
    let cta_k = tile.cta_k as u64;

    // 1. intrinsic efficiency from the tile area.
    let area = (tile.cta_m * tile.cta_n) as f64;
    let base = 0.97 * area / (area + 1200.0);

    // 2. tile quantization.
    let tiles_m = m.div_ceil(cta_m);
    let tiles_n = n.div_ceil(cta_n);
    let tile_quant = (m * n) as f64 / ((tiles_m * cta_m) * (tiles_n * cta_n)) as f64;

    // 3. wave quantization with an occupancy estimate. Shared memory and
    //    register pressure bound how many CTAs fit per SM.
    let smem_limit = (device.smem_kib_per_sm as u64 * 1024) / tile.smem_bytes(precision).max(1);
    let reg_limit = (256 * 256) / (cta_m * cta_n).max(1);
    let ctas_per_sm = smem_limit.min(reg_limit).clamp(1, 8);
    let slots = (device.sm_count as u64 * ctas_per_sm).max(1);
    let ctas = tiles_m * tiles_n;
    let waves = ctas.div_ceil(slots);
    let wave_quant = ctas as f64 / (waves * slots) as f64;

    // 4. pipeline drain on short K loops.
    let k_iters = k.div_ceil(cta_k).max(1);
    let k_eff = k_iters as f64 / (k_iters as f64 + tile.stages as f64);

    (base * tile_quant * wave_quant * k_eff).clamp(1e-4, 1.0)
}

/// Prices [`KernelDesc`]s on a fixed [`Device`].
///
/// # Examples
///
/// ```
/// use ts_gpusim::{CostModel, Device, KernelDesc, Precision};
///
/// let model = CostModel::new(Device::a100());
/// let big = KernelDesc::gemm("big", 1 << 16, 256, 256, Precision::Fp16);
/// let small = KernelDesc::gemm("small", 1 << 10, 256, 256, Precision::Fp16);
/// assert!(model.kernel_time_us(&big) > model.kernel_time_us(&small));
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    device: Device,
}

impl CostModel {
    /// Creates a cost model for `device`.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// The device this model prices kernels on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Time in microseconds `kernel` takes on this device, including its
    /// launch overhead.
    pub fn kernel_time_us(&self, kernel: &KernelDesc) -> f64 {
        let exec = self.exec_time_us(kernel);
        exec + kernel.launches as f64 * self.device.launch_overhead_us
    }

    /// The fraction of peak MAC throughput `kernel` achieves: its
    /// override if set, the tiled-GEMM model when shape and tile are
    /// known, the compute default otherwise. This is the "occupancy"
    /// attached to simulated-kernel trace spans.
    pub fn utilization(&self, kernel: &KernelDesc) -> f64 {
        kernel
            .util_override
            .unwrap_or_else(|| match (kernel.gemm_shape, kernel.tile) {
                (Some((m, n, k)), Some(tile)) => {
                    gemm_utilization(m, n, k, tile, &self.device, kernel.precision)
                }
                _ => DEFAULT_COMPUTE_UTIL,
            })
    }

    /// Execution time excluding launch overhead.
    fn exec_time_us(&self, kernel: &KernelDesc) -> f64 {
        let mac_time = if kernel.macs > 0 {
            let peak = self.device.peak_macs_per_us(kernel.precision);
            kernel.macs as f64 / (peak * self.utilization(kernel))
        } else {
            0.0
        };

        let cuda_time = if kernel.cuda_ops > 0 {
            kernel.cuda_ops as f64 / (self.device.cuda_ops_per_us() * MAPPING_CUDA_EFF)
        } else {
            0.0
        };

        let stream_bytes = (kernel.dram_read + kernel.dram_write) as f64;
        let atomic_bytes = kernel.atomic_write as f64 * self.device.atomic_penalty;
        let mem_time = (stream_bytes + atomic_bytes) / (self.device.bytes_per_us() * STREAM_BW_EFF);

        // Under-occupancy exposes memory latency. The exposed part is
        // hidden by SM multithreading, so it scales with SM throughput
        // (compute domain) rather than DRAM bandwidth — which is why the
        // paper finds halving compute costs more than halving bandwidth
        // (Section 6.3).
        let exposed = (kernel.latency_stretch - 1.0) * (stream_bytes + atomic_bytes)
            / (self.device.sm_count as f64 * self.device.clock_ghz * SM_LATENCY_CAPACITY);
        let mem_time = mem_time + exposed;
        let work_time = mac_time + cuda_time;
        let exec = match kernel.overlap {
            Overlap::Full => work_time.max(mem_time),
            Overlap::None => work_time + mem_time,
        };
        // Address arithmetic and boundary checks sit on the load path and
        // slow the whole kernel (Figures 20/21 measure whole-kernel gaps).
        exec * kernel.addr_overhead * kernel.ctrl_overhead
    }

    /// Prices a kernel and appends it to `trace`.
    pub fn record(&self, trace: &mut KernelTrace, kernel: KernelDesc) -> f64 {
        let t = self.kernel_time_us(&kernel);
        trace.push(kernel, t);
        t
    }

    /// Convenience: total time of a batch of kernels.
    pub fn total_time_us<'a>(&self, kernels: impl IntoIterator<Item = &'a KernelDesc>) -> f64 {
        kernels.into_iter().map(|k| self.kernel_time_us(k)).sum()
    }
}

/// Returns the best tile (and its utilization) for a GEMM shape by
/// exhaustively scanning the generator's tile search space — the
/// "idealized experiment" of Figure 8.
pub fn best_tile_for(
    m: u64,
    n: u64,
    k: u64,
    device: &Device,
    precision: Precision,
) -> (TileShape, f64) {
    TileShape::search_space()
        .into_iter()
        .map(|t| (t, gemm_utilization(m, n, k, t, device, precision)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("tile search space is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Device::rtx3090())
    }

    #[test]
    fn larger_gemm_takes_longer() {
        let m = model();
        let small = KernelDesc::gemm("s", 1024, 64, 64, Precision::Fp16);
        let large = KernelDesc::gemm("l", 65536, 256, 256, Precision::Fp16);
        assert!(m.kernel_time_us(&large) > m.kernel_time_us(&small));
    }

    #[test]
    fn fp16_faster_than_fp32_on_tensor_core_device() {
        let m = model();
        let f16 = KernelDesc::gemm("a", 65536, 256, 256, Precision::Fp16);
        let f32 = KernelDesc::gemm("b", 65536, 256, 256, Precision::Fp32);
        assert!(m.kernel_time_us(&f16) < m.kernel_time_us(&f32));
    }

    #[test]
    fn overlap_hides_memory_time() {
        let m = model();
        let over = KernelDesc::gemm("o", 32768, 256, 256, Precision::Fp16);
        let mut seq = over.clone();
        seq.overlap = Overlap::None;
        assert!(m.kernel_time_us(&seq) > m.kernel_time_us(&over));
    }

    #[test]
    fn launch_overhead_scales_with_launches() {
        let m = model();
        let one = KernelDesc::mapping("m", 1000, 1000);
        let many = one.clone().with_launches(27);
        let delta = m.kernel_time_us(&many) - m.kernel_time_us(&one);
        let expected = 26.0 * m.device().launch_overhead_us;
        assert!((delta - expected).abs() < 1e-9, "delta = {delta}");
    }

    #[test]
    fn atomic_writes_cost_more_than_plain_writes() {
        let m = model();
        let plain = KernelDesc::memory("p", 0, 1 << 24);
        let atomic = KernelDesc::memory("a", 0, 0).with_atomic_write(1 << 24);
        assert!(m.kernel_time_us(&atomic) > m.kernel_time_us(&plain));
    }

    #[test]
    fn addr_and_ctrl_overheads_multiply_compute() {
        let m = model();
        let base = KernelDesc::gemm("b", 1 << 20, 256, 256, Precision::Fp16);
        let slowed = base.clone().with_addr_overhead(1.7).with_ctrl_overhead(1.3);
        let t0 = m.kernel_time_us(&base);
        let t1 = m.kernel_time_us(&slowed);
        assert!(t1 > t0 * 1.5, "t0={t0} t1={t1}");
    }

    #[test]
    fn utilization_in_unit_range() {
        let d = Device::rtx3090();
        for tile in TileShape::search_space() {
            for &(m, n, k) in &[(1, 1, 1), (100, 64, 1728), (65536, 256, 6912), (37, 3, 5)] {
                let u = gemm_utilization(m, n, k, tile, &d, Precision::Fp16);
                assert!((0.0..=1.0).contains(&u), "u = {u} for tile {tile}");
            }
        }
    }

    #[test]
    fn bigger_tiles_win_on_big_workloads_small_tiles_on_small() {
        let d = Device::rtx3090();
        let big_big = gemm_utilization(1 << 17, 256, 1728, TileShape::large(), &d, Precision::Fp16);
        let big_small = gemm_utilization(
            1 << 17,
            256,
            1728,
            TileShape::new(32, 32, 16),
            &d,
            Precision::Fp16,
        );
        assert!(big_big > big_small);

        let small_small = gemm_utilization(
            2000,
            64,
            576,
            TileShape::new(32, 64, 32),
            &d,
            Precision::Fp16,
        );
        let small_big = gemm_utilization(2000, 64, 576, TileShape::large(), &d, Precision::Fp16);
        assert!(small_small > small_big, "{small_small} vs {small_big}");
    }

    #[test]
    fn wave_quantization_rewards_more_parallelism() {
        // Few CTAs -> low utilization; doubling rows (like mask splits
        // doubling parallelism) should raise utilization.
        let d = Device::rtx3090();
        let t = TileShape::new(64, 64, 32);
        let low = gemm_utilization(1000, 64, 1728, t, &d, Precision::Fp32);
        let high = gemm_utilization(8000, 64, 1728, t, &d, Precision::Fp32);
        assert!(high > low);
    }

    #[test]
    fn best_tile_beats_fixed_default_somewhere() {
        let d = Device::rtx3090();
        let (_, best) = best_tile_for(2000, 64, 576, &d, Precision::Fp16);
        let fixed = gemm_utilization(2000, 64, 576, TileShape::large(), &d, Precision::Fp16);
        assert!(best >= fixed);
    }

    #[test]
    fn traffic_grows_with_shape() {
        let t = TileShape::large();
        let (r1, w1) = gemm_dram_traffic(1000, 64, 64, t, Precision::Fp16);
        let (r2, w2) = gemm_dram_traffic(2000, 128, 64, t, Precision::Fp16);
        assert!(r2 > r1);
        assert!(w2 > w1);
    }

    #[test]
    fn halved_bandwidth_slows_memory_bound_kernel() {
        let d = Device::rtx3090();
        let slow = CostModel::new(d.with_bandwidth_scale(0.5));
        let fast = CostModel::new(d);
        let k = KernelDesc::memory("m", 1 << 26, 1 << 26);
        assert!(slow.kernel_time_us(&k) > fast.kernel_time_us(&k) * 1.8);
    }
}
