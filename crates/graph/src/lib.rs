//! Relational graph convolution (R-GCN) on the TorchSparse++ engine,
//! plus execution models of DGL, PyG and Graphiler (Figure 16).
//!
//! The paper observes that relational graph convolution has the same
//! computation pattern as sparse convolution: relations play the role of
//! kernel offsets, and the per-relation edge lists are exactly
//! weight-stationary kernel maps. TorchSparse++ therefore runs R-GCN
//! through its fused sparse-conv kernels, avoiding the per-relation
//! kernel launches and edge-message materialisation that dominate graph
//! frameworks — yielding the paper's 2.6–7.6x speedups and 3.4–5.6x
//! memory savings.
//!
//! # Examples
//!
//! ```
//! use ts_graph::{graph_to_map, RgcnModel};
//! use ts_workloads::graphs::HeteroGraph;
//!
//! let g = HeteroGraph::generate("tiny", 100, 4, 500, 1);
//! let map = graph_to_map(&g, true);
//! assert_eq!(map.kernel_volume(), 5); // 4 relations + self-loop
//! let model = RgcnModel::new(&g, 16, 16, 4, 7);
//! assert_eq!(model.layer_count(), 2);
//! ```

mod rgcn;
mod systems;

pub use rgcn::{graph_to_map, RgcnModel};
pub use systems::{GraphRunReport, GraphSystem, ALL_GRAPH_SYSTEMS};
