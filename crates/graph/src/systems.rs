//! Execution models of the graph deep-learning systems of Figure 16.
//!
//! The latency gap the paper measures comes from three structural
//! sources, all modelled here from the same graphs and cost model:
//!
//! 1. **kernel-launch count** — DGL and PyG loop over relations in
//!    Python, launching gather/GEMM/scatter per relation with framework
//!    dispatch overhead on every operator;
//! 2. **edge-message materialisation** — message-passing frameworks
//!    write per-edge message tensors to DRAM (and hold them for
//!    autograd), which TorchSparse++'s fused kernels never create;
//! 3. **compiled but unfused** — Graphiler removes the Python overhead
//!    but still materialises messages and cannot fuse across the
//!    gather/GEMM/scatter boundary.

use serde::{Deserialize, Serialize};

use ts_dataflow::{forward_trace, prepare, DataflowConfig, ExecCtx};
use ts_gpusim::{Device, KernelDesc, Precision};
use ts_workloads::graphs::HeteroGraph;

use crate::RgcnModel;

/// Per-operator host/framework dispatch overhead in microseconds.
const DGL_FRAMEWORK_US: f64 = 10.0;
const PYG_FRAMEWORK_US: f64 = 15.0;
const GRAPHILER_FRAMEWORK_US: f64 = 4.0;

/// A graph deep-learning system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphSystem {
    /// Deep Graph Library: per-relation Python loop.
    Dgl,
    /// PyTorch Geometric: edge-wise message materialisation.
    Pyg,
    /// Graphiler: compiled message-passing data flow graph.
    Graphiler,
    /// TorchSparse++ running R-GCN through fused sparse-conv kernels.
    TorchSparsePP,
}

/// All systems in the paper's comparison order.
pub const ALL_GRAPH_SYSTEMS: [GraphSystem; 4] = [
    GraphSystem::Dgl,
    GraphSystem::Pyg,
    GraphSystem::Graphiler,
    GraphSystem::TorchSparsePP,
];

/// Result of simulating one R-GCN inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphRunReport {
    /// End-to-end latency in microseconds.
    pub latency_us: f64,
    /// Peak DRAM footprint in bytes (features + materialised buffers +
    /// graph structure).
    pub peak_bytes: u64,
}

impl GraphSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GraphSystem::Dgl => "DGL",
            GraphSystem::Pyg => "PyG",
            GraphSystem::Graphiler => "Graphiler",
            GraphSystem::TorchSparsePP => "TorchSparse++",
        }
    }

    /// Simulates one inference of `model` on `device`.
    pub fn run(self, graph: &HeteroGraph, model: &RgcnModel, device: Device) -> GraphRunReport {
        let ctx = ExecCtx::simulate(device, Precision::Fp16);
        let map = model.map();
        let e = map.total_pairs();
        let n = graph.n_nodes as u64;
        let elem = 2u64; // fp16 bytes

        // Feature storage common to everyone: input + both layer outputs
        // + weights.
        let dims = model.layer_dims();
        let feat_bytes: u64 = dims
            .iter()
            .map(|&(ci, co)| n * (ci + co) as u64 * elem)
            .sum::<u64>();
        let weight_bytes: u64 = dims
            .iter()
            .map(|&(ci, co)| (map.kernel_volume() * ci * co) as u64 * elem)
            .sum();
        // Graph structure in COO form.
        let structure_bytes = e * 8;

        match self {
            GraphSystem::TorchSparsePP => {
                // Tuned between the two fused dataflows; mapping cost
                // (edge sort by relation) charged once.
                let mut best = f64::INFINITY;
                for cfg in [
                    DataflowConfig::fetch_on_demand(true),
                    DataflowConfig::gather_scatter(true),
                ] {
                    let prep = prepare(map, &cfg, &ctx);
                    let mut t = prep.trace.total_us();
                    for &(ci, co) in &dims {
                        t += forward_trace(ci, co, map, &prep, &cfg, &ctx).total_us();
                    }
                    best = best.min(t);
                }
                GraphRunReport {
                    latency_us: best,
                    peak_bytes: feat_bytes + weight_bytes + structure_bytes,
                }
            }
            GraphSystem::Dgl | GraphSystem::Pyg | GraphSystem::Graphiler => {
                let (framework_us, fused_memops, message_copies) = match self {
                    GraphSystem::Dgl => (DGL_FRAMEWORK_US, false, 2),
                    GraphSystem::Pyg => (PYG_FRAMEWORK_US, true, 2),
                    GraphSystem::Graphiler => (GRAPHILER_FRAMEWORK_US, true, 1),
                    GraphSystem::TorchSparsePP => unreachable!(),
                };
                let cfg = DataflowConfig::gather_scatter(fused_memops);
                let prep = prepare(map, &cfg, &ctx);
                let mut trace = prep.trace.clone();
                for &(ci, co) in &dims {
                    trace.merge(forward_trace(ci, co, map, &prep, &cfg, &ctx));
                    // Message-passing frameworks materialise per-edge
                    // message tensors (an extra DRAM round-trip per
                    // copy beyond the gather buffers already counted).
                    for copy in 0..message_copies - 1 {
                        let msg = KernelDesc::memory(
                            format!("edge-messages[{copy}]"),
                            e * co as u64 * elem,
                            e * co as u64 * elem,
                        );
                        ctx.record(&mut trace, msg);
                    }
                }
                let latency_us = trace.total_us() + framework_us * trace.launch_count() as f64;

                // Peak memory: gather buffers + materialised messages,
                // held simultaneously for autograd.
                let max_c = dims.iter().map(|&(ci, co)| ci.max(co)).max().unwrap_or(0) as u64;
                let buffers = e * max_c * elem * (1 + message_copies as u64);
                GraphRunReport {
                    latency_us,
                    peak_bytes: feat_bytes + weight_bytes + structure_bytes + buffers,
                }
            }
        }
    }

    /// Convenience: latency-only.
    pub fn latency_us(self, graph: &HeteroGraph, model: &RgcnModel, device: Device) -> f64 {
        self.run(graph, model, device).latency_us
    }
}

impl std::fmt::Display for GraphSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (HeteroGraph, RgcnModel) {
        let g = HeteroGraph::mutag(3);
        let m = RgcnModel::new(&g, 64, 64, 8, 5);
        (g, m)
    }

    #[test]
    fn tspp_beats_all_frameworks() {
        let (g, m) = setup();
        let d = Device::rtx3090();
        let ours = GraphSystem::TorchSparsePP.latency_us(&g, &m, d.clone());
        for sys in [GraphSystem::Dgl, GraphSystem::Pyg, GraphSystem::Graphiler] {
            let theirs = sys.latency_us(&g, &m, d.clone());
            let speedup = theirs / ours;
            assert!(
                speedup > 1.5,
                "{}: speedup only {speedup:.2} ({theirs:.0} vs {ours:.0} us)",
                sys.name()
            );
        }
    }

    #[test]
    fn dgl_is_the_slowest_on_many_relations() {
        // DGL's per-relation Python loop scales worst with relation
        // count (the paper's 7.6x worst case).
        let (g, m) = setup();
        let d = Device::rtx3090();
        let dgl = GraphSystem::Dgl.latency_us(&g, &m, d.clone());
        let pyg = GraphSystem::Pyg.latency_us(&g, &m, d.clone());
        let graphiler = GraphSystem::Graphiler.latency_us(&g, &m, d);
        assert!(dgl > pyg);
        assert!(dgl > graphiler);
    }

    #[test]
    fn memory_savings_in_paper_band() {
        let (g, m) = setup();
        let d = Device::rtx3090();
        let ours = GraphSystem::TorchSparsePP.run(&g, &m, d.clone()).peak_bytes as f64;
        for sys in [GraphSystem::Dgl, GraphSystem::Pyg, GraphSystem::Graphiler] {
            let theirs = sys.run(&g, &m, d.clone()).peak_bytes as f64;
            let ratio = theirs / ours;
            assert!(
                (1.5..12.0).contains(&ratio),
                "{}: memory ratio {ratio:.2}",
                sys.name()
            );
        }
    }

    #[test]
    fn speedups_hold_across_the_suite() {
        let d = Device::rtx3090();
        for g in HeteroGraph::paper_suite(1) {
            let m = RgcnModel::new(&g, 32, 32, 8, 9);
            let ours = GraphSystem::TorchSparsePP.latency_us(&g, &m, d.clone());
            let dgl = GraphSystem::Dgl.latency_us(&g, &m, d.clone());
            assert!(dgl / ours > 1.5, "{}: only {:.2}x", g.name, dgl / ours);
        }
    }
}
