//! R-GCN layers expressed as relational kernel maps.

use ts_dataflow::{forward, ConvWeights, DataflowConfig, ExecCtx};
use ts_gpusim::KernelTrace;
use ts_kernelmap::KernelMap;
use ts_tensor::{relu, rng_from_seed, Matrix};
use ts_workloads::graphs::HeteroGraph;

/// Converts a heterogeneous graph to a relational kernel map: relation
/// `r`'s edge list becomes the weight-stationary pair list of "offset"
/// `r`; an optional self-loop relation is appended (standard R-GCN).
pub fn graph_to_map(graph: &HeteroGraph, self_loop: bool) -> KernelMap {
    let mut pairs: Vec<Vec<(u32, u32)>> = graph.edges.clone();
    if self_loop {
        pairs.push((0..graph.n_nodes as u32).map(|i| (i, i)).collect());
    }
    KernelMap::from_relational_pairs(graph.n_nodes, graph.n_nodes, pairs)
}

/// A two-layer R-GCN model (the standard entity-classification
/// configuration benchmarked by DGL/PyG/Graphiler):
/// `in -> hidden (ReLU) -> out`.
#[derive(Debug, Clone)]
pub struct RgcnModel {
    map: KernelMap,
    layers: Vec<ConvWeights>,
}

impl RgcnModel {
    /// Builds the model with Xavier-initialised per-relation weights.
    pub fn new(
        graph: &HeteroGraph,
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        let map = graph_to_map(graph, true);
        let kvol = map.kernel_volume();
        let mut rng = rng_from_seed(seed);
        let layers = vec![
            ConvWeights::random(&mut rng, kvol, in_dim, hidden_dim),
            ConvWeights::random(&mut rng, kvol, hidden_dim, out_dim),
        ];
        Self { map, layers }
    }

    /// Number of layers (always 2 in the benchmark configuration).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The relational kernel map.
    pub fn map(&self) -> &KernelMap {
        &self.map
    }

    /// Layer weight dimensions `(c_in, c_out)` per layer.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        self.layers.iter().map(|w| (w.c_in(), w.c_out())).collect()
    }

    /// Runs the model functionally (when `ctx.functional`) through the
    /// given dataflow, returning output features and the kernel trace of
    /// *compute* work (mapping cost is charged by the system models).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of rows or channels.
    pub fn forward(
        &self,
        x: &Matrix,
        cfg: &DataflowConfig,
        ctx: &ExecCtx,
    ) -> (Option<Matrix>, KernelTrace) {
        assert_eq!(x.rows(), self.map.n_in(), "one feature row per node");
        let mut trace = KernelTrace::new();
        let mut feats = ctx.functional.then(|| x.clone());
        for (i, w) in self.layers.iter().enumerate() {
            let input = feats
                .clone()
                .unwrap_or_else(|| Matrix::zeros(self.map.n_in(), w.c_in()));
            let out = forward(&input, w, &self.map, cfg, ctx);
            trace.merge(out.trace);
            feats = out.features.map(|mut f| {
                if i + 1 < self.layers.len() {
                    relu(&mut f);
                }
                f
            });
        }
        (feats, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_dataflow::reference_forward;
    use ts_gpusim::Device;
    use ts_tensor::{uniform_matrix, Precision};

    fn tiny() -> (HeteroGraph, Matrix) {
        let g = HeteroGraph::generate("t", 50, 3, 200, 11);
        let x = uniform_matrix(&mut rng_from_seed(1), 50, 8, -1.0, 1.0);
        (g, x)
    }

    #[test]
    fn map_includes_self_loop() {
        let (g, _) = tiny();
        let with = graph_to_map(&g, true);
        let without = graph_to_map(&g, false);
        assert_eq!(with.kernel_volume(), 4);
        assert_eq!(without.kernel_volume(), 3);
        assert_eq!(with.total_pairs(), without.total_pairs() + 50);
        assert!(!with.has_dense_repr());
    }

    #[test]
    fn forward_matches_reference_per_layer() {
        let (g, x) = tiny();
        let model = RgcnModel::new(&g, 8, 6, 4, 3);
        let ctx = ExecCtx::functional(Device::a100(), Precision::Fp32);
        let cfg = DataflowConfig::gather_scatter(true);
        let (out, _) = model.forward(&x, &cfg, &ctx);
        // Recompute by hand: layer1 + relu + layer2.
        let mut h = reference_forward(&x, &model.layers[0], model.map());
        relu(&mut h);
        let expected = reference_forward(&h, &model.layers[1], model.map());
        assert!(out.unwrap().approx_eq(&expected, 1e-3));
    }

    #[test]
    fn gather_scatter_and_fod_agree_on_graphs() {
        let (g, x) = tiny();
        let model = RgcnModel::new(&g, 8, 6, 4, 3);
        let ctx = ExecCtx::functional(Device::a100(), Precision::Fp32);
        let (a, _) = model.forward(&x, &DataflowConfig::gather_scatter(false), &ctx);
        let (b, _) = model.forward(&x, &DataflowConfig::fetch_on_demand(true), &ctx);
        assert!(a.unwrap().approx_eq(&b.unwrap(), 1e-3));
    }

    #[test]
    fn trace_has_work_for_both_layers() {
        let (g, x) = tiny();
        let model = RgcnModel::new(&g, 8, 6, 4, 3);
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        let (out, trace) = model.forward(&x, &DataflowConfig::fetch_on_demand(true), &ctx);
        assert!(out.is_none());
        assert!(trace.total_us() > 0.0);
        assert!(trace.total_macs() >= model.map().total_pairs() * (8 * 6 + 6 * 4) as u64);
    }
}
