//! `ts-trace`: the observability spine of the TorchSparse++ reproduction.
//!
//! TorchSparse++ is a profiling-driven design: the Sparse Autotuner works
//! *because* end-to-end latency can be attributed to per-group kernel
//! choices, and the paper's evaluation (Figs. 14–23) is built on
//! per-kernel-class breakdowns. This crate gives every subsystem one
//! shared vocabulary for that attribution:
//!
//! * **Spans** — RAII guards ([`span()`] / [`span!`]) timed on the
//!   monotonic clock, parented through a thread-local span stack, carrying
//!   typed arguments. Guards close on drop, so panics and early returns
//!   cannot leak an open span.
//! * **Counters / gauges** — a typed registry with saturating adds, named
//!   by the `subsystem.noun.verb` convention (e.g.
//!   `core.prepare_cache.hit`).
//! * **Simulated timelines** — the GPU model prices kernels in simulated
//!   microseconds, not wall time; [`sim_kernel`] lays those out on
//!   per-thread virtual lanes with a monotone cursor so they render as a
//!   GPU timeline next to the wall-clock spans.
//! * **Exporters** — a human-readable aggregated tree
//!   ([`Tracer::summary`]) and Chrome trace-event JSON
//!   ([`Tracer::chrome_trace_json`]) loadable in Perfetto /
//!   `chrome://tracing` (`pid` = subsystem, `tid` = worker or virtual
//!   lane).
//!
//! # Activation model
//!
//! There is no process-global collector. A [`Tracer`] is installed into
//! the *current thread* with [`install`]; threads you spawn inherit
//! nothing — pass a clone and call [`install`] (or [`install_opt`])
//! inside the thread, which is exactly what `ts-serve` workers and the
//! autotuner's sweep threads do. With no tracer installed every
//! instrumentation site is one thread-local flag check.
//!
//! Compiling with `default-features = false` (feature `enabled` off)
//! replaces the entire API with inline no-ops.
//!
//! # Counter vocabulary
//!
//! Counters are named `subsystem.noun.verb` so they sort into stable
//! per-subsystem groups in summaries and Chrome-trace tracks. The
//! names currently emitted by the workspace:
//!
//! | Counter | Meaning |
//! |---|---|
//! | `kernelgen.kernels.generated` | Kernels emitted by the Sparse Kernel Generator |
//! | `core.prepare_cache.hit` / `.miss` | Per-layer prepared-kernel-map reuse in the engine |
//! | `core.schedule.artifact_rejected` | Lenient schedule load rejected the whole artifact (fallback dataflow everywhere) |
//! | `core.stream.entered` / `.exited` / `.frames` | Streaming-session lifecycle and frames served |
//! | `core.stream.patched` / `.rebuilt` | Incremental kernel-map updates: in-place patch vs full rebuild |
//! | `autotune.rounds.completed` / `.groups.tuned` / `.candidates.swept` | Sparse Autotuner progress |
//! | `serve.requests.completed` / `.rejected_queue_full` / `.requeued` | Request lifecycle at the server boundary |
//! | `serve.requests.shed_deadline` / `.shed_crashed` / `.shed_halt` | Requests shed with a typed rejection: deadline expiry, requeue budget exhausted, server halt |
//! | `serve.frames.rejected` | Frames refused at admission (malformed input) |
//! | `serve.deadline.missed` | Completions later than their deadline |
//! | `serve.batches.dispatched` / `.executed` | Dynamic batches sent to, and finished by, the worker pool |
//! | `serve.workers.panicked` / `.stalled` / `.restarted` | Supervisor observations of the worker pool |
//! | `serve.chaos.injected_panic` / `.injected_stall` | Faults injected by an armed `FaultPlan` (ts-serve, feature `chaos` only) |
//! | `serve.schedule.downgraded` | Schedule downgrades carried by the engine a server booted from |
//! | `serve.map_cache.hit` / `.miss` / `.patched` / `.rebuilt` | Per-stream map-cache lookups and how hits resolved |
//! | `serve.map_cache.entered` / `.exited` / `.evicted` / `.invalidated` | Map-cache entry lifecycle |
//! | `serve.map_cache.disabled_degraded` | Map reuse disabled because the engine booted degraded |
//! | `fleet.requests.routed` / `.affinity` / `.hashed` / `.spilled` | Fleet router placement decisions |
//! | `fleet.requests.rejected_no_capacity` | Requests refused because no node was alive |
//! | `fleet.streams.re_homed` / `.migrated` | Streams whose affinity home moved: after a node death, or off a persistently overloaded node |
//! | `fleet.nodes.killed` / `.restarted` | Whole-node chaos lifecycle events |
//! | `obs.alerts.page_tripped` / `.page_cleared` | SLO fast-window (PageWorthy) burn-rate alert edges |
//! | `obs.alerts.warn_tripped` / `.warn_cleared` | SLO slow-window (Warning) burn-rate alert edges |
//! | `obs.snapshots.exported` | Live `HealthSnapshot` expositions taken |
//! | `obs.postmortem.dumped` | Flight-recorder post-mortems written |
//! | `cache.hit` / `.miss` / `.warm_start` | Schedule-cache lookups: exact digest match, nothing compatible, nearest-neighbor transfer |
//! | `cache.retuned_groups` | Groups scheduled for re-tuning across warm starts (drifted past policy or repaired by the sanitizer) |
//! | `cache.inserted` / `.evicted` | Schedule-cache entry lifecycle |
//! | `cache.rejected` | On-disk entries skipped at open (unparsable, or digest mismatched the file name) |
//! | `cache.train.hit` / `.miss` / `.warm_start` / `.inserted` | Training-schedule cache lookups and write-backs (keyed by content digest + binding scheme) |
//! | `train.steps.completed` / `.skipped_overflow` | Training steps applied vs skipped by the loss scaler's overflow check |
//! | `train.microbatches.executed` | Micro-batch forward+backward executions (gradient accumulation) |
//! | `train.map.patched` / `.rebuilt` | Step-plan kernel-map maintenance across temporally coherent steps |
//! | `train.plan.compiled` | Fused step plans compiled (tune + session build epochs) |
//!
//! Gauges follow the same convention (e.g. `autotune.speedup`).
#![warn(missing_docs)]

use std::fmt;

/// The instrumented subsystems. Each maps to one Chrome-trace `pid` so a
/// trace opens as labelled process tracks, one per subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// Sparse Kernel Generator: codegen and hoisting/padding decisions.
    Kernelgen,
    /// Simulated GPU: each priced kernel, on a virtual timeline.
    Gpusim,
    /// Engine / Session: compilation, simulation, prepare cache.
    Core,
    /// Sparse Autotuner: greedy per-group rounds.
    Autotune,
    /// Dynamic-batching server: per-request span trees.
    Serve,
    /// Multi-node serving fleet: routing, re-homing, node lifecycle.
    Fleet,
    /// Anything else (examples, tests, applications).
    App,
    /// Live telemetry (ts-obs): SLO alerts, snapshots, post-mortems.
    Obs,
    /// Content-addressed schedule cache (ts-cache): hits, warm
    /// transfers, evictions.
    Cache,
    /// Training harness (ts-train): fused step pipeline, binding
    /// policy, loss scaling, gradient accumulation.
    Train,
}

impl Subsystem {
    /// Every subsystem, in `pid` order.
    pub const ALL: [Subsystem; 10] = [
        Subsystem::Kernelgen,
        Subsystem::Gpusim,
        Subsystem::Core,
        Subsystem::Autotune,
        Subsystem::Serve,
        Subsystem::Fleet,
        Subsystem::App,
        Subsystem::Obs,
        Subsystem::Cache,
        Subsystem::Train,
    ];

    /// Chrome-trace process id (stable across runs).
    pub fn pid(self) -> u64 {
        match self {
            Subsystem::Kernelgen => 1,
            Subsystem::Gpusim => 2,
            Subsystem::Core => 3,
            Subsystem::Autotune => 4,
            Subsystem::Serve => 5,
            Subsystem::Fleet => 6,
            Subsystem::App => 7,
            Subsystem::Obs => 8,
            Subsystem::Cache => 9,
            Subsystem::Train => 10,
        }
    }

    /// Lower-case label; also the leading component of counter names.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Kernelgen => "kernelgen",
            Subsystem::Gpusim => "gpusim",
            Subsystem::Core => "core",
            Subsystem::Autotune => "autotune",
            Subsystem::Serve => "serve",
            Subsystem::Fleet => "fleet",
            Subsystem::App => "app",
            Subsystem::Obs => "obs",
            Subsystem::Cache => "cache",
            Subsystem::Train => "train",
        }
    }

    /// Maps a `subsystem.noun.verb` counter name back to its subsystem
    /// (used to place counter tracks under the right process).
    pub fn from_counter_name(name: &str) -> Subsystem {
        let prefix = name.split('.').next().unwrap_or("");
        Subsystem::ALL
            .into_iter()
            .find(|s| s.label() == prefix)
            .unwrap_or(Subsystem::App)
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An observer invoked (synchronously, after the registry update) on
/// every [`Tracer::counter_add`], installed with
/// [`Tracer::set_counter_hook`]. `ts-obs` uses this to mirror fault
/// counters (e.g. chaos injections emitted deep inside worker threads)
/// into its flight recorder without threading a handle through every
/// call site. Hooks must be cheap and must not re-enter the tracer's
/// counter API.
pub type CounterHook = std::sync::Arc<dyn Fn(&str, i64) + Send + Sync>;

/// A typed span-argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point (non-finite values export as `0`).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (kernel names, config summaries).
    Str(String),
}

impl ArgValue {
    /// JSON rendering of the value alone.
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::I64(v) => v.to_string(),
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) if v.is_finite() => format!("{v}"),
            ArgValue::F64(_) => "0".to_string(),
            ArgValue::Bool(v) => v.to_string(),
            ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v:.3}"),
            ArgValue::Bool(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! arg_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for ArgValue {
            fn from(v: $t) -> Self {
                ArgValue::$variant(v as $conv)
            }
        })*
    };
}

arg_from!(
    i64 => I64 as i64,
    i32 => I64 as i64,
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Opens a span: `span!(Subsystem::Core, "simulate", groups = 13)`.
///
/// Arguments are `key = value` pairs (any [`ArgValue`] conversion) or
/// bare identifiers (`span!(sub, "gemm", cta_m, split)` records local
/// variables under their own names). Arguments are only evaluated when a
/// tracer is installed. The span closes when the returned guard drops.
#[macro_export]
macro_rules! span {
    ($sub:expr, $name:expr $(,)?) => {
        $crate::span($sub, $name)
    };
    ($sub:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        let mut guard = $crate::span($sub, $name);
        if guard.active() {
            $(guard.arg(stringify!($k), $v);)+
        }
        guard
    }};
    ($sub:expr, $name:expr, $($k:ident),+ $(,)?) => {{
        let mut guard = $crate::span($sub, $name);
        if guard.active() {
            $(guard.arg(stringify!($k), $k);)+
        }
        guard
    }};
}

#[cfg(feature = "enabled")]
mod export;
#[cfg(feature = "enabled")]
mod real;
#[cfg(feature = "enabled")]
pub use real::{
    active, counter_add, current, gauge_set, install, install_opt, record_span_at, sim_kernel,
    sim_span, span, suppress_sim_kernels, uninstall, Lane, SimKernelSuppression, SpanGuard,
    SpanRecord, Tracer,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    active, counter_add, current, gauge_set, install, install_opt, record_span_at, sim_kernel,
    sim_span, span, suppress_sim_kernels, uninstall, Lane, SimKernelSuppression, SpanGuard,
    SpanRecord, Tracer,
};
