//! Exporters: Chrome trace-event JSON and the aggregated tree summary.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::real::{Event, LaneId, SpanRecord, Tracer};
use crate::{escape_json, ArgValue, Subsystem};

/// Offset applied to named-lane indices so virtual lanes never collide
/// with real thread tids.
const NAMED_LANE_TID_BASE: u64 = 1000;

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn args_json(args: &[(String, ArgValue)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", escape_json(k), v.to_json());
    }
    s.push('}');
    s
}

struct ChromeEvent {
    ts: f64,
    seq: usize,
    json: String,
}

impl Tracer {
    /// Serializes the trace as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`:
    ///
    /// * `pid` = subsystem ([`Subsystem::pid`]), labelled with
    ///   `process_name` metadata;
    /// * `tid` = recording thread, or `1000 + lane` for virtual lanes
    ///   (simulated GPU timelines, per-request tracks), labelled with
    ///   `thread_name` metadata;
    /// * guard spans export as `B`/`E` pairs (a still-open span gets a
    ///   synthetic `E` at the latest observed timestamp, so every `B`
    ///   has an `E`);
    /// * simulated/explicit spans export as `X` complete events;
    /// * counters export as one `C` sample at the end of the trace.
    ///
    /// Events are stably sorted by timestamp, so `ts` is monotone per
    /// `tid`.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.snapshot_events();
        let lanes = self.lanes_snapshot();
        let thread_names = self.thread_names();
        let counters = self.counters();
        let lane_tid = |l: LaneId| NAMED_LANE_TID_BASE + l.0 as u64;

        let mut max_ts = 0.0f64;
        for ev in &events {
            match ev {
                Event::Begin { ts_us, .. } | Event::End { ts_us, .. } => {
                    max_ts = max_ts.max(*ts_us);
                }
                Event::Complete { ts_us, dur_us, .. } => {
                    max_ts = max_ts.max(ts_us + dur_us);
                }
            }
        }

        // Which Begin ids never saw an End (need a synthetic close).
        let mut open: BTreeMap<u64, (Subsystem, u64)> = BTreeMap::new();
        for ev in &events {
            match ev {
                Event::Begin {
                    id, subsystem, tid, ..
                } => {
                    open.insert(*id, (*subsystem, *tid));
                }
                Event::End { id, .. } => {
                    open.remove(id);
                }
                Event::Complete { .. } => {}
            }
        }

        let mut out: Vec<ChromeEvent> = Vec::with_capacity(events.len() + 16);
        let mut tracks: BTreeSet<(u64, u64, String)> = BTreeSet::new();
        let mut seq = 0usize;
        let track = |tracks: &mut BTreeSet<(u64, u64, String)>, pid: u64, tid: u64| {
            let name = if tid >= NAMED_LANE_TID_BASE {
                lanes
                    .get((tid - NAMED_LANE_TID_BASE) as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("lane-{tid}"))
            } else {
                thread_names
                    .get(&tid)
                    .cloned()
                    .unwrap_or_else(|| format!("thread-{tid}"))
            };
            tracks.insert((pid, tid, name));
        };

        for ev in &events {
            let (ts, json) = match ev {
                Event::Begin {
                    id,
                    subsystem,
                    name,
                    tid,
                    ts_us,
                    ..
                } => {
                    track(&mut tracks, subsystem.pid(), *tid);
                    (
                        *ts_us,
                        format!(
                            "{{\"ph\":\"B\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"span_id\":{id}}}}}",
                            subsystem.pid(),
                            fmt_num(*ts_us),
                            escape_json(name),
                            subsystem.label(),
                        ),
                    )
                }
                Event::End {
                    subsystem,
                    tid,
                    ts_us,
                    args,
                    ..
                } => {
                    track(&mut tracks, subsystem.pid(), *tid);
                    (
                        *ts_us,
                        format!(
                            "{{\"ph\":\"E\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"args\":{}}}",
                            subsystem.pid(),
                            fmt_num(*ts_us),
                            args_json(args),
                        ),
                    )
                }
                Event::Complete {
                    id,
                    subsystem,
                    name,
                    lane,
                    ts_us,
                    dur_us,
                    args,
                    ..
                } => {
                    let tid = lane_tid(*lane);
                    track(&mut tracks, subsystem.pid(), tid);
                    let mut all_args = args.clone();
                    all_args.push(("span_id".to_string(), ArgValue::U64(*id)));
                    (
                        *ts_us,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
                            subsystem.pid(),
                            fmt_num(*ts_us),
                            fmt_num(*dur_us),
                            escape_json(name),
                            subsystem.label(),
                            args_json(&all_args),
                        ),
                    )
                }
            };
            out.push(ChromeEvent { ts, seq, json });
            seq += 1;
        }

        // Synthetic closes for spans still open at export time.
        for (_, (subsystem, tid)) in open {
            track(&mut tracks, subsystem.pid(), tid);
            out.push(ChromeEvent {
                ts: max_ts,
                seq,
                json: format!(
                    "{{\"ph\":\"E\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"args\":{{}}}}",
                    subsystem.pid(),
                    fmt_num(max_ts),
                ),
            });
            seq += 1;
        }

        // Counters: one sample each at the end of the trace.
        for (name, value) in &counters {
            let pid = Subsystem::from_counter_name(name).pid();
            out.push(ChromeEvent {
                ts: max_ts,
                seq,
                json: format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{value}}}}}",
                    fmt_num(max_ts),
                    escape_json(name),
                ),
            });
            seq += 1;
        }

        // Stable sort: per-tid push order is event order, so equal
        // timestamps keep B-before-E and child-before-parent closes.
        out.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.seq.cmp(&b.seq)));

        let mut s = String::from("{\"traceEvents\":[");
        let mut first = true;
        // Metadata first (metadata events carry no timestamps).
        let mut pids: BTreeSet<u64> = tracks.iter().map(|(pid, _, _)| *pid).collect();
        pids.extend(
            counters
                .iter()
                .map(|(n, _)| Subsystem::from_counter_name(n).pid()),
        );
        for sub in Subsystem::ALL {
            if !pids.contains(&sub.pid()) {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                sub.pid(),
                sub.label()
            );
        }
        for (pid, tid, name) in &tracks {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            );
        }
        for ev in &out {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&ev.json);
        }
        s.push_str("]}");
        s
    }

    /// Writes [`Tracer::chrome_trace_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// A human-readable aggregated span tree: spans sharing a name under
    /// the same parent chain are merged (`×count`, summed duration),
    /// grouped by subsystem, followed by the counter and gauge
    /// registries.
    pub fn summary(&self) -> String {
        let spans = self.spans();
        let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: HashMap<Option<u64>, Vec<usize>> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            // A dangling parent id (e.g. filtered out) makes the span a root.
            let parent = s.parent.filter(|p| by_id.contains_key(p));
            children.entry(parent).or_default().push(i);
        }

        let mut s = String::from("trace summary\n");
        for sub in Subsystem::ALL {
            let roots: Vec<usize> = children
                .get(&None)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&i| spans[i].subsystem == sub)
                        .collect()
                })
                .unwrap_or_default();
            if roots.is_empty() {
                continue;
            }
            let _ = writeln!(s, "[{}]", sub.label());
            render_level(&mut s, &spans, &children, &roots, 1);
        }
        let counters = self.counters();
        if !counters.is_empty() {
            s.push_str("[counters]\n");
            for (name, value) in counters {
                let _ = writeln!(s, "  {name} = {value}");
            }
        }
        let gauges = self.gauges();
        if !gauges.is_empty() {
            s.push_str("[gauges]\n");
            for (name, value) in gauges {
                let _ = writeln!(s, "  {name} = {value:.3}");
            }
        }
        s
    }
}

fn render_level(
    out: &mut String,
    spans: &[SpanRecord],
    children: &HashMap<Option<u64>, Vec<usize>>,
    level: &[usize],
    depth: usize,
) {
    if depth > 12 {
        return;
    }
    // Merge spans with the same name at this level.
    let mut groups: BTreeMap<&str, (f64, Vec<usize>)> = BTreeMap::new();
    for &i in level {
        let e = groups.entry(&spans[i].name).or_insert((0.0, Vec::new()));
        e.0 += spans[i].dur_us();
        e.1.push(i);
    }
    for (name, (total_us, idxs)) in groups {
        let indent = "  ".repeat(depth);
        if idxs.len() == 1 {
            let span = &spans[idxs[0]];
            let args = if span.args.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> =
                    span.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  [{}]", rendered.join(", "))
            };
            let _ = writeln!(out, "{indent}{name}  {:.1} us{args}", span.dur_us());
        } else {
            let _ = writeln!(
                out,
                "{indent}{name}  x{}  {total_us:.1} us total",
                idxs.len()
            );
        }
        let mut next: Vec<usize> = Vec::new();
        for i in idxs {
            if let Some(kids) = children.get(&Some(spans[i].id)) {
                next.extend_from_slice(kids);
            }
        }
        if !next.is_empty() {
            render_level(out, spans, children, &next, depth + 1);
        }
    }
}
