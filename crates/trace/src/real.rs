//! The real tracer implementation (feature `enabled`).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::{ArgValue, Subsystem};

/// Where a span is rendered: a real OS thread's track, or a named
/// virtual lane (simulated-GPU timelines, per-request tracks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lane {
    /// Track of the recording thread (`tid` assigned at install time).
    Thread(u64),
    /// A named virtual lane; exported with `tid = 1000 + lane index`.
    Named(String),
}

/// A completed span, as returned by [`Tracer::spans`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: u64,
    /// Enclosing span at open time (same thread), or an explicit parent
    /// for cross-thread spans.
    pub parent: Option<u64>,
    /// Which subsystem recorded it.
    pub subsystem: Subsystem,
    /// Span name.
    pub name: String,
    /// Render track.
    pub lane: Lane,
    /// Start, microseconds since the tracer's epoch (wall spans) or
    /// since the lane's origin (virtual lanes).
    pub begin_us: f64,
    /// End, same clock as `begin_us`.
    pub end_us: f64,
    /// Typed arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> f64 {
        (self.end_us - self.begin_us).max(0.0)
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Internal lane id: an index into the named-lane registry (guard
/// spans use thread tids directly; completed events always live on
/// named virtual lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LaneId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum Event {
    Begin {
        id: u64,
        parent: Option<u64>,
        subsystem: Subsystem,
        name: String,
        tid: u64,
        ts_us: f64,
    },
    End {
        id: u64,
        subsystem: Subsystem,
        tid: u64,
        ts_us: f64,
        args: Vec<(String, ArgValue)>,
    },
    Complete {
        id: u64,
        parent: Option<u64>,
        subsystem: Subsystem,
        name: String,
        lane: LaneId,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, ArgValue)>,
    },
}

/// Holds the optional counter observer; manual `Debug` because
/// function trait objects have none.
struct HookCell(Mutex<Option<crate::CounterHook>>);

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.lock().map(|h| h.is_some()).unwrap_or(false);
        write!(f, "HookCell(installed: {installed})")
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) events: Mutex<Vec<Event>>,
    pub(crate) counters: Mutex<BTreeMap<String, i64>>,
    pub(crate) gauges: Mutex<BTreeMap<String, f64>>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    pub(crate) threads: Mutex<HashMap<ThreadId, (u64, String)>>,
    pub(crate) lanes: Mutex<Vec<String>>,
    sim_kernels: AtomicBool,
    counter_hook: HookCell,
}

/// A shared trace collector. Cloning is cheap (`Arc`); clones feed the
/// same buffer, which is how worker threads report into one trace.
#[derive(Debug, Clone)]
pub struct Tracer(Arc<Inner>);

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer; its epoch (`ts = 0`) is now.
    pub fn new() -> Self {
        Tracer(Arc::new(Inner {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            next_tid: AtomicU64::new(0),
            threads: Mutex::new(HashMap::new()),
            lanes: Mutex::new(Vec::new()),
            sim_kernels: AtomicBool::new(true),
            counter_hook: HookCell(Mutex::new(None)),
        }))
    }

    /// Enables or disables recording of simulated-kernel spans
    /// ([`sim_kernel`]). Useful to keep a long tuning phase from
    /// flooding the trace with per-candidate kernel events while still
    /// collecting them for the final measured frame.
    pub fn set_sim_kernels(&self, on: bool) {
        self.0.sim_kernels.store(on, Ordering::Relaxed);
    }

    /// Whether simulated-kernel spans are being recorded.
    pub fn sim_kernels(&self) -> bool {
        self.0.sim_kernels.load(Ordering::Relaxed)
    }

    /// Installs this tracer into the current thread (see [`install`]).
    pub fn install(&self) {
        install(self);
    }

    pub(crate) fn same_as(&self, other: &Tracer) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Allocates a fresh span id (for explicit cross-thread parenting,
    /// e.g. a request root allocated at submission and closed by a
    /// worker).
    pub fn alloc_span_id(&self) -> u64 {
        self.0.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Microseconds from the tracer epoch to `t` (0 if `t` predates it).
    pub fn instant_us(&self, t: Instant) -> f64 {
        t.checked_duration_since(self.0.epoch)
            .map(|d| d.as_secs_f64() * 1e6)
            .unwrap_or(0.0)
    }

    fn now_us(&self) -> f64 {
        self.instant_us(Instant::now())
    }

    pub(crate) fn push(&self, ev: Event) {
        self.0.events.lock().expect("trace event buffer").push(ev);
    }

    fn register_thread(&self) -> u64 {
        let cur = std::thread::current();
        let mut threads = self.0.threads.lock().expect("trace thread registry");
        if let Some(&(tid, _)) = threads.get(&cur.id()) {
            return tid;
        }
        let tid = self.0.next_tid.fetch_add(1, Ordering::Relaxed) + 1;
        let name = cur
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        threads.insert(cur.id(), (tid, name));
        tid
    }

    pub(crate) fn lane_index(&self, name: &str) -> usize {
        let mut lanes = self.0.lanes.lock().expect("trace lane registry");
        if let Some(i) = lanes.iter().position(|l| l == name) {
            return i;
        }
        lanes.push(name.to_string());
        lanes.len() - 1
    }

    /// Adds `delta` to a named counter (saturating at the `i64` bounds).
    /// Counter names follow the `subsystem.noun.verb` convention.
    pub fn counter_add(&self, name: &str, delta: i64) {
        {
            let mut counters = self.0.counters.lock().expect("trace counters");
            match counters.get_mut(name) {
                Some(v) => *v = v.saturating_add(delta),
                None => {
                    counters.insert(name.to_string(), delta);
                }
            }
        }
        // Observe outside the registry lock so a hook reading counters
        // (or taking its own locks) cannot deadlock.
        let hook = self
            .0
            .counter_hook
            .0
            .lock()
            .expect("trace counter hook")
            .clone();
        if let Some(hook) = hook {
            hook(name, delta);
        }
    }

    /// Installs (or, with `None`, removes) the counter observer called
    /// on every [`Self::counter_add`] — see [`crate::CounterHook`].
    /// One hook per tracer; installing replaces the previous one.
    pub fn set_counter_hook(&self, hook: Option<crate::CounterHook>) {
        *self.0.counter_hook.0.lock().expect("trace counter hook") = hook;
    }

    /// Reads one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> i64 {
        *self
            .0
            .counters
            .lock()
            .expect("trace counters")
            .get(name)
            .unwrap_or(&0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, i64)> {
        self.0
            .counters
            .lock()
            .expect("trace counters")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Sets a named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.0
            .gauges
            .lock()
            .expect("trace gauges")
            .insert(name.to_string(), value);
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.0
            .gauges
            .lock()
            .expect("trace gauges")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Records a completed span on a named lane with explicit wall-clock
    /// endpoints — the cross-thread API: `start` may have been captured
    /// on a different thread than the recorder (e.g. request submission
    /// vs. worker completion). Returns the span id for parenting.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at(
        &self,
        subsystem: Subsystem,
        lane: &str,
        name: &str,
        start: Instant,
        end: Instant,
        parent: Option<u64>,
        args: Vec<(String, ArgValue)>,
    ) -> u64 {
        self.record_span_at_id(
            self.alloc_span_id(),
            subsystem,
            lane,
            name,
            start,
            end,
            parent,
            args,
        )
    }

    /// [`Tracer::record_span_at`] with a caller-allocated id (from
    /// [`Tracer::alloc_span_id`]), so children can be recorded before,
    /// after, or on different threads than their parent.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at_id(
        &self,
        id: u64,
        subsystem: Subsystem,
        lane: &str,
        name: &str,
        start: Instant,
        end: Instant,
        parent: Option<u64>,
        args: Vec<(String, ArgValue)>,
    ) -> u64 {
        let ts = self.instant_us(start);
        let te = self.instant_us(end).max(ts);
        let lane = LaneId(self.lane_index(lane));
        self.push(Event::Complete {
            id,
            parent,
            subsystem,
            name: name.to_string(),
            lane,
            ts_us: ts,
            dur_us: te - ts,
            args,
        });
        id
    }

    /// Pairs begin/end events into completed [`SpanRecord`]s (spans still
    /// open are closed at the latest observed timestamp).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let events = self.0.events.lock().expect("trace event buffer").clone();
        let lanes = self.0.lanes.lock().expect("trace lane registry").clone();
        let lane_of = |l: LaneId| {
            Lane::Named(
                lanes
                    .get(l.0)
                    .cloned()
                    .unwrap_or_else(|| format!("lane-{}", l.0)),
            )
        };
        let mut max_ts = 0.0f64;
        let mut open: HashMap<u64, SpanRecord> = HashMap::new();
        let mut out = Vec::new();
        for ev in events {
            match ev {
                Event::Begin {
                    id,
                    parent,
                    subsystem,
                    name,
                    tid,
                    ts_us,
                } => {
                    max_ts = max_ts.max(ts_us);
                    open.insert(
                        id,
                        SpanRecord {
                            id,
                            parent,
                            subsystem,
                            name,
                            lane: Lane::Thread(tid),
                            begin_us: ts_us,
                            end_us: ts_us,
                            args: Vec::new(),
                        },
                    );
                }
                Event::End {
                    id, ts_us, args, ..
                } => {
                    max_ts = max_ts.max(ts_us);
                    if let Some(mut rec) = open.remove(&id) {
                        rec.end_us = ts_us.max(rec.begin_us);
                        rec.args = args;
                        out.push(rec);
                    }
                }
                Event::Complete {
                    id,
                    parent,
                    subsystem,
                    name,
                    lane,
                    ts_us,
                    dur_us,
                    args,
                } => {
                    max_ts = max_ts.max(ts_us + dur_us);
                    out.push(SpanRecord {
                        id,
                        parent,
                        subsystem,
                        name,
                        lane: lane_of(lane),
                        begin_us: ts_us,
                        end_us: ts_us + dur_us,
                        args,
                    });
                }
            }
        }
        for (_, mut rec) in open {
            rec.end_us = max_ts.max(rec.begin_us);
            out.push(rec);
        }
        out.sort_by(|a, b| a.begin_us.total_cmp(&b.begin_us).then(a.id.cmp(&b.id)));
        out
    }

    pub(crate) fn snapshot_events(&self) -> Vec<Event> {
        self.0.events.lock().expect("trace event buffer").clone()
    }

    pub(crate) fn lanes_snapshot(&self) -> Vec<String> {
        self.0.lanes.lock().expect("trace lane registry").clone()
    }

    pub(crate) fn thread_names(&self) -> HashMap<u64, String> {
        self.0
            .threads
            .lock()
            .expect("trace thread registry")
            .values()
            .map(|(tid, name)| (*tid, name.clone()))
            .collect()
    }

    /// Number of recorded events (begin and end count separately).
    pub fn event_count(&self) -> usize {
        self.0.events.lock().expect("trace event buffer").len()
    }
}

// ---------------------------------------------------------------------
// Thread-local installation.
// ---------------------------------------------------------------------

struct ThreadSlot {
    tracer: Tracer,
    tid: u64,
    stack: Vec<u64>,
    /// Per-lane monotone cursors for simulated timelines.
    cursors: HashMap<usize, f64>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SLOT: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
}

fn with_slot<R>(f: impl FnOnce(&mut ThreadSlot) -> R) -> Option<R> {
    if !ACTIVE.with(|a| a.get()) {
        return None;
    }
    SLOT.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Installs `tracer` as the current thread's collector. Replaces any
/// previously installed tracer on this thread.
pub fn install(tracer: &Tracer) {
    let tid = tracer.register_thread();
    SLOT.with(|s| {
        *s.borrow_mut() = Some(ThreadSlot {
            tracer: tracer.clone(),
            tid,
            stack: Vec::new(),
            cursors: HashMap::new(),
        });
    });
    ACTIVE.with(|a| a.set(true));
}

/// [`install`] if `Some`; the no-tracer-propagation helper for spawned
/// threads: `let t = ts_trace::current(); thread::spawn(move || { ts_trace::install_opt(t.as_ref()); ... })`.
pub fn install_opt(tracer: Option<&Tracer>) {
    if let Some(t) = tracer {
        install(t);
    }
}

/// Removes the current thread's tracer (open guards still close into
/// the tracer they were started on).
pub fn uninstall() {
    ACTIVE.with(|a| a.set(false));
    SLOT.with(|s| *s.borrow_mut() = None);
}

/// The tracer installed on this thread, if any.
pub fn current() -> Option<Tracer> {
    with_slot(|slot| slot.tracer.clone())
}

/// Whether a tracer is installed on this thread (one TLS read).
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Adds to a counter on the current thread's tracer (no-op when none).
#[inline]
pub fn counter_add(name: &str, delta: i64) {
    if !active() {
        return;
    }
    if let Some(tracer) = current() {
        tracer.counter_add(name, delta);
    }
}

/// Sets a gauge on the current thread's tracer (no-op when none).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !active() {
        return;
    }
    if let Some(tracer) = current() {
        tracer.gauge_set(name, value);
    }
}

/// Records a completed span with explicit endpoints on the current
/// thread's tracer; returns the span id (see
/// [`Tracer::record_span_at`]).
pub fn record_span_at(
    subsystem: Subsystem,
    lane: &str,
    name: &str,
    start: Instant,
    end: Instant,
    parent: Option<u64>,
    args: Vec<(String, ArgValue)>,
) -> Option<u64> {
    with_slot(|slot| {
        slot.tracer
            .record_span_at(subsystem, lane, name, start, end, parent, args)
    })
}

/// Appends a span of `dur_us` *simulated* microseconds to the calling
/// thread's virtual lane `track` (rendered as `track#tid`). The lane
/// cursor only moves forward, so timestamps stay monotone per lane.
pub fn sim_span(
    subsystem: Subsystem,
    track: &str,
    name: &str,
    dur_us: f64,
    args: Vec<(String, ArgValue)>,
) {
    with_slot(|slot| {
        let lane_name = format!("{track}#{}", slot.tid);
        let lane = slot.tracer.lane_index(&lane_name);
        let cursor = slot.cursors.entry(lane).or_insert(0.0);
        let ts = *cursor;
        let dur = dur_us.max(0.0);
        *cursor = ts + dur;
        let id = slot.tracer.alloc_span_id();
        let parent = slot.stack.last().copied();
        slot.tracer.push(Event::Complete {
            id,
            parent,
            subsystem,
            name: name.to_string(),
            lane: LaneId(lane),
            ts_us: ts,
            dur_us: dur,
            args,
        });
    });
}

/// Records one simulated GPU kernel on this thread's `gpu#tid` lane:
/// name, kernel class, MAC count, occupancy (0..1) and simulated
/// duration. Subject to [`Tracer::set_sim_kernels`] filtering.
pub fn sim_kernel(name: &str, class: &'static str, macs: u64, occupancy: f64, dur_us: f64) {
    if !active() {
        return;
    }
    let record = with_slot(|slot| slot.tracer.sim_kernels()).unwrap_or(false);
    if !record {
        return;
    }
    sim_span(
        Subsystem::Gpusim,
        "gpu",
        name,
        dur_us,
        vec![
            ("class".to_string(), ArgValue::Str(class.to_string())),
            ("macs".to_string(), ArgValue::U64(macs)),
            ("occupancy".to_string(), ArgValue::F64(occupancy)),
        ],
    );
}

/// Disables simulated-kernel emission on the calling thread's tracer
/// until the returned guard drops (restoring the previous setting).
///
/// The autotuner uses this: its thousands of candidate simulations would
/// otherwise flood the trace with one event per priced kernel.
#[must_use = "sim-kernel emission resumes when the guard drops"]
pub fn suppress_sim_kernels() -> SimKernelSuppression {
    SimKernelSuppression(current().map(|t| {
        let prev = t.sim_kernels();
        t.set_sim_kernels(false);
        (t, prev)
    }))
}

/// Guard from [`suppress_sim_kernels`].
pub struct SimKernelSuppression(Option<(Tracer, bool)>);

impl Drop for SimKernelSuppression {
    fn drop(&mut self) {
        if let Some((t, prev)) = self.0.take() {
            t.set_sim_kernels(prev);
        }
    }
}

// ---------------------------------------------------------------------
// Guard-based spans.
// ---------------------------------------------------------------------

struct GuardInner {
    tracer: Tracer,
    id: u64,
    subsystem: Subsystem,
    tid: u64,
    args: Vec<(String, ArgValue)>,
}

/// RAII span handle from [`span()`](fn@crate::span) / [`span!`]. Closes (records the end
/// event) when dropped — panic and early-return safe by construction.
pub struct SpanGuard(Option<GuardInner>);

impl SpanGuard {
    /// Whether this guard records anywhere (false = no tracer installed,
    /// everything below is a no-op).
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// The span id, for explicit parenting of cross-thread children.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|g| g.id)
    }

    /// Attaches a typed argument (exported on the span's end event).
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) {
        if let Some(g) = self.0.as_mut() {
            g.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.0.take() {
            // Best-effort stack maintenance: the top entry is ours unless
            // guards were dropped out of order.
            SLOT.with(|s| {
                if let Some(slot) = s.borrow_mut().as_mut() {
                    if slot.tracer.same_as(&g.tracer) {
                        if slot.stack.last() == Some(&g.id) {
                            slot.stack.pop();
                        } else {
                            slot.stack.retain(|&x| x != g.id);
                        }
                    }
                }
            });
            let ts = g.tracer.now_us();
            g.tracer.push(Event::End {
                id: g.id,
                subsystem: g.subsystem,
                tid: g.tid,
                ts_us: ts,
                args: g.args,
            });
        }
    }
}

/// Opens a guard-based span on the current thread's tracer, parented to
/// the innermost open span of this thread. Returns an inactive guard
/// when no tracer is installed.
pub fn span(subsystem: Subsystem, name: &str) -> SpanGuard {
    let inner = with_slot(|slot| {
        let tracer = slot.tracer.clone();
        let id = tracer.alloc_span_id();
        let parent = slot.stack.last().copied();
        let ts = tracer.now_us();
        tracer.push(Event::Begin {
            id,
            parent,
            subsystem,
            name: name.to_string(),
            tid: slot.tid,
            ts_us: ts,
        });
        slot.stack.push(id);
        GuardInner {
            tracer,
            id,
            subsystem,
            tid: slot.tid,
            args: Vec::new(),
        }
    });
    SpanGuard(inner)
}
