//! No-op API mirror, compiled when feature `enabled` is off: every call
//! is an inline empty function, so instrumented crates need no `cfg`
//! scattering and the optimizer erases the instrumentation entirely.

use std::io;
use std::path::Path;
use std::time::Instant;

use crate::{ArgValue, Subsystem};

/// Render track of a span (disabled build: never constructed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lane {
    /// Track of the recording thread.
    Thread(u64),
    /// A named virtual lane.
    Named(String),
}

/// A completed span (disabled build: never constructed).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: u64,
    /// Parent span id.
    pub parent: Option<u64>,
    /// Recording subsystem.
    pub subsystem: Subsystem,
    /// Span name.
    pub name: String,
    /// Render track.
    pub lane: Lane,
    /// Start microseconds.
    pub begin_us: f64,
    /// End microseconds.
    pub end_us: f64,
    /// Typed arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> f64 {
        (self.end_us - self.begin_us).max(0.0)
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Disabled-build tracer: a zero-sized handle whose every method is a
/// no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer;

impl Tracer {
    /// Creates a (disabled) tracer.
    pub fn new() -> Self {
        Tracer
    }

    /// No-op.
    pub fn set_sim_kernels(&self, _on: bool) {}

    /// Always false.
    pub fn sim_kernels(&self) -> bool {
        false
    }

    /// No-op.
    pub fn install(&self) {}

    /// Always 0.
    pub fn alloc_span_id(&self) -> u64 {
        0
    }

    /// Always 0.
    pub fn instant_us(&self, _t: Instant) -> f64 {
        0.0
    }

    /// No-op.
    pub fn counter_add(&self, _name: &str, _delta: i64) {}

    /// No-op.
    pub fn set_counter_hook(&self, _hook: Option<crate::CounterHook>) {}

    /// Always 0.
    pub fn counter(&self, _name: &str) -> i64 {
        0
    }

    /// Always empty.
    pub fn counters(&self) -> Vec<(String, i64)> {
        Vec::new()
    }

    /// No-op.
    pub fn gauge_set(&self, _name: &str, _value: f64) {}

    /// Always empty.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// No-op; returns 0.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at(
        &self,
        _subsystem: Subsystem,
        _lane: &str,
        _name: &str,
        _start: Instant,
        _end: Instant,
        _parent: Option<u64>,
        _args: Vec<(String, ArgValue)>,
    ) -> u64 {
        0
    }

    /// No-op; returns `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at_id(
        &self,
        id: u64,
        _subsystem: Subsystem,
        _lane: &str,
        _name: &str,
        _start: Instant,
        _end: Instant,
        _parent: Option<u64>,
        _args: Vec<(String, ArgValue)>,
    ) -> u64 {
        id
    }

    /// Always empty.
    pub fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always 0.
    pub fn event_count(&self) -> usize {
        0
    }

    /// An empty trace.
    pub fn chrome_trace_json(&self) -> String {
        "{\"traceEvents\":[]}".to_string()
    }

    /// Writes the empty trace.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// A placeholder summary.
    pub fn summary(&self) -> String {
        "trace summary (tracing compiled out)\n".to_string()
    }
}

/// No-op.
#[inline(always)]
pub fn install(_tracer: &Tracer) {}

/// No-op.
#[inline(always)]
pub fn install_opt(_tracer: Option<&Tracer>) {}

/// No-op.
#[inline(always)]
pub fn uninstall() {}

/// Always `None`.
#[inline(always)]
pub fn current() -> Option<Tracer> {
    None
}

/// Always false.
#[inline(always)]
pub fn active() -> bool {
    false
}

/// No-op.
#[inline(always)]
pub fn counter_add(_name: &str, _delta: i64) {}

/// No-op.
#[inline(always)]
pub fn gauge_set(_name: &str, _value: f64) {}

/// Always `None`.
#[inline(always)]
pub fn record_span_at(
    _subsystem: Subsystem,
    _lane: &str,
    _name: &str,
    _start: Instant,
    _end: Instant,
    _parent: Option<u64>,
    _args: Vec<(String, ArgValue)>,
) -> Option<u64> {
    None
}

/// No-op.
#[inline(always)]
pub fn sim_span(
    _subsystem: Subsystem,
    _track: &str,
    _name: &str,
    _dur_us: f64,
    _args: Vec<(String, ArgValue)>,
) {
}

/// No-op.
#[inline(always)]
pub fn sim_kernel(_name: &str, _class: &'static str, _macs: u64, _occupancy: f64, _dur_us: f64) {}

/// No-op counterpart of the real `suppress_sim_kernels`.
#[must_use = "sim-kernel emission resumes when the guard drops"]
#[inline(always)]
pub fn suppress_sim_kernels() -> SimKernelSuppression {
    SimKernelSuppression(())
}

/// Guard from [`suppress_sim_kernels`] (no-op).
pub struct SimKernelSuppression(());

/// Inactive guard.
pub struct SpanGuard(());

impl SpanGuard {
    /// Always false.
    #[inline(always)]
    pub fn active(&self) -> bool {
        false
    }

    /// Always `None`.
    #[inline(always)]
    pub fn id(&self) -> Option<u64> {
        None
    }

    /// No-op.
    #[inline(always)]
    pub fn arg(&mut self, _key: &str, _value: impl Into<ArgValue>) {}
}

/// Returns an inactive guard.
#[inline(always)]
pub fn span(_subsystem: Subsystem, _name: &str) -> SpanGuard {
    SpanGuard(())
}
