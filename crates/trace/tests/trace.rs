//! Behavioural tests for the tracing spine: guard discipline under
//! panics and early returns, cross-thread collection, counter
//! saturation, and Chrome trace-event schema validity.

#![cfg(feature = "enabled")]

use std::collections::HashMap;
use std::time::Instant;

use serde_json::Value;
use ts_trace::{span, ArgValue, Subsystem, Tracer};

fn names(tracer: &Tracer) -> Vec<String> {
    tracer.spans().iter().map(|s| s.name.clone()).collect()
}

#[test]
fn spans_nest_and_parent_on_one_thread() {
    let tracer = Tracer::new();
    tracer.install();
    {
        let _outer = span!(Subsystem::Core, "outer");
        let _inner = span!(Subsystem::Core, "inner", depth = 1u64);
    }
    ts_trace::uninstall();
    let spans = tracer.spans();
    assert_eq!(spans.len(), 2);
    let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
    let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
    assert_eq!(outer.parent, None);
    assert_eq!(inner.parent, Some(outer.id));
    assert!(inner.begin_us >= outer.begin_us);
    assert!(inner.end_us <= outer.end_us + 1.0);
    assert_eq!(inner.arg("depth"), Some(&ArgValue::U64(1)));
}

#[test]
fn guard_closes_on_early_return() {
    fn short_circuit(flag: bool) -> u32 {
        let _g = span!(Subsystem::App, "early");
        if flag {
            return 1;
        }
        0
    }
    let tracer = Tracer::new();
    tracer.install();
    assert_eq!(short_circuit(true), 1);
    ts_trace::uninstall();
    let spans = tracer.spans();
    assert_eq!(names(&tracer), vec!["early".to_string()]);
    // Closed by the guard, not by export-time synthesis: the end event
    // exists, so the pair count is even.
    assert_eq!(tracer.event_count(), 2);
    assert!(spans[0].end_us >= spans[0].begin_us);
}

#[test]
fn guard_closes_when_the_span_body_panics() {
    let tracer = Tracer::new();
    tracer.install();
    let result = std::panic::catch_unwind(|| {
        let _g = span!(Subsystem::App, "doomed");
        panic!("boom");
    });
    assert!(result.is_err());
    // The panic unwound through the guard: the span is closed and a new
    // span opened afterwards is a root, not a child of "doomed".
    {
        let _after = span!(Subsystem::App, "after");
    }
    ts_trace::uninstall();
    let spans = tracer.spans();
    assert_eq!(tracer.event_count(), 4, "both spans closed by guards");
    let doomed = spans.iter().find(|s| s.name == "doomed").expect("doomed");
    let after = spans.iter().find(|s| s.name == "after").expect("after");
    assert_eq!(doomed.parent, None);
    assert_eq!(after.parent, None, "panicked span must not leak a parent");
}

#[test]
fn uninstalled_thread_records_nothing() {
    let tracer = Tracer::new();
    tracer.install();
    ts_trace::uninstall();
    {
        let mut g = span!(Subsystem::App, "ghost");
        assert!(!g.active());
        g.arg("k", 1u64);
    }
    ts_trace::counter_add("app.ghost.count", 1);
    assert_eq!(tracer.event_count(), 0);
    assert!(tracer.counters().is_empty());
    assert!(!ts_trace::active());
}

#[test]
fn spawned_threads_feed_one_tracer_with_distinct_tids() {
    let tracer = Tracer::new();
    tracer.install();
    let root_id = {
        let root = span!(Subsystem::App, "root");
        root.id().expect("active")
    };
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let t = tracer.clone();
            std::thread::Builder::new()
                .name(format!("worker-{i}"))
                .spawn(move || {
                    ts_trace::install_opt(Some(&t));
                    let _g = span!(Subsystem::App, "work");
                })
                .expect("spawn")
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }
    ts_trace::uninstall();
    let spans = tracer.spans();
    let tids: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "work")
        .map(|s| s.lane.clone())
        .collect();
    assert_eq!(tids.len(), 2);
    assert_ne!(tids[0], tids[1], "each thread gets its own lane");
    // Worker spans opened without an explicit parent are roots.
    assert!(spans
        .iter()
        .filter(|s| s.name == "work")
        .all(|s| s.parent != Some(root_id)));
}

#[test]
fn explicit_parenting_crosses_threads() {
    let tracer = Tracer::new();
    tracer.install();
    let submit = Instant::now();
    let root = tracer.alloc_span_id();
    let t = tracer.clone();
    std::thread::spawn(move || {
        ts_trace::install_opt(Some(&t));
        let exec = Instant::now();
        let tr = ts_trace::current().expect("installed");
        tr.record_span_at(
            Subsystem::Serve,
            "req-1",
            "queue_wait",
            submit,
            exec,
            Some(root),
            vec![],
        );
        tr.record_span_at_id(
            root,
            Subsystem::Serve,
            "req-1",
            "request",
            submit,
            Instant::now(),
            None,
            vec![("req".to_string(), ArgValue::U64(1))],
        );
    })
    .join()
    .expect("join");
    ts_trace::uninstall();
    let spans = tracer.spans();
    let req = spans.iter().find(|s| s.name == "request").expect("root");
    let wait = spans.iter().find(|s| s.name == "queue_wait").expect("qw");
    assert_eq!(req.id, root);
    assert_eq!(wait.parent, Some(root), "child recorded before its parent");
}

#[test]
fn counters_saturate_and_sort() {
    let tracer = Tracer::new();
    tracer.install();
    ts_trace::counter_add("core.prepare_cache.hit", i64::MAX - 1);
    ts_trace::counter_add("core.prepare_cache.hit", 5);
    ts_trace::counter_add("app.z.last", 1);
    ts_trace::counter_add("app.a.first", 1);
    ts_trace::uninstall();
    assert_eq!(tracer.counter("core.prepare_cache.hit"), i64::MAX);
    let keys: Vec<_> = tracer.counters().into_iter().map(|(k, _)| k).collect();
    assert_eq!(
        keys,
        vec!["app.a.first", "app.z.last", "core.prepare_cache.hit"]
    );
}

#[test]
fn sim_lanes_are_monotone_and_filtered() {
    let tracer = Tracer::new();
    tracer.install();
    ts_trace::sim_kernel("gemm-a", "compute", 100, 0.9, 5.0);
    ts_trace::sim_kernel("map-b", "mapping", 0, 0.2, 3.0);
    tracer.set_sim_kernels(false);
    ts_trace::sim_kernel("dropped", "compute", 1, 0.5, 1.0);
    ts_trace::uninstall();
    let spans = tracer.spans();
    assert_eq!(spans.len(), 2, "filter drops the third kernel");
    assert_eq!(spans[0].begin_us, 0.0);
    assert_eq!(spans[0].end_us, 5.0);
    assert_eq!(spans[1].begin_us, 5.0, "cursor advances");
    assert_eq!(
        spans[0].arg("class"),
        Some(&ArgValue::Str("compute".to_string()))
    );
    assert_eq!(spans[0].arg("macs"), Some(&ArgValue::U64(100)));
}

/// Walks a Chrome trace JSON string and checks the invariants the ISSUE
/// requires: valid JSON, every `B` has an `E` (per tid, stack
/// discipline), and `ts` monotone non-decreasing per `(pid, tid)`.
pub fn assert_chrome_schema(json: &str) -> usize {
    let v: Value = serde_json::from_str(json).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut checked = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        if ph == "M" {
            continue;
        }
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid");
        let tid = ev.get("tid").and_then(|t| t.as_u64()).expect("tid");
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts");
        let key = (pid, tid);
        let prev = last_ts.get(&key).copied().unwrap_or(f64::NEG_INFINITY);
        assert!(
            ts >= prev,
            "ts must be monotone per tid: {ts} < {prev} on {key:?}"
        );
        last_ts.insert(key, ts);
        match ph {
            "B" => {
                assert!(ev.get("name").is_some(), "B events carry names");
                *depth.entry(key).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(key).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on {key:?}");
            }
            "X" => {
                assert!(ev.get("dur").and_then(|d| d.as_f64()).expect("dur") >= 0.0);
            }
            "C" => {
                assert!(ev.get("args").and_then(|a| a.get("value")).is_some());
            }
            other => panic!("unexpected phase {other}"),
        }
        checked += 1;
    }
    for (key, d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on {key:?}");
    }
    checked
}

#[test]
fn chrome_export_satisfies_the_schema() {
    let tracer = Tracer::new();
    tracer.install();
    {
        let _outer = span!(Subsystem::Autotune, "tune", groups = 3u64);
        for g in 0..3u64 {
            let _inner = span!(Subsystem::Autotune, "group", g = g);
            ts_trace::sim_kernel("gemm", "compute", 64, 0.8, 2.5);
        }
    }
    ts_trace::counter_add("autotune.candidates.swept", 42);
    tracer.gauge_set("autotune.speedup", 1.5);
    ts_trace::uninstall();
    let json = tracer.chrome_trace_json();
    let checked = assert_chrome_schema(&json);
    // 4 B + 4 E + 3 X + 1 C.
    assert_eq!(checked, 12);
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("autotune.candidates.swept"));
}

#[test]
fn chrome_export_closes_still_open_spans() {
    let tracer = Tracer::new();
    tracer.install();
    let _open = span!(Subsystem::Core, "still_running");
    let json = tracer.chrome_trace_json();
    assert_chrome_schema(&json);
    drop(_open);
    ts_trace::uninstall();
}

#[test]
fn chrome_export_escapes_names() {
    let tracer = Tracer::new();
    tracer.install();
    {
        let mut g = span!(Subsystem::App, "weird \"name\"\n");
        g.arg("note", "tab\there");
    }
    ts_trace::uninstall();
    assert_chrome_schema(&tracer.chrome_trace_json());
}

#[test]
fn summary_aggregates_repeats() {
    let tracer = Tracer::new();
    tracer.install();
    {
        let _t = span!(Subsystem::Autotune, "tune");
        for _ in 0..5 {
            let _g = span!(Subsystem::Autotune, "group");
        }
    }
    ts_trace::counter_add("autotune.rounds.completed", 5);
    ts_trace::uninstall();
    let summary = tracer.summary();
    assert!(summary.contains("[autotune]"), "{summary}");
    assert!(summary.contains("group  x5"), "{summary}");
    assert!(
        summary.contains("autotune.rounds.completed = 5"),
        "{summary}"
    );
}

#[test]
fn reinstalling_on_the_same_thread_keeps_one_tid() {
    let tracer = Tracer::new();
    tracer.install();
    {
        let _a = span!(Subsystem::App, "a");
    }
    ts_trace::uninstall();
    tracer.install();
    {
        let _b = span!(Subsystem::App, "b");
    }
    ts_trace::uninstall();
    let spans = tracer.spans();
    assert_eq!(spans[0].lane, spans[1].lane);
}

/// Every counter name the workspace currently emits, paired with the
/// subsystem whose Chrome-trace process it must land on. Keep in sync
/// with the counter-vocabulary table in `lib.rs` — a new counter whose
/// prefix is not a known subsystem label silently falls back to `App`,
/// which is exactly the regression this list guards against.
const EMITTED_COUNTERS: &[(&str, Subsystem)] = &[
    ("kernelgen.kernels.generated", Subsystem::Kernelgen),
    ("core.prepare_cache.hit", Subsystem::Core),
    ("core.prepare_cache.miss", Subsystem::Core),
    ("core.schedule.artifact_rejected", Subsystem::Core),
    ("core.stream.entered", Subsystem::Core),
    ("core.stream.exited", Subsystem::Core),
    ("core.stream.frames", Subsystem::Core),
    ("core.stream.patched", Subsystem::Core),
    ("core.stream.rebuilt", Subsystem::Core),
    ("autotune.candidates.swept", Subsystem::Autotune),
    ("autotune.groups.tuned", Subsystem::Autotune),
    ("autotune.rounds.completed", Subsystem::Autotune),
    ("autotune.speedup", Subsystem::Autotune),
    ("serve.batches.dispatched", Subsystem::Serve),
    ("serve.batches.executed", Subsystem::Serve),
    ("serve.chaos.injected_panic", Subsystem::Serve),
    ("serve.chaos.injected_stall", Subsystem::Serve),
    ("serve.deadline.missed", Subsystem::Serve),
    ("serve.frames.rejected", Subsystem::Serve),
    ("serve.map_cache.disabled_degraded", Subsystem::Serve),
    ("serve.map_cache.entered", Subsystem::Serve),
    ("serve.map_cache.evicted", Subsystem::Serve),
    ("serve.map_cache.exited", Subsystem::Serve),
    ("serve.map_cache.hit", Subsystem::Serve),
    ("serve.map_cache.invalidated", Subsystem::Serve),
    ("serve.map_cache.miss", Subsystem::Serve),
    ("serve.map_cache.patched", Subsystem::Serve),
    ("serve.map_cache.rebuilt", Subsystem::Serve),
    ("serve.requests.completed", Subsystem::Serve),
    ("serve.requests.rejected_queue_full", Subsystem::Serve),
    ("serve.requests.requeued", Subsystem::Serve),
    ("serve.requests.shed_crashed", Subsystem::Serve),
    ("serve.requests.shed_deadline", Subsystem::Serve),
    ("serve.requests.shed_halt", Subsystem::Serve),
    ("serve.schedule.downgraded", Subsystem::Serve),
    ("serve.workers.panicked", Subsystem::Serve),
    ("serve.workers.restarted", Subsystem::Serve),
    ("serve.workers.stalled", Subsystem::Serve),
    ("fleet.nodes.killed", Subsystem::Fleet),
    ("fleet.nodes.restarted", Subsystem::Fleet),
    ("fleet.requests.affinity", Subsystem::Fleet),
    ("fleet.requests.hashed", Subsystem::Fleet),
    ("fleet.requests.rejected_no_capacity", Subsystem::Fleet),
    ("fleet.requests.routed", Subsystem::Fleet),
    ("fleet.requests.spilled", Subsystem::Fleet),
    ("fleet.streams.migrated", Subsystem::Fleet),
    ("fleet.streams.re_homed", Subsystem::Fleet),
    ("obs.alerts.page_cleared", Subsystem::Obs),
    ("obs.alerts.page_tripped", Subsystem::Obs),
    ("obs.alerts.warn_cleared", Subsystem::Obs),
    ("obs.alerts.warn_tripped", Subsystem::Obs),
    ("obs.postmortem.dumped", Subsystem::Obs),
    ("obs.snapshots.exported", Subsystem::Obs),
    ("cache.hit", Subsystem::Cache),
    ("cache.miss", Subsystem::Cache),
    ("cache.warm_start", Subsystem::Cache),
    ("cache.retuned_groups", Subsystem::Cache),
    ("cache.inserted", Subsystem::Cache),
    ("cache.evicted", Subsystem::Cache),
    ("cache.rejected", Subsystem::Cache),
];

#[test]
fn every_emitted_counter_maps_to_its_own_subsystem() {
    for &(name, expected) in EMITTED_COUNTERS {
        let got = Subsystem::from_counter_name(name);
        assert_eq!(
            got, expected,
            "counter '{name}' must land on [{expected}], got [{got}]"
        );
        assert_ne!(
            expected,
            Subsystem::App,
            "'{name}' is a subsystem counter; only app.* may fall back to App"
        );
    }
    // The fallback still works for genuinely unknown prefixes.
    assert_eq!(
        Subsystem::from_counter_name("app.demo.count"),
        Subsystem::App
    );
    assert_eq!(Subsystem::from_counter_name("nonsense.x.y"), Subsystem::App);
    assert_eq!(Subsystem::from_counter_name(""), Subsystem::App);
}

#[test]
fn subsystem_pids_are_unique_and_match_all_order() {
    let mut pids: Vec<u64> = Subsystem::ALL.iter().map(|s| s.pid()).collect();
    assert!(
        pids.windows(2).all(|w| w[0] < w[1]),
        "ALL must be pid-sorted"
    );
    pids.dedup();
    assert_eq!(pids.len(), Subsystem::ALL.len());
    // Labels round-trip through from_counter_name.
    for s in Subsystem::ALL {
        assert_eq!(
            Subsystem::from_counter_name(&format!("{}.a.b", s.label())),
            s
        );
    }
}

#[test]
fn counter_hook_observes_every_add_without_reentry() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let tracer = Tracer::new();
    let seen = Arc::new(AtomicI64::new(0));
    let seen_in_hook = Arc::clone(&seen);
    tracer.set_counter_hook(Some(Arc::new(move |name: &str, delta: i64| {
        if name.starts_with("serve.chaos.") {
            seen_in_hook.fetch_add(delta, Ordering::Relaxed);
        }
    })));
    tracer.install();
    ts_trace::counter_add("serve.chaos.injected_panic", 2);
    ts_trace::counter_add("serve.requests.completed", 1); // filtered out
    ts_trace::counter_add("serve.chaos.injected_stall", 3);
    ts_trace::uninstall();
    assert_eq!(seen.load(Ordering::Relaxed), 5);
    // The registry still saw everything.
    assert_eq!(tracer.counter("serve.chaos.injected_panic"), 2);
    assert_eq!(tracer.counter("serve.requests.completed"), 1);
    // Uninstalling the hook stops observation.
    tracer.set_counter_hook(None);
    tracer.counter_add("serve.chaos.injected_panic", 10);
    assert_eq!(seen.load(Ordering::Relaxed), 5);
}
