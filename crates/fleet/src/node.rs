//! Node specification: which device a fleet slot simulates, which
//! schedule artifact it boots from, and how its server is configured.
//!
//! The paper's central observation is that the best dataflow is
//! device-specific (its Sparse Autotuner re-tunes per device); a
//! heterogeneous fleet therefore boots every node from its *own*
//! [`ScheduleArtifact`] via [`Engine::load_schedule_lenient`] — an
//! artifact tuned for an A100 is rejected (leniently, with typed
//! downgrades) on an Orin rather than silently mispricing it.

use serde::{Deserialize, Serialize};
use ts_cache::{BootOrigin, DriftPolicy, Lookup, ScheduleCache, ScheduleKey};
use ts_core::{Engine, GroupConfigs, Network, NetworkWeights, ScheduleArtifact, Session};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::Device;
use ts_kernelmap::Coord;
use ts_serve::ServeConfig;
use ts_tensor::Precision;

/// The hardware class a fleet node simulates. The three-tier lineup
/// mirrors a real deployment: datacenter accelerators, prosumer GPUs,
/// and the paper's ADAS edge platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceTier {
    /// Datacenter: NVIDIA A100.
    Premium,
    /// Prosumer: NVIDIA RTX 3090 (the paper's main evaluation GPU).
    Standard,
    /// Edge: NVIDIA Jetson Orin.
    Edge,
}

impl DeviceTier {
    /// The simulated device model of this tier.
    pub fn device(self) -> Device {
        match self {
            DeviceTier::Premium => Device::a100(),
            DeviceTier::Standard => Device::rtx3090(),
            DeviceTier::Edge => Device::jetson_orin(),
        }
    }

    /// Short label for reports and trace lanes.
    pub fn label(self) -> &'static str {
        match self {
            DeviceTier::Premium => "premium",
            DeviceTier::Standard => "standard",
            DeviceTier::Edge => "edge",
        }
    }
}

/// Everything needed to boot (and re-boot, after a kill) one node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Stable node index within the fleet.
    pub id: usize,
    /// Hardware class of the simulated device.
    pub tier: DeviceTier,
    /// Numeric precision the node serves at.
    pub precision: Precision,
    /// Serialized [`ScheduleArtifact`] the node boots its engine from.
    /// Always loaded leniently: a mismatched or corrupt artifact boots
    /// a degraded node, never a dead one.
    pub artifact_json: String,
    /// Per-node server configuration.
    pub serve: ServeConfig,
}

impl NodeSpec {
    /// A spec with an untuned (uniform implicit-GEMM) schedule artifact
    /// keyed to this tier's device — the artifact a deployment would
    /// ship before its first autotune pass. Callers with tuned
    /// schedules set `artifact_json` from [`Engine::save_schedule`]
    /// instead.
    pub fn untuned(
        id: usize,
        tier: DeviceTier,
        precision: Precision,
        network: &Network,
        serve: ServeConfig,
    ) -> Self {
        let artifact = ScheduleArtifact::new(
            network.name(),
            &tier.device().name,
            precision,
            GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        );
        Self {
            id,
            tier,
            precision,
            artifact_json: artifact.to_json().expect("uniform artifact serializes"),
            serve,
        }
    }

    /// A spec booted through the content-addressed schedule cache
    /// (`ts-cache`): probes with `sample_coords` (a representative
    /// scene for this node's workload) under the tier's device model,
    /// and builds `artifact_json` from the cached schedule on an exact
    /// hit, from the nearest structurally compatible schedule on a
    /// near-miss, or falls back to [`NodeSpec::untuned`] on a miss —
    /// the lenient always-boots contract is unchanged, a cold cache
    /// just boots untuned nodes. Returns the spec plus where its
    /// schedule came from.
    ///
    /// The artifact is keyed to *this* network's name whatever the
    /// cached schedule's network was called: the cache matches on
    /// topology, and [`Engine::load_schedule`] validates by name, so
    /// a topology-equal rename must still transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn cached(
        id: usize,
        tier: DeviceTier,
        precision: Precision,
        network: &Network,
        sample_coords: &[Coord],
        cache: &mut ScheduleCache,
        policy: &DriftPolicy,
        serve: ServeConfig,
    ) -> (Self, BootOrigin) {
        let session = Session::new(network, sample_coords);
        let ctx = ExecCtx::simulate(tier.device(), precision);
        let key = ScheduleKey::of(&session, &ctx);
        let (configs, origin, tuned_latency_us) = match cache.lookup(&key, policy) {
            Lookup::Hit {
                configs,
                tuned_latency_us,
                ..
            } => (configs, BootOrigin::Cached, tuned_latency_us),
            Lookup::Warm { seed, .. } => (seed, BootOrigin::Transferred, 0.0),
            Lookup::Miss => {
                return (
                    Self::untuned(id, tier, precision, network, serve),
                    BootOrigin::Fallback,
                )
            }
        };
        let artifact =
            ScheduleArtifact::new(network.name(), &tier.device().name, precision, configs)
                .with_tuned_latency(tuned_latency_us);
        (
            Self {
                id,
                tier,
                precision,
                artifact_json: artifact.to_json().expect("cached artifact serializes"),
                serve,
            },
            origin,
        )
    }

    /// Boots this node's engine: lenient schedule load against the
    /// tier's device model, so the node always comes up (possibly
    /// degraded, with typed [`ts_core::Downgrade`] records).
    pub fn boot_engine(&self, network: &Network, weights: &NetworkWeights) -> Engine {
        Engine::load_schedule_lenient(
            network.clone(),
            weights.clone(),
            &self.artifact_json,
            ExecCtx::functional(self.tier.device(), self.precision),
        )
    }

    /// Same lenient boot, but in simulate-only mode (no feature math):
    /// what [`crate::FleetSim`] runs, where only the priced
    /// [`ts_core::RunReport`] matters and functional execution would
    /// waste the bench's wall clock on outputs nobody reads.
    pub fn boot_sim_engine(&self, network: &Network, weights: &NetworkWeights) -> Engine {
        Engine::load_schedule_lenient(
            network.clone(),
            weights.clone(),
            &self.artifact_json,
            ExecCtx::simulate(self.tier.device(), self.precision),
        )
    }

    /// Relative serving-capacity prior used to weight this node's share
    /// of the consistent-hash ring ([`crate::Router::weighted`]). DRAM
    /// bandwidth is the proxy: sparse-conv serving is dominated by
    /// mapping and gather/scatter traffic that scales with memory
    /// bandwidth on every workload width, whereas tensor-core peak only
    /// matters on very wide layers (the paper's §6.3 compute-vs-
    /// bandwidth asymmetry cuts the same way).
    pub fn capacity_weight(&self) -> f64 {
        self.tier.device().dram_gbps
    }
}

/// The standard heterogeneous lineup for an `n`-node fleet: tiers
/// cycle Premium, Standard, Edge, Premium, ... so an 8-node fleet gets
/// 3 A100s, 3 RTX 3090s and 2 Orins. Every node gets an untuned
/// artifact for its own device.
pub fn heterogeneous_specs(
    n: usize,
    precision: Precision,
    network: &Network,
    serve: &ServeConfig,
) -> Vec<NodeSpec> {
    const CYCLE: [DeviceTier; 3] = [DeviceTier::Premium, DeviceTier::Standard, DeviceTier::Edge];
    (0..n)
        .map(|id| NodeSpec::untuned(id, CYCLE[id % 3], precision, network, serve.clone()))
        .collect()
}

/// [`heterogeneous_specs`], but every node boots through the schedule
/// cache ([`NodeSpec::cached`]): each tier probes with its own device
/// model, so a store tuned per-tier warm-boots the whole lineup while
/// tiers the store has never seen fall back to untuned specs. Returns
/// the specs plus each node's schedule provenance, index-aligned.
pub fn heterogeneous_specs_cached(
    n: usize,
    precision: Precision,
    network: &Network,
    sample_coords: &[Coord],
    cache: &mut ScheduleCache,
    policy: &DriftPolicy,
    serve: &ServeConfig,
) -> (Vec<NodeSpec>, Vec<BootOrigin>) {
    const CYCLE: [DeviceTier; 3] = [DeviceTier::Premium, DeviceTier::Standard, DeviceTier::Edge];
    (0..n)
        .map(|id| {
            NodeSpec::cached(
                id,
                CYCLE[id % 3],
                precision,
                network,
                sample_coords,
                cache,
                policy,
                serve.clone(),
            )
        })
        .unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::NetworkBuilder;

    fn net() -> Network {
        let mut b = NetworkBuilder::new("node-test", 2);
        let _ = b.conv("c", NetworkBuilder::INPUT, 4, 3, 1);
        b.build()
    }

    #[test]
    fn untuned_spec_boots_clean() {
        let network = net();
        let weights = network.init_weights(0);
        let spec = NodeSpec::untuned(
            0,
            DeviceTier::Standard,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        );
        let engine = spec.boot_engine(&network, &weights);
        assert!(!engine.is_degraded(), "matching artifact loads clean");
        assert_eq!(engine.ctx().device().name, "RTX 3090");
    }

    #[test]
    fn mismatched_artifact_boots_degraded_not_dead() {
        let network = net();
        let weights = network.init_weights(0);
        // An artifact tuned for the Premium tier, booted on Edge.
        let mut spec = NodeSpec::untuned(
            1,
            DeviceTier::Premium,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        );
        spec.tier = DeviceTier::Edge;
        let engine = spec.boot_engine(&network, &weights);
        assert!(engine.is_degraded(), "wrong-device artifact downgrades");
        assert_eq!(engine.ctx().device().name, "Jetson Orin");
    }

    #[test]
    fn cached_boot_hits_own_tier_and_falls_back_elsewhere() {
        use ts_cache::{CacheEntry, ScheduleKey};

        let network = net();
        let weights = network.init_weights(0);
        let coords: Vec<Coord> = (0..32).map(|i| Coord::new(0, i % 8, i / 8, 0)).collect();
        let policy = DriftPolicy::default();
        let mut cache = ScheduleCache::in_memory();

        // Seed the store with a tuned-looking schedule for the
        // Standard tier only.
        let session = Session::new(&network, &coords);
        let ctx = ExecCtx::simulate(DeviceTier::Standard.device(), Precision::Fp16);
        cache
            .insert(CacheEntry {
                key: ScheduleKey::of(&session, &ctx),
                configs: GroupConfigs::uniform(DataflowConfig::gather_scatter(true)),
                tuned_latency_us: 100.0,
                default_latency_us: 200.0,
            })
            .expect("in-memory insert");

        let (specs, origins) = heterogeneous_specs_cached(
            3,
            Precision::Fp16,
            &network,
            &coords,
            &mut cache,
            &policy,
            &ServeConfig::default(),
        );
        assert_eq!(
            origins,
            vec![
                BootOrigin::Fallback, // Premium: never tuned
                BootOrigin::Cached,   // Standard: exact hit
                BootOrigin::Fallback, // Edge: never tuned
            ]
        );
        // Every node still boots, cached or not, and the cached one
        // runs the transferred schedule without downgrades.
        for spec in &specs {
            let engine = spec.boot_engine(&network, &weights);
            assert!(!engine.is_degraded(), "node {} must boot clean", spec.id);
        }
        let standard = specs[1].boot_engine(&network, &weights);
        assert_eq!(
            standard.configs().default,
            DataflowConfig::gather_scatter(true)
        );
    }

    #[test]
    fn heterogeneous_lineup_cycles_tiers() {
        let network = net();
        let specs = heterogeneous_specs(8, Precision::Fp16, &network, &ServeConfig::default());
        let tiers: Vec<DeviceTier> = specs.iter().map(|s| s.tier).collect();
        assert_eq!(
            tiers,
            vec![
                DeviceTier::Premium,
                DeviceTier::Standard,
                DeviceTier::Edge,
                DeviceTier::Premium,
                DeviceTier::Standard,
                DeviceTier::Edge,
                DeviceTier::Premium,
                DeviceTier::Standard,
            ]
        );
        assert_eq!(
            specs.iter().filter(|s| s.tier == DeviceTier::Edge).count(),
            2
        );
    }
}
