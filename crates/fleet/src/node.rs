//! Node specification: which device a fleet slot simulates, which
//! schedule artifact it boots from, and how its server is configured.
//!
//! The paper's central observation is that the best dataflow is
//! device-specific (its Sparse Autotuner re-tunes per device); a
//! heterogeneous fleet therefore boots every node from its *own*
//! [`ScheduleArtifact`] via [`Engine::load_schedule_lenient`] — an
//! artifact tuned for an A100 is rejected (leniently, with typed
//! downgrades) on an Orin rather than silently mispricing it.

use serde::{Deserialize, Serialize};
use ts_core::{Engine, GroupConfigs, Network, NetworkWeights, ScheduleArtifact};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::Device;
use ts_serve::ServeConfig;
use ts_tensor::Precision;

/// The hardware class a fleet node simulates. The three-tier lineup
/// mirrors a real deployment: datacenter accelerators, prosumer GPUs,
/// and the paper's ADAS edge platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceTier {
    /// Datacenter: NVIDIA A100.
    Premium,
    /// Prosumer: NVIDIA RTX 3090 (the paper's main evaluation GPU).
    Standard,
    /// Edge: NVIDIA Jetson Orin.
    Edge,
}

impl DeviceTier {
    /// The simulated device model of this tier.
    pub fn device(self) -> Device {
        match self {
            DeviceTier::Premium => Device::a100(),
            DeviceTier::Standard => Device::rtx3090(),
            DeviceTier::Edge => Device::jetson_orin(),
        }
    }

    /// Short label for reports and trace lanes.
    pub fn label(self) -> &'static str {
        match self {
            DeviceTier::Premium => "premium",
            DeviceTier::Standard => "standard",
            DeviceTier::Edge => "edge",
        }
    }
}

/// Everything needed to boot (and re-boot, after a kill) one node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Stable node index within the fleet.
    pub id: usize,
    /// Hardware class of the simulated device.
    pub tier: DeviceTier,
    /// Numeric precision the node serves at.
    pub precision: Precision,
    /// Serialized [`ScheduleArtifact`] the node boots its engine from.
    /// Always loaded leniently: a mismatched or corrupt artifact boots
    /// a degraded node, never a dead one.
    pub artifact_json: String,
    /// Per-node server configuration.
    pub serve: ServeConfig,
}

impl NodeSpec {
    /// A spec with an untuned (uniform implicit-GEMM) schedule artifact
    /// keyed to this tier's device — the artifact a deployment would
    /// ship before its first autotune pass. Callers with tuned
    /// schedules set `artifact_json` from [`Engine::save_schedule`]
    /// instead.
    pub fn untuned(
        id: usize,
        tier: DeviceTier,
        precision: Precision,
        network: &Network,
        serve: ServeConfig,
    ) -> Self {
        let artifact = ScheduleArtifact::new(
            network.name(),
            &tier.device().name,
            precision,
            GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        );
        Self {
            id,
            tier,
            precision,
            artifact_json: artifact.to_json().expect("uniform artifact serializes"),
            serve,
        }
    }

    /// Boots this node's engine: lenient schedule load against the
    /// tier's device model, so the node always comes up (possibly
    /// degraded, with typed [`ts_core::Downgrade`] records).
    pub fn boot_engine(&self, network: &Network, weights: &NetworkWeights) -> Engine {
        Engine::load_schedule_lenient(
            network.clone(),
            weights.clone(),
            &self.artifact_json,
            ExecCtx::functional(self.tier.device(), self.precision),
        )
    }

    /// Same lenient boot, but in simulate-only mode (no feature math):
    /// what [`crate::FleetSim`] runs, where only the priced
    /// [`ts_core::RunReport`] matters and functional execution would
    /// waste the bench's wall clock on outputs nobody reads.
    pub fn boot_sim_engine(&self, network: &Network, weights: &NetworkWeights) -> Engine {
        Engine::load_schedule_lenient(
            network.clone(),
            weights.clone(),
            &self.artifact_json,
            ExecCtx::simulate(self.tier.device(), self.precision),
        )
    }

    /// Relative serving-capacity prior used to weight this node's share
    /// of the consistent-hash ring ([`crate::Router::weighted`]). DRAM
    /// bandwidth is the proxy: sparse-conv serving is dominated by
    /// mapping and gather/scatter traffic that scales with memory
    /// bandwidth on every workload width, whereas tensor-core peak only
    /// matters on very wide layers (the paper's §6.3 compute-vs-
    /// bandwidth asymmetry cuts the same way).
    pub fn capacity_weight(&self) -> f64 {
        self.tier.device().dram_gbps
    }
}

/// The standard heterogeneous lineup for an `n`-node fleet: tiers
/// cycle Premium, Standard, Edge, Premium, ... so an 8-node fleet gets
/// 3 A100s, 3 RTX 3090s and 2 Orins. Every node gets an untuned
/// artifact for its own device.
pub fn heterogeneous_specs(
    n: usize,
    precision: Precision,
    network: &Network,
    serve: &ServeConfig,
) -> Vec<NodeSpec> {
    const CYCLE: [DeviceTier; 3] = [DeviceTier::Premium, DeviceTier::Standard, DeviceTier::Edge];
    (0..n)
        .map(|id| NodeSpec::untuned(id, CYCLE[id % 3], precision, network, serve.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::NetworkBuilder;

    fn net() -> Network {
        let mut b = NetworkBuilder::new("node-test", 2);
        let _ = b.conv("c", NetworkBuilder::INPUT, 4, 3, 1);
        b.build()
    }

    #[test]
    fn untuned_spec_boots_clean() {
        let network = net();
        let weights = network.init_weights(0);
        let spec = NodeSpec::untuned(
            0,
            DeviceTier::Standard,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        );
        let engine = spec.boot_engine(&network, &weights);
        assert!(!engine.is_degraded(), "matching artifact loads clean");
        assert_eq!(engine.ctx().device().name, "RTX 3090");
    }

    #[test]
    fn mismatched_artifact_boots_degraded_not_dead() {
        let network = net();
        let weights = network.init_weights(0);
        // An artifact tuned for the Premium tier, booted on Edge.
        let mut spec = NodeSpec::untuned(
            1,
            DeviceTier::Premium,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        );
        spec.tier = DeviceTier::Edge;
        let engine = spec.boot_engine(&network, &weights);
        assert!(engine.is_degraded(), "wrong-device artifact downgrades");
        assert_eq!(engine.ctx().device().name, "Jetson Orin");
    }

    #[test]
    fn heterogeneous_lineup_cycles_tiers() {
        let network = net();
        let specs = heterogeneous_specs(8, Precision::Fp16, &network, &ServeConfig::default());
        let tiers: Vec<DeviceTier> = specs.iter().map(|s| s.tier).collect();
        assert_eq!(
            tiers,
            vec![
                DeviceTier::Premium,
                DeviceTier::Standard,
                DeviceTier::Edge,
                DeviceTier::Premium,
                DeviceTier::Standard,
                DeviceTier::Edge,
                DeviceTier::Premium,
                DeviceTier::Standard,
            ]
        );
        assert_eq!(
            specs.iter().filter(|s| s.tier == DeviceTier::Edge).count(),
            2
        );
    }
}
