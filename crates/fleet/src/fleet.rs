//! The live fleet: N [`ts_serve::Server`] nodes behind one
//! stream-affinity [`Router`], with whole-node chaos (kill / restart)
//! layered on top of each node's own worker supervision.

use std::fmt;

use ts_core::{Network, NetworkWeights, SparseTensor};
use ts_obs::{Alert, HealthSnapshot, ObsEvent};
use ts_serve::{Rejected, ResponseHandle, ServeReport, Server};

use crate::node::NodeSpec;
use crate::report::{FleetReport, NodeReport, RoutingCounters};
use crate::router::{NodeLoad, Placement, Router, RouterConfig};

/// Typed fleet-level failure, composing the node-level [`Rejected`]
/// outcomes so router and caller error paths work with `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Every node is dead; the request was never placed.
    NoCapacity,
    /// The chosen node refused the request (its typed reason inside).
    Rejected(Rejected),
    /// The node id does not exist in this fleet.
    UnknownNode {
        /// The offending id.
        id: usize,
        /// How many nodes the fleet has.
        nodes: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoCapacity => write!(f, "no alive node to route to"),
            FleetError::Rejected(r) => write!(f, "node rejected request: {r}"),
            FleetError::UnknownNode { id, nodes } => {
                write!(f, "unknown node {id} (fleet has {nodes})")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Rejected(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Rejected> for FleetError {
    fn from(r: Rejected) -> Self {
        FleetError::Rejected(r)
    }
}

/// One fleet slot: the spec it boots from (kept for restarts), the live
/// server if alive, and the reports of past lifetimes.
struct NodeSlot {
    spec: NodeSpec,
    server: Option<Server>,
    retired: Vec<ServeReport>,
    /// Alert transitions from retired lifetimes (collected at kill
    /// time, before the server is dropped).
    retired_alerts: Vec<Alert>,
    deaths: u64,
}

impl NodeSlot {
    /// This lifetime's report merged with all retired ones.
    fn pooled_report(&self, live: Option<ServeReport>) -> ServeReport {
        let mut reports = self.retired.clone();
        if let Some(r) = live {
            reports.push(r);
        }
        reports
            .into_iter()
            .reduce(|a, b| a.merge(&b))
            .unwrap_or_else(crate::report::empty_report)
    }

    /// Retired-lifetime alerts plus the live server's, in order.
    fn pooled_alerts(&self) -> Vec<Alert> {
        let mut alerts = self.retired_alerts.clone();
        if let Some(s) = &self.server {
            alerts.extend(s.alerts());
        }
        alerts
    }
}

/// A sharded serving fleet. Submissions are routed by stream affinity
/// (see [`Router`]); nodes can be killed and restarted while traffic
/// flows, with every in-flight request resolving to an output or a
/// typed [`Rejected`] — never silence.
pub struct Fleet {
    network: Network,
    weights: NetworkWeights,
    router: Router,
    nodes: Vec<NodeSlot>,
    counters: RoutingCounters,
}

impl Fleet {
    /// Boots one server per spec. Every node loads its artifact
    /// leniently — a corrupt or mismatched schedule boots a degraded
    /// node, never a missing one. The hash ring is capacity-weighted
    /// ([`NodeSpec::capacity_weight`]), so slower tiers home
    /// proportionally fewer streams.
    pub fn boot(
        network: Network,
        weights: NetworkWeights,
        specs: Vec<NodeSpec>,
        router_cfg: RouterConfig,
    ) -> Self {
        let ring_weights: Vec<f64> = specs.iter().map(|s| s.capacity_weight()).collect();
        let router = Router::weighted(router_cfg, &ring_weights);
        let nodes = specs
            .into_iter()
            .map(|spec| {
                let engine = spec.boot_engine(&network, &weights);
                let server = Server::new(engine, spec.serve.clone());
                NodeSlot {
                    spec,
                    server: Some(server),
                    retired: Vec::new(),
                    retired_alerts: Vec::new(),
                    deaths: 0,
                }
            })
            .collect();
        Self {
            network,
            weights,
            router,
            nodes,
            counters: RoutingCounters::default(),
        }
    }

    /// Number of nodes currently alive.
    pub fn alive(&self) -> usize {
        self.nodes.iter().filter(|n| n.server.is_some()).count()
    }

    /// Total number of node slots (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current load snapshot the router decides from.
    fn loads(&self) -> Vec<NodeLoad> {
        self.nodes
            .iter()
            .map(|n| match &n.server {
                None => NodeLoad {
                    alive: false,
                    queue_depth: 0,
                    est_service_us: 0.0,
                    miss_rate: 0.0,
                },
                Some(s) => {
                    let l = s.load();
                    NodeLoad {
                        alive: true,
                        queue_depth: l.queue_depth,
                        est_service_us: l.est_service_us(),
                        miss_rate: l.miss_rate(),
                    }
                }
            })
            .collect()
    }

    fn count_decision(&mut self, placement: Placement, re_homed: bool, migrated: bool) {
        self.counters.routed += 1;
        ts_trace::counter_add("fleet.requests.routed", 1);
        match placement {
            Placement::Affinity => {
                self.counters.affinity += 1;
                ts_trace::counter_add("fleet.requests.affinity", 1);
            }
            Placement::Hashed => {
                self.counters.hashed += 1;
                ts_trace::counter_add("fleet.requests.hashed", 1);
            }
            Placement::Spilled => {
                self.counters.spilled += 1;
                ts_trace::counter_add("fleet.requests.spilled", 1);
            }
        }
        if re_homed {
            self.counters.re_homed += 1;
            ts_trace::counter_add("fleet.streams.re_homed", 1);
        }
        if migrated {
            self.counters.migrated += 1;
            ts_trace::counter_add("fleet.streams.migrated", 1);
        }
    }

    /// Routes and submits one frame. On success the handle resolves to
    /// the serving node's response (or its typed rejection) exactly as
    /// with a single [`Server`].
    ///
    /// # Errors
    ///
    /// [`FleetError::NoCapacity`] with every node dead;
    /// [`FleetError::Rejected`] when the routed node refused admission
    /// (e.g. queue full on a fleet-wide overload).
    pub fn submit(
        &mut self,
        stream: u64,
        frame: SparseTensor,
    ) -> Result<ResponseHandle, FleetError> {
        let loads = self.loads();
        let Some(decision) = self.router.route(stream, &loads) else {
            self.counters.rejected_no_capacity += 1;
            ts_trace::counter_add("fleet.requests.rejected_no_capacity", 1);
            return Err(FleetError::NoCapacity);
        };
        self.count_decision(decision.placement, decision.re_homed, decision.migrated);
        let server = self.nodes[decision.node]
            .server
            .as_ref()
            .expect("router only places on alive nodes");
        // A home movement is exactly the event a post-mortem reader
        // wants in the ring: record it on the node that *gained* the
        // stream (where the map rebuild cost will land).
        if let (Some(kind), Some(t)) = (decision.movement_kind(), server.telemetry()) {
            t.record_event(ObsEvent::Migration {
                at_us: t.now_us(),
                stream,
                node: decision.node as u64,
                kind: kind.to_owned(),
            });
        }
        Ok(server.submit(stream, frame)?)
    }

    /// The node a stream is currently homed on, if any.
    pub fn home_of(&self, stream: u64) -> Option<usize> {
        self.router.home_of(stream)
    }

    /// Per-node rolling-window health, in node order: `None` for dead
    /// nodes and for nodes serving without
    /// [`ts_serve::ServeConfig::with_obs`]. Unlike [`Fleet::report`]
    /// (cumulative since boot), each snapshot covers only the
    /// telemetry window — the "is the fleet healthy *right now*" view.
    pub fn health(&self) -> Vec<Option<HealthSnapshot>> {
        self.nodes
            .iter()
            .map(|n| n.server.as_ref().and_then(|s| s.health_snapshot()))
            .collect()
    }

    /// Node `id`'s flight-recorder ring, oldest first — "what just
    /// happened on that node". Empty for dead nodes, unknown ids, and
    /// nodes serving without telemetry.
    pub fn node_recent_events(&self, id: usize) -> Vec<ObsEvent> {
        self.nodes
            .get(id)
            .and_then(|n| n.server.as_ref())
            .and_then(|s| s.telemetry().map(|t| t.recent_events()))
            .unwrap_or_default()
    }

    /// Whether node `id`'s map cache currently holds `stream`'s maps
    /// (advisory; see [`Server::has_cached_stream`]). `false` for dead
    /// or unknown nodes.
    pub fn node_has_cached_stream(&self, id: usize, stream: u64) -> bool {
        self.nodes
            .get(id)
            .and_then(|n| n.server.as_ref())
            .is_some_and(|s| s.has_cached_stream(stream))
    }

    /// Kills a node: halts its server (backlog shed with typed
    /// rejections, in-flight batches drained — see [`Server::halt`]),
    /// retires its report, and displaces its streams so their next
    /// frames re-home elsewhere. Returns the halted lifetime's report.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownNode`] for a bad id;
    /// [`FleetError::NoCapacity`] if the node is already dead.
    pub fn kill_node(&mut self, id: usize) -> Result<ServeReport, FleetError> {
        let nodes = self.nodes.len();
        let slot = self
            .nodes
            .get_mut(id)
            .ok_or(FleetError::UnknownNode { id, nodes })?;
        let server = slot.server.take().ok_or(FleetError::NoCapacity)?;
        slot.retired_alerts.extend(server.alerts());
        let report = server.halt();
        slot.retired.push(report.clone());
        slot.deaths += 1;
        self.counters.node_deaths += 1;
        ts_trace::counter_add("fleet.nodes.killed", 1);
        self.router.on_node_down(id);
        Ok(report)
    }

    /// Restarts a dead node from its spec: a fresh lenient engine boot
    /// and an empty map cache (its streams re-homed at kill time; any
    /// that hash back will rebuild their maps on first frame).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownNode`] for a bad id;
    /// [`FleetError::Rejected`] if the node is still alive.
    pub fn restart_node(&mut self, id: usize) -> Result<(), FleetError> {
        let nodes = self.nodes.len();
        let network = self.network.clone();
        let weights = self.weights.clone();
        let slot = self
            .nodes
            .get_mut(id)
            .ok_or(FleetError::UnknownNode { id, nodes })?;
        if slot.server.is_some() {
            return Err(FleetError::Rejected(Rejected::ShuttingDown));
        }
        let engine = slot.spec.boot_engine(&network, &weights);
        slot.server = Some(Server::new(engine, slot.spec.serve.clone()));
        self.counters.node_restarts += 1;
        ts_trace::counter_add("fleet.nodes.restarted", 1);
        Ok(())
    }

    /// Live snapshot: every node's pooled report (past lifetimes plus
    /// the live one) merged into a [`FleetReport`].
    pub fn report(&self) -> FleetReport {
        let nodes = self
            .nodes
            .iter()
            .map(|slot| self.node_report(slot, slot.server.as_ref().map(|s| s.report())))
            .collect();
        FleetReport::from_nodes(nodes, self.counters)
    }

    fn node_report(&self, slot: &NodeSlot, live: Option<ServeReport>) -> NodeReport {
        let report = slot.pooled_report(live);
        NodeReport {
            id: slot.spec.id,
            tier: slot.spec.tier,
            device: slot.spec.tier.device().name,
            schedule_downgrades: report.schedule_downgrades,
            deaths: slot.deaths,
            alerts: slot.pooled_alerts(),
            report,
        }
    }

    /// Graceful fleet drain: every alive node serves its backlog and
    /// shuts down; the final merged report is returned.
    pub fn shutdown(self) -> FleetReport {
        let counters = self.counters;
        let nodes: Vec<NodeReport> = self
            .nodes
            .into_iter()
            .map(|mut slot| {
                let alerts = slot.pooled_alerts();
                let live = slot.server.take().map(|s| s.shutdown());
                let report = slot.pooled_report(live);
                NodeReport {
                    id: slot.spec.id,
                    tier: slot.spec.tier,
                    device: slot.spec.tier.device().name,
                    schedule_downgrades: report.schedule_downgrades,
                    deaths: slot.deaths,
                    alerts,
                    report,
                }
            })
            .collect();
        FleetReport::from_nodes(nodes, counters)
    }
}
