//! Stream-affinity routing with load-aware spillover.
//!
//! The router exists because of PR 6's economics: a stream's kernel
//! maps live in exactly one node's `MapCache`, so a frame routed
//! anywhere else pays a from-scratch map build. The policy, in priority
//! order:
//!
//! 1. **Affinity** — a stream that already has a live *home* keeps
//!    going there (its maps are cached there).
//! 2. **Consistent hash** — a stream with no home (first frame, or its
//!    home died) walks a seeded hash ring to the first alive node,
//!    which becomes its new home. The ring spreads streams evenly (or
//!    proportionally to per-node capacity weights, see
//!    [`Router::weighted`]) and moves only the dead node's streams on
//!    failure.
//! 3. **Spillover** — if the chosen home is overloaded, this *frame* is
//!    diverted to the alive node with the shortest estimated wait, but
//!    the home assignment does not move: when the home drains, the
//!    stream snaps back to its cached maps. Re-homing on transient load
//!    would ping-pong streams between nodes and thrash both nodes'
//!    caches.
//! 4. **Migration** — spillover that *persists* is not transient: after
//!    [`RouterConfig::migrate_after`] consecutive spilled frames the
//!    stream's home moves to the spill target. One map rebuild there
//!    buys affinity on a node that can actually keep up.
//!
//! "Overloaded" is a bound on estimated queueing *delay*, not queue
//! length: a node reporting a measured per-frame service time
//! ([`NodeLoad::est_service_us`]) is overloaded when
//! `queue_depth x est_service_us` exceeds
//! [`RouterConfig::spill_wait_us`]. A heterogeneous fleet needs this —
//! ten queued frames are seconds on an edge device and milliseconds on
//! a datacenter GPU, so any uniform depth threshold is wrong on one of
//! them. Nodes that have not reported a service time yet fall back to
//! the [`RouterConfig::spill_queue_depth`] depth bound.
//!
//! Every decision is a pure function of `(router state, loads)` — no
//! clocks, no randomness beyond the construction seed — which is what
//! makes fleet simulation and the routing proptests deterministic.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

/// Routing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Hash-ring points per node. More points smooth the stream
    /// distribution; 64 keeps the spread within a few percent.
    pub virtual_nodes: usize,
    /// Estimated queueing delay (`queue_depth x est_service_us`) past
    /// which a node is overloaded and new frames spill. Only applies to
    /// nodes reporting a measured service time; half the default sim
    /// deadline, so spill engages well before deadlines start missing.
    pub spill_wait_us: f64,
    /// Depth fallback for nodes that have not reported a service time
    /// yet (nothing completed since boot): this many requests in flight
    /// is overloaded.
    pub spill_queue_depth: usize,
    /// A node missing deadlines at this rate is overloaded.
    pub spill_miss_rate: f64,
    /// Consecutive spilled frames after which a stream's home *moves*
    /// to the spill target — persistent pressure means the home cannot
    /// keep up and affinity to it is worthless. `0` disables migration
    /// (homes only ever move on node death).
    pub migrate_after: u32,
    /// Seed of the hash ring (placement is deterministic in it).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            virtual_nodes: 64,
            spill_wait_us: 25_000.0,
            spill_queue_depth: 12,
            spill_miss_rate: 0.5,
            migrate_after: 4,
            seed: 0,
        }
    }
}

/// How a routing decision placed the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Sent to the stream's existing home (cached maps).
    Affinity,
    /// First frame or dead home: consistent-hashed to a new home.
    Hashed,
    /// Home overloaded: diverted for this frame only.
    Spilled,
}

/// One routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The node the frame goes to.
    pub node: usize,
    /// Which policy arm picked it.
    pub placement: Placement,
    /// Whether this decision gave the stream a new home after its old
    /// one died (fleet-level `re_homed` accounting).
    pub re_homed: bool,
    /// Whether this decision moved the stream's home to the spill
    /// target after persistent overload (fleet-level `migrated`
    /// accounting).
    pub migrated: bool,
}

impl Decision {
    /// The home-movement kind of this decision, if any — the `kind`
    /// recorded in the target node's flight recorder as an
    /// [`ts_obs::ObsEvent::Migration`]: `"migrate"` for a
    /// persistent-overload move, `"re_home"` for a move forced by the
    /// old home's death, `None` when the home did not move.
    pub fn movement_kind(&self) -> Option<&'static str> {
        if self.migrated {
            Some("migrate")
        } else if self.re_homed {
            Some("re_home")
        } else {
            None
        }
    }
}

/// Load snapshot of one node, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Whether the node accepts work at all.
    pub alive: bool,
    /// Requests in flight on the node.
    pub queue_depth: usize,
    /// Measured mean service time per request in simulated
    /// microseconds, `0.0` until the node has completed anything. Lets
    /// the router reason about *wait* instead of queue length across
    /// heterogeneous devices.
    pub est_service_us: f64,
    /// Fraction of the node's finished requests that missed deadlines.
    pub miss_rate: f64,
}

impl NodeLoad {
    /// A fresh, idle, alive node.
    pub fn idle() -> Self {
        Self {
            alive: true,
            queue_depth: 0,
            est_service_us: 0.0,
            miss_rate: 0.0,
        }
    }

    /// Estimated queueing delay using `fallback_us` as the service time
    /// for nodes that have not measured one yet.
    fn est_wait_us(&self, fallback_us: f64) -> f64 {
        let s = if self.est_service_us > 0.0 {
            self.est_service_us
        } else {
            fallback_us
        };
        self.queue_depth as f64 * s
    }
}

/// The fleet's stream-affinity router. See the module docs for policy.
#[derive(Debug, Clone)]
pub struct Router {
    cfg: RouterConfig,
    /// Sorted hash ring: (point, node).
    ring: Vec<(u64, usize)>,
    /// Current home of each stream that has ever been routed.
    homes: HashMap<u64, usize>,
    /// Streams whose home died and have not been routed since; their
    /// next decision counts as a re-home.
    displaced: HashSet<u64>,
    /// Consecutive spilled frames per stream; reaching
    /// `cfg.migrate_after` migrates the home. Cleared whenever a frame
    /// lands on the home.
    spill_streaks: HashMap<u64, u32>,
}

/// SplitMix64 finalizer — the same avalanche the serve fault plans use;
/// good dispersion, no allocation, stable across platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Router {
    /// Builds a uniform hash ring for `nodes` nodes: every node gets
    /// `virtual_nodes` ring points, so streams spread evenly.
    pub fn new(cfg: RouterConfig, nodes: usize) -> Self {
        Self::weighted(cfg, &vec![1.0; nodes])
    }

    /// Builds a capacity-weighted hash ring: node `i` gets ring points
    /// proportional to `weights[i]` (the heaviest node gets
    /// `virtual_nodes`, everyone else a proportional share, floored at
    /// one point so no alive node is unreachable). A heterogeneous
    /// fleet uses this so an edge node homes a fraction of the streams
    /// a datacenter node does — uniform hashing would oversubscribe the
    /// slow nodes and turn their streams into permanent spillover.
    /// Non-finite or non-positive weights degrade to one point.
    pub fn weighted(cfg: RouterConfig, weights: &[f64]) -> Self {
        let base = cfg.virtual_nodes.max(1);
        let w_max = weights
            .iter()
            .copied()
            .filter(|w| w.is_finite())
            .fold(0.0_f64, f64::max);
        let mut ring = Vec::new();
        for (node, &w) in weights.iter().enumerate() {
            let points = if w_max > 0.0 && w.is_finite() && w > 0.0 {
                ((base as f64 * w / w_max).round() as usize).max(1)
            } else {
                1
            };
            for replica in 0..points {
                let h = mix(cfg.seed ^ mix((node as u64) << 32 | replica as u64));
                ring.push((h, node));
            }
        }
        ring.sort_unstable();
        Self {
            cfg,
            ring,
            homes: HashMap::new(),
            displaced: HashSet::new(),
            spill_streaks: HashMap::new(),
        }
    }

    /// The node a stream is currently homed on, if any.
    pub fn home_of(&self, stream: u64) -> Option<usize> {
        self.homes.get(&stream).copied()
    }

    /// Walks the ring from the stream's hash to the first alive node.
    fn hash_to_alive(&self, stream: u64, loads: &[NodeLoad]) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let h = mix(self.cfg.seed ^ mix(stream));
        let start = self.ring.partition_point(|&(p, _)| p < h);
        (0..self.ring.len())
            .map(|i| self.ring[(start + i) % self.ring.len()].1)
            .find(|&n| loads.get(n).is_some_and(|l| l.alive))
    }

    fn overloaded(&self, load: &NodeLoad) -> bool {
        if load.miss_rate > self.cfg.spill_miss_rate {
            return true;
        }
        if load.est_service_us > 0.0 {
            load.est_wait_us(0.0) > self.cfg.spill_wait_us
        } else {
            load.queue_depth >= self.cfg.spill_queue_depth
        }
    }

    /// Service time to assume for nodes that have not measured one:
    /// the slowest measured service time among alive nodes (pessimistic
    /// — an unknown node must earn short-wait status), or `1.0` when
    /// nothing has measured yet, which degrades every wait comparison
    /// to plain queue depth.
    fn fallback_service_us(loads: &[NodeLoad]) -> f64 {
        loads
            .iter()
            .filter(|l| l.alive)
            .map(|l| l.est_service_us)
            .fold(0.0_f64, f64::max)
            .max(1.0)
    }

    /// Least-loaded alive node: minimal `(estimated wait, miss_rate)`,
    /// lowest index breaking ties — deterministic for equal loads. With
    /// no measured service times anywhere this is minimal queue depth.
    fn least_loaded(loads: &[NodeLoad]) -> Option<usize> {
        let fallback = Self::fallback_service_us(loads);
        loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.alive)
            .min_by(|(_, a), (_, b)| {
                (a.est_wait_us(fallback), a.miss_rate)
                    .partial_cmp(&(b.est_wait_us(fallback), b.miss_rate))
                    .expect("waits and miss rates are finite")
            })
            .map(|(n, _)| n)
    }

    /// Routes one frame of `stream` given per-node loads (`loads[i]` is
    /// node `i`). Returns `None` when no node is alive.
    pub fn route(&mut self, stream: u64, loads: &[NodeLoad]) -> Option<Decision> {
        let home_alive = self
            .home_of(stream)
            .filter(|&n| loads.get(n).is_some_and(|l| l.alive));
        let (home, placement, re_homed) = match home_alive {
            Some(home) => (home, Placement::Affinity, false),
            None => {
                let home = self.hash_to_alive(stream, loads)?;
                let re_homed = self.displaced.remove(&stream);
                self.homes.insert(stream, home);
                (home, Placement::Hashed, re_homed)
            }
        };
        if self.overloaded(&loads[home]) {
            if let Some(spill) = Self::least_loaded(loads) {
                if spill != home {
                    // Transient overload must not thrash the map
                    // caches, so the home stays put — until the
                    // pressure proves persistent, at which point the
                    // home is the thrash and the stream migrates.
                    let streak = self.spill_streaks.entry(stream).or_insert(0);
                    *streak += 1;
                    let migrated = self.cfg.migrate_after > 0 && *streak >= self.cfg.migrate_after;
                    if migrated {
                        self.homes.insert(stream, spill);
                        self.spill_streaks.remove(&stream);
                    }
                    return Some(Decision {
                        node: spill,
                        placement: Placement::Spilled,
                        re_homed,
                        migrated,
                    });
                }
            }
        }
        self.spill_streaks.remove(&stream);
        Some(Decision {
            node: home,
            placement,
            re_homed,
            migrated: false,
        })
    }

    /// A node died: forget every home pointing at it (their streams
    /// will re-home on their next frame) and return how many streams
    /// were displaced.
    pub fn on_node_down(&mut self, node: usize) -> usize {
        let displaced: Vec<u64> = self
            .homes
            .iter()
            .filter(|&(_, &n)| n == node)
            .map(|(&s, _)| s)
            .collect();
        for s in &displaced {
            self.homes.remove(s);
            self.displaced.insert(*s);
        }
        displaced.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(n: usize) -> Vec<NodeLoad> {
        vec![NodeLoad::idle(); n]
    }

    #[test]
    fn first_frame_hashes_and_sets_home() {
        let mut r = Router::new(RouterConfig::default(), 4);
        let loads = idle(4);
        let d = r.route(9, &loads).expect("has alive nodes");
        assert_eq!(d.placement, Placement::Hashed);
        assert!(!d.re_homed);
        assert_eq!(r.home_of(9), Some(d.node));
        // Second frame sticks.
        let d2 = r.route(9, &loads).expect("routes");
        assert_eq!(d2.placement, Placement::Affinity);
        assert_eq!(d2.node, d.node);
    }

    #[test]
    fn placement_is_deterministic_in_seed() {
        let loads = idle(8);
        let mut a = Router::new(RouterConfig::default(), 8);
        let mut b = Router::new(RouterConfig::default(), 8);
        for s in 0..100u64 {
            assert_eq!(a.route(s, &loads), b.route(s, &loads));
        }
        let mut c = Router::new(
            RouterConfig {
                seed: 1,
                ..RouterConfig::default()
            },
            8,
        );
        let moved = (0..100u64)
            .filter(|&s| c.route(s, &loads).map(|d| d.node) != a.home_of(s))
            .count();
        assert!(moved > 0, "a different seed must shuffle placements");
    }

    #[test]
    fn ring_spreads_streams_across_nodes() {
        let mut r = Router::new(RouterConfig::default(), 8);
        let loads = idle(8);
        let mut counts = [0usize; 8];
        for s in 0..800u64 {
            counts[r.route(s, &loads).expect("routes").node] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(c > 20, "node {n} got {c} of 800 streams");
        }
    }

    #[test]
    fn dead_home_rehomes_once_and_sticks() {
        let mut r = Router::new(RouterConfig::default(), 4);
        let mut loads = idle(4);
        let home = r.route(5, &loads).expect("routes").node;
        loads[home].alive = false;
        assert_eq!(r.on_node_down(home), 1);
        let d = r.route(5, &loads).expect("other nodes alive");
        assert_eq!(d.placement, Placement::Hashed);
        assert!(d.re_homed, "first route after the kill is the re-home");
        assert_ne!(d.node, home);
        let d2 = r.route(5, &loads).expect("routes");
        assert_eq!(d2.placement, Placement::Affinity);
        assert!(!d2.re_homed, "re-home is counted exactly once");
        assert_eq!(d2.node, d.node, "no ping-pong");
    }

    #[test]
    fn overloaded_home_spills_without_moving_home() {
        let mut r = Router::new(RouterConfig::default(), 3);
        let mut loads = idle(3);
        let home = r.route(1, &loads).expect("routes").node;
        loads[home].queue_depth = RouterConfig::default().spill_queue_depth;
        let d = r.route(1, &loads).expect("routes");
        assert_eq!(d.placement, Placement::Spilled);
        assert_ne!(d.node, home);
        assert_eq!(r.home_of(1), Some(home), "home survives the spill");
        // Load drains: the stream snaps back to its cached maps.
        loads[home].queue_depth = 0;
        let d2 = r.route(1, &loads).expect("routes");
        assert_eq!(d2.placement, Placement::Affinity);
        assert_eq!(d2.node, home);
    }

    #[test]
    fn miss_rate_triggers_spill() {
        let mut r = Router::new(RouterConfig::default(), 2);
        let mut loads = idle(2);
        let home = r.route(2, &loads).expect("routes").node;
        loads[home].miss_rate = 0.9;
        let d = r.route(2, &loads).expect("routes");
        assert_eq!(d.placement, Placement::Spilled);
        assert_ne!(d.node, home);
    }

    #[test]
    fn weighted_ring_shares_follow_capacity() {
        // 4x / 1x / 0.25x capacities: homes should land roughly 16:4:1.
        // Extra ring points tighten the share variance enough to assert
        // on the ratios.
        let cfg = RouterConfig {
            virtual_nodes: 512,
            ..RouterConfig::default()
        };
        let mut r = Router::weighted(cfg, &[4.0, 1.0, 0.25]);
        let loads = idle(3);
        let mut counts = [0usize; 3];
        for s in 0..4000u64 {
            counts[r.route(s, &loads).expect("routes").node] += 1;
        }
        assert!(
            counts[0] > 4 * counts[1],
            "heavy node must home the bulk: {counts:?}"
        );
        assert!(
            counts[1] > 2 * counts[2],
            "light node must home the least: {counts:?}"
        );
        assert!(counts[2] > 0, "every node stays reachable: {counts:?}");
        // Uniform weights reproduce the unweighted ring exactly.
        let mut u = Router::new(RouterConfig::default(), 3);
        let mut w = Router::weighted(RouterConfig::default(), &[1.0, 1.0, 1.0]);
        for s in 0..200u64 {
            assert_eq!(u.route(s, &loads), w.route(s, &loads));
        }
    }

    #[test]
    fn wait_bound_spills_slow_node_at_shallow_depth() {
        // 4 frames on a 7ms/frame edge device is a 28ms wait — past
        // the 25ms bound long before the 12-deep depth fallback.
        let mut r = Router::new(RouterConfig::default(), 2);
        let mut loads = idle(2);
        let home = r.route(3, &loads).expect("routes").node;
        loads[home].est_service_us = 7_000.0;
        loads[home].queue_depth = 4;
        let d = r.route(3, &loads).expect("routes");
        assert_eq!(d.placement, Placement::Spilled);
        // The same depth on a fast node is a 4ms wait: no spill.
        loads[home].est_service_us = 1_000.0;
        let d2 = r.route(3, &loads).expect("routes");
        assert_eq!(d2.placement, Placement::Affinity);
    }

    #[test]
    fn spill_prefers_shortest_wait_not_shortest_queue() {
        let mut r = Router::new(RouterConfig::default(), 3);
        let mut loads = idle(3);
        let home = r.route(4, &loads).expect("routes").node;
        for (n, load) in loads.iter_mut().enumerate() {
            if n != home {
                load.est_service_us = 1_000.0;
                load.queue_depth = 2; // 2ms wait
            }
        }
        // The "emptier" node is the slow one: 1 frame x 30ms.
        let slow = (0..3).find(|&n| n != home).expect("three nodes");
        loads[slow].est_service_us = 30_000.0;
        loads[slow].queue_depth = 1;
        loads[home].queue_depth = RouterConfig::default().spill_queue_depth;
        let d = r.route(4, &loads).expect("routes");
        assert_eq!(d.placement, Placement::Spilled);
        assert_ne!(d.node, slow, "spill must weigh wait, not depth");
    }

    #[test]
    fn persistent_overload_migrates_home() {
        let cfg = RouterConfig::default();
        let mut r = Router::new(cfg, 2);
        let mut loads = idle(2);
        let home = r.route(7, &loads).expect("routes").node;
        loads[home].queue_depth = cfg.spill_queue_depth;
        for i in 1..cfg.migrate_after {
            let d = r.route(7, &loads).expect("routes");
            assert_eq!(d.placement, Placement::Spilled);
            assert!(!d.migrated, "spill {i} is still transient");
            assert_eq!(r.home_of(7), Some(home), "home holds through spill {i}");
        }
        let d = r.route(7, &loads).expect("routes");
        assert_eq!(d.placement, Placement::Spilled);
        assert!(d.migrated, "persistent overload moves the home");
        assert_ne!(d.node, home);
        assert_eq!(r.home_of(7), Some(d.node));
        // The stream now has affinity to the node that can keep up.
        let d2 = r.route(7, &loads).expect("routes");
        assert_eq!(d2.placement, Placement::Affinity);
        assert_eq!(d2.node, d.node);
    }

    #[test]
    fn landing_on_home_resets_the_spill_streak() {
        let cfg = RouterConfig::default();
        let mut r = Router::new(cfg, 2);
        let mut loads = idle(2);
        let home = r.route(8, &loads).expect("routes").node;
        for round in 0..3 {
            loads[home].queue_depth = cfg.spill_queue_depth;
            for _ in 0..cfg.migrate_after - 1 {
                let d = r.route(8, &loads).expect("routes");
                assert!(!d.migrated, "round {round} must not migrate");
            }
            // The home drains before the streak completes.
            loads[home].queue_depth = 0;
            let d = r.route(8, &loads).expect("routes");
            assert_eq!(d.placement, Placement::Affinity);
            assert_eq!(d.node, home, "bursty overload keeps the home");
        }
    }

    #[test]
    fn migration_disabled_always_snaps_back() {
        let cfg = RouterConfig {
            migrate_after: 0,
            ..RouterConfig::default()
        };
        let mut r = Router::new(cfg, 2);
        let mut loads = idle(2);
        let home = r.route(9, &loads).expect("routes").node;
        loads[home].queue_depth = cfg.spill_queue_depth;
        for _ in 0..50 {
            let d = r.route(9, &loads).expect("routes");
            assert_eq!(d.placement, Placement::Spilled);
            assert!(!d.migrated);
        }
        assert_eq!(r.home_of(9), Some(home));
    }

    #[test]
    fn all_dead_routes_none() {
        let mut r = Router::new(RouterConfig::default(), 2);
        let mut loads = idle(2);
        loads[0].alive = false;
        loads[1].alive = false;
        assert_eq!(r.route(0, &loads), None);
    }

    #[test]
    fn single_node_fleet_never_spills() {
        let mut r = Router::new(RouterConfig::default(), 1);
        let mut loads = idle(1);
        loads[0].queue_depth = 1000;
        let d = r.route(0, &loads).expect("routes");
        assert_eq!(d.node, 0);
        assert_ne!(d.placement, Placement::Spilled);
    }
}
