//! Deterministic fleet simulation on virtual clocks.
//!
//! The live [`Fleet`](crate::Fleet) runs real threads, so its queue
//! depths and wall latencies vary run to run — fine for chaos tests,
//! useless for a CI-gated benchmark. `FleetSim` removes the wall clock
//! entirely: each node is a virtual server whose per-frame service time
//! is the engine's *simulated* GPU cost (from
//! [`ts_core::Engine::infer_stream`]'s [`RunReport`](ts_core::RunReport)
//! — including the mapping-cost reduction when a cached map is
//! patched), and requests flow through the same [`Router`] the live
//! fleet uses, with loads derived from the virtual clocks. Every number
//! the sim reports is a deterministic function of `(specs, router
//! config, arrival trace, frames, kill schedule)`.
//!
//! Node-kill semantics are *drain-style* failover (the moment chosen
//! for admission cut-off, like connection draining on a deploy):
//! arrivals at or after the kill time see the node dead and re-home;
//! work already admitted completes. The harsher shed-the-backlog path
//! (typed rejections) is exercised by the live fleet via
//! [`ts_serve::Server::halt`].

use std::collections::HashMap;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use ts_core::{
    percentile_sorted, DeltaConfig, Engine, MapUpdate, Network, NetworkWeights, SparseTensor,
    StreamState,
};
use ts_obs::{Alert, SloMonitor, SloPolicy};
use ts_trace::{ArgValue, Subsystem};
use ts_workloads::ArrivalTrace;

use crate::node::NodeSpec;
use crate::report::RoutingCounters;
use crate::router::{NodeLoad, Placement, Router, RouterConfig};

/// A scheduled whole-node failure in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KillEvent {
    /// Which node dies.
    pub node: usize,
    /// Simulated time of death: arrivals at or after this see the node
    /// dead.
    pub at_us: f64,
    /// Optional restart time (`>= at_us`); `None` stays dead.
    pub restart_at_us: Option<f64>,
}

/// Simulation policy: deadline, churn handling, and the kill schedule.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-request deadline in simulated microseconds (arrival to
    /// completion); completions later than this count as misses.
    pub deadline_us: f64,
    /// Churn policy for the per-stream incremental maps.
    pub delta: DeltaConfig,
    /// Whole-node failures to inject.
    pub kills: Vec<KillEvent>,
    /// Multi-window burn-rate alerting over the simulated completions
    /// (see [`ts_obs::SloMonitor`]). The monitor runs on the *virtual*
    /// clock: each completion is observed at its admission time with
    /// its (deterministically known) deadline outcome, so the time
    /// wheel sees monotone timestamps and the resulting
    /// [`SimReport::alerts`] sequence is bit-identical across runs.
    /// `None` disables alerting.
    pub slo: Option<SloPolicy>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            deadline_us: 50_000.0,
            delta: DeltaConfig::default(),
            kills: Vec::new(),
            slo: Some(SloPolicy::default()),
        }
    }
}

/// Per-node tallies of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNodeStats {
    /// Node index.
    pub id: usize,
    /// Tier label ("premium" / "standard" / "edge").
    pub tier: String,
    /// Simulated device name.
    pub device: String,
    /// Frames this node served.
    pub served: u64,
    /// Simulated microseconds the node spent serving.
    pub busy_us: f64,
}

/// Deterministic results of one simulated fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Frames served to completion.
    pub completed: u64,
    /// Arrivals refused because no node was alive.
    pub rejected_no_capacity: u64,
    /// Router placement and lifecycle tallies.
    pub counters: RoutingCounters,
    /// Completed frames per simulated second
    /// (`completed / makespan_us * 1e6`).
    pub fps_sim: f64,
    /// First arrival to last completion, simulated microseconds.
    pub makespan_us: f64,
    /// Mean arrival-to-completion latency, simulated microseconds.
    pub mean_latency_us: f64,
    /// Median latency.
    pub p50_latency_us: f64,
    /// 99th-percentile latency (the SLO tail).
    pub p99_latency_us: f64,
    /// Completions later than the deadline.
    pub deadline_misses: u64,
    /// `deadline_misses / completed` (0 when nothing completed).
    pub miss_rate: f64,
    /// Edge-triggered SLO alert transitions, in virtual-time order
    /// (empty when [`SimConfig::slo`] is `None`). Deterministic: a
    /// mid-trace node kill trips the fast window at the same virtual
    /// microsecond every run.
    #[serde(default)]
    pub alerts: Vec<Alert>,
    /// Map-cache lookups that found the stream's state on the serving
    /// node.
    pub map_hits: u64,
    /// Lookups that built from scratch.
    pub map_misses: u64,
    /// Hits resolved by an in-place patch.
    pub map_patched: u64,
    /// Frames that rebuilt despite a cached state (churn over
    /// threshold).
    pub map_rebuilt: u64,
    /// Per-node tallies, sorted by id.
    pub per_node: Vec<SimNodeStats>,
}

impl SimReport {
    /// Fraction of lookups resolved by an in-place patch — directly
    /// comparable to [`ts_serve::ServeReport::map_reuse_rate`] and the
    /// single-node `BENCH_stream.json` reuse behavior.
    pub fn reuse_rate(&self) -> f64 {
        let lookups = self.map_hits + self.map_misses;
        if lookups == 0 {
            return 0.0;
        }
        self.map_patched as f64 / lookups as f64
    }
}

/// Builds a deterministic bank of lidar frames: `streams` independent
/// driving scenes of `frames` frames each, at angular-resolution
/// `scale` (see [`ts_workloads::LidarConfig::scaled`]). Frame `f` of
/// stream `s` is `bank[s][f]`. The same `(streams, frames, scale,
/// seed)` always produces the same bank, so sim runs stay reproducible
/// end to end.
pub fn frame_bank(streams: usize, frames: usize, scale: f32, seed: u64) -> Vec<Vec<SparseTensor>> {
    // Dense angular sampling keeps temporal coherence real (several
    // rays per surface voxel, so a small ego shift re-hits the same
    // voxels), zero dropout keeps churn purely motion-driven, and pure
    // translation avoids yaw rotating every ray — the same calibration
    // as the single-node `stream_reuse` bench, so fleet reuse rates are
    // directly comparable to `BENCH_stream.json`.
    let cfg = ts_workloads::LidarConfig {
        beams: 48,
        azimuth_steps: 480,
        elevation_min_deg: -25.0,
        elevation_max_deg: 3.0,
        max_range_m: 40.0,
        voxel_size_m: 0.3,
        obstacles: 8,
        dropout: 0.0,
    }
    .scaled(scale);
    (0..streams)
        .map(|s| {
            let per_stream = seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Slow ego motion puts churn near the `stream_reuse`
            // bench's "low" sweep (~25-30% per frame at scale >= 0.3),
            // safely under the default 35% rebuild threshold, so the
            // patched-map fast path dominates exactly as it does in
            // `BENCH_stream.json`. Below scale ~0.25 sampling gets too
            // sparse and churn tips frames into rebuilds.
            let mut stream = ts_workloads::LidarStream::new(cfg, per_stream).with_motion(0.02, 0.0);
            (0..frames)
                .map(|_| stream.next_frame().into_tensor())
                .collect()
        })
        .collect()
}

struct SimNode {
    engine: Engine,
    tier: String,
    device: String,
    alive: bool,
    /// Virtual clock: the node is busy until this simulated time.
    clock: f64,
    /// Finish times of admitted-but-unfinished requests, ascending;
    /// its length (after expiring entries `<= now`) is the queue depth
    /// the router sees.
    inflight: VecDeque<f64>,
    /// Per-stream incremental map states — the node's "map cache".
    states: HashMap<u64, StreamState>,
    served: u64,
    busy_us: f64,
    misses: u64,
    finished: u64,
}

impl SimNode {
    fn load(&mut self, now: f64) -> NodeLoad {
        while self.inflight.front().is_some_and(|&f| f <= now) {
            self.inflight.pop_front();
        }
        NodeLoad {
            alive: self.alive,
            queue_depth: self.inflight.len(),
            est_service_us: if self.served == 0 {
                0.0
            } else {
                self.busy_us / self.served as f64
            },
            miss_rate: if self.finished == 0 {
                0.0
            } else {
                self.misses as f64 / self.finished as f64
            },
        }
    }
}

/// Deterministic discrete-time fleet simulator. See the module docs.
pub struct FleetSim {
    nodes: Vec<SimNode>,
    router: Router,
    cfg: SimConfig,
}

impl FleetSim {
    /// Boots a virtual node per spec: the same lenient artifact load as
    /// the live fleet, but in simulate-only mode (only the priced
    /// [`ts_core::RunReport`] matters here) and behind the same
    /// capacity-weighted ring. The [`ts_serve::ServeConfig`] inside
    /// each spec is unused — the sim has no batcher or worker pool.
    pub fn new(
        network: &Network,
        weights: &NetworkWeights,
        specs: &[NodeSpec],
        router_cfg: RouterConfig,
        cfg: SimConfig,
    ) -> Self {
        let ring_weights: Vec<f64> = specs.iter().map(|s| s.capacity_weight()).collect();
        let nodes = specs
            .iter()
            .map(|spec| SimNode {
                engine: spec.boot_sim_engine(network, weights),
                tier: spec.tier.label().to_owned(),
                device: spec.tier.device().name,
                alive: true,
                clock: 0.0,
                inflight: VecDeque::new(),
                states: HashMap::new(),
                served: 0,
                busy_us: 0.0,
                misses: 0,
                finished: 0,
            })
            .collect();
        Self {
            nodes,
            router: Router::weighted(router_cfg, &ring_weights),
            cfg,
        }
    }

    /// Applies kill/restart events scheduled at or before `now`.
    fn apply_lifecycle(&mut self, now: f64, counters: &mut RoutingCounters) {
        // Events fire once; processed entries are marked consumed.
        let mut fired = Vec::new();
        for (i, kill) in self.cfg.kills.iter().enumerate() {
            if kill.at_us <= now {
                fired.push((i, *kill));
            }
        }
        for (i, kill) in fired {
            if let Some(node) = self.nodes.get_mut(kill.node) {
                if node.alive {
                    node.alive = false;
                    node.states.clear();
                    counters.node_deaths += 1;
                    ts_trace::counter_add("fleet.nodes.killed", 1);
                    self.router.on_node_down(kill.node);
                }
                if let Some(restart) = kill.restart_at_us {
                    if restart <= now && !node.alive {
                        node.alive = true;
                        node.clock = node.clock.max(restart);
                        counters.node_restarts += 1;
                        ts_trace::counter_add("fleet.nodes.restarted", 1);
                    } else if restart > now {
                        // Keep the restart pending: replace the kill
                        // with an already-dead marker that only
                        // restarts.
                        self.cfg.kills[i] = KillEvent {
                            node: kill.node,
                            at_us: f64::NEG_INFINITY,
                            restart_at_us: Some(restart),
                        };
                        continue;
                    }
                }
            }
            // Mark consumed.
            self.cfg.kills[i] = KillEvent {
                node: usize::MAX,
                at_us: f64::INFINITY,
                restart_at_us: None,
            };
        }
    }

    /// Runs the trace to completion. `frames[s][f]` is frame `f` of
    /// stream `s`; the trace's `frames_per_stream()` gives the minimum
    /// shape. Frames with compile errors (malformed inputs) are skipped
    /// deterministically — production inputs are validated upstream.
    pub fn run(&mut self, trace: &ArrivalTrace, frames: &[Vec<SparseTensor>]) -> SimReport {
        let mut counters = RoutingCounters::default();
        let mut rejected_no_capacity = 0u64;
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.arrivals.len());
        let mut deadline_misses = 0u64;
        let mut map_hits = 0u64;
        let mut map_misses = 0u64;
        let mut map_patched = 0u64;
        let mut map_rebuilt = 0u64;
        let mut last_finish = f64::NEG_INFINITY;
        let t0 = trace.arrivals.first().map_or(0.0, |a| a.at_us);
        let mut slo = self.cfg.slo.clone().map(SloMonitor::new);
        let mut alerts: Vec<Alert> = Vec::new();

        for arrival in &trace.arrivals {
            let now = arrival.at_us;
            self.apply_lifecycle(now, &mut counters);
            // Evaluate before observing this arrival so clears can fire
            // even through stretches where every arrival is rejected.
            if let Some(m) = slo.as_mut() {
                alerts.extend(m.evaluate_at(now as u64));
            }

            let loads: Vec<NodeLoad> = self.nodes.iter_mut().map(|n| n.load(now)).collect();
            let Some(decision) = self.router.route(arrival.stream, &loads) else {
                rejected_no_capacity += 1;
                counters.rejected_no_capacity += 1;
                ts_trace::counter_add("fleet.requests.rejected_no_capacity", 1);
                continue;
            };
            counters.routed += 1;
            ts_trace::counter_add("fleet.requests.routed", 1);
            match decision.placement {
                Placement::Affinity => counters.affinity += 1,
                Placement::Hashed => counters.hashed += 1,
                Placement::Spilled => counters.spilled += 1,
            }
            if decision.re_homed {
                counters.re_homed += 1;
                ts_trace::counter_add("fleet.streams.re_homed", 1);
            }
            if decision.migrated {
                counters.migrated += 1;
                ts_trace::counter_add("fleet.streams.migrated", 1);
            }

            let frame = &frames[arrival.stream as usize][arrival.frame];
            let node = &mut self.nodes[decision.node];
            let hit = node.states.contains_key(&arrival.stream);
            let mut state = node.states.remove(&arrival.stream);
            let Ok((_out, report, outcome)) =
                node.engine.infer_stream(&mut state, frame, &self.cfg.delta)
            else {
                continue;
            };
            if let Some(s) = state {
                node.states.insert(arrival.stream, s);
            }
            if hit {
                map_hits += 1;
                match outcome.kind {
                    MapUpdate::Patched => map_patched += 1,
                    MapUpdate::Rebuilt => map_rebuilt += 1,
                }
            } else {
                map_misses += 1;
            }

            let service_us = report.total_us();
            let start = now.max(node.clock);
            let finish = start + service_us;
            node.clock = finish;
            node.inflight.push_back(finish);
            node.served += 1;
            node.busy_us += service_us;
            node.finished += 1;
            last_finish = last_finish.max(finish);

            let latency = finish - now;
            let missed = latency > self.cfg.deadline_us;
            if missed {
                deadline_misses += 1;
                node.misses += 1;
            }
            if let Some(m) = slo.as_mut() {
                m.observe_at(now as u64, missed);
                alerts.extend(m.evaluate_at(now as u64));
            }
            latencies.push(latency);
            ts_trace::sim_span(
                Subsystem::Fleet,
                &format!("node-{}", decision.node),
                "frame",
                service_us,
                vec![
                    ("stream".to_owned(), ArgValue::U64(arrival.stream)),
                    ("hit".to_owned(), ArgValue::Bool(hit)),
                ],
            );
        }

        let completed = latencies.len() as u64;
        let makespan_us = if completed == 0 {
            0.0
        } else {
            (last_finish - t0).max(f64::MIN_POSITIVE)
        };
        let mean_latency_us = if completed == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / completed as f64
        };
        let mut sorted = latencies;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        SimReport {
            completed,
            rejected_no_capacity,
            counters,
            fps_sim: if makespan_us > 0.0 {
                completed as f64 / makespan_us * 1e6
            } else {
                0.0
            },
            makespan_us,
            mean_latency_us,
            p50_latency_us: percentile_sorted(&sorted, 0.50).unwrap_or(0.0),
            p99_latency_us: percentile_sorted(&sorted, 0.99).unwrap_or(0.0),
            deadline_misses,
            miss_rate: if completed == 0 {
                0.0
            } else {
                deadline_misses as f64 / completed as f64
            },
            alerts,
            map_hits,
            map_misses,
            map_patched,
            map_rebuilt,
            per_node: self
                .nodes
                .iter()
                .enumerate()
                .map(|(id, n)| SimNodeStats {
                    id,
                    tier: n.tier.clone(),
                    device: n.device.clone(),
                    served: n.served,
                    busy_us: n.busy_us,
                })
                .collect(),
        }
    }
}
