//! ts-fleet: a sharded, multi-device serving fleet for sparse
//! convolution inference.
//!
//! The paper tunes one engine for one GPU; a deployment runs many GPUs
//! of different classes behind one endpoint. This crate stands up N
//! [`ts_serve::Server`] nodes — each simulating its own device
//! (A100 / RTX 3090 / Jetson Orin) and booting its own per-device
//! [`ts_core::ScheduleArtifact`] leniently — and routes streaming
//! point-cloud requests across them.
//!
//! # Why stream affinity
//!
//! Streaming inference gets its speedup from *incremental kernel-map
//! reuse*: a frame served on the node that holds the stream's cached
//! maps pays the cheap patch path; anywhere else it rebuilds from
//! scratch. Placement therefore optimizes for locality first:
//!
//! 1. **Affinity** — a stream with a live home goes back to it.
//! 2. **Consistent hash** — new or orphaned streams walk a hashed ring
//!    to the first alive node, which becomes their home. Ring placement
//!    depends only on `(seed, stream, node count)`, so it is stable
//!    across runs and across unrelated node deaths.
//! 3. **Spillover** — when the home is overloaded (deep queue or high
//!    deadline-miss rate) a frame diverts to the least-loaded node
//!    *without moving the home*: one rebuilt map on the spill target
//!    beats oscillating the cache between two nodes.
//!
//! # Layers
//!
//! - [`Router`]: the placement policy alone — pure, deterministic,
//!   property-tested.
//! - [`Fleet`]: the live threaded fleet (real servers, chaos via
//!   [`Fleet::kill_node`] / [`Fleet::restart_node`], merged
//!   [`FleetReport`]).
//! - [`FleetSim`]: the same routing over virtual per-node clocks with
//!   simulated-microsecond service times — fully deterministic, and the
//!   source of the CI-gated `BENCH_fleet.json` scaling numbers.
//! - [`ts_workloads::ArrivalTrace`]: open-loop Poisson arrivals shared
//!   by both layers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fleet;
mod node;
mod report;
mod router;
mod sim;

pub use fleet::{Fleet, FleetError};
pub use node::{heterogeneous_specs, heterogeneous_specs_cached, DeviceTier, NodeSpec};
pub use report::{FleetReport, NodeReport, RoutingCounters};
pub use router::{Decision, NodeLoad, Placement, Router, RouterConfig};
pub use sim::{frame_bank, FleetSim, KillEvent, SimConfig, SimNodeStats, SimReport};
// Re-exported so fleet users configure SLO alerting and read health
// snapshots without a direct ts-obs dependency.
pub use ts_obs::{Alert, AlertLevel, AlertState, HealthSnapshot, SloPolicy};
// Re-exported so fleet users boot nodes through the schedule cache
// ([`NodeSpec::cached`]) without a direct ts-cache dependency.
pub use ts_cache::{BootOrigin, DriftPolicy, ScheduleCache};
