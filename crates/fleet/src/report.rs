//! Fleet-level reporting: per-node [`ServeReport`]s plus the routing
//! counters, merged with the exact pooled statistics of
//! [`ServeReport::merge`] / [`ts_core::LatencyStats::merge`].

use serde::{Deserialize, Serialize};
use ts_obs::Alert;
use ts_serve::ServeReport;

use crate::node::DeviceTier;

/// One node's contribution to a [`FleetReport`]. A node killed and
/// restarted contributes one `NodeReport` whose `report` merges every
/// epoch it served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node index within the fleet.
    pub id: usize,
    /// Hardware class the node simulated.
    pub tier: DeviceTier,
    /// Simulated device name (e.g. "A100").
    pub device: String,
    /// Schedule slots the node booted degraded (lenient artifact load).
    pub schedule_downgrades: u64,
    /// Times the node was killed by fleet chaos.
    pub deaths: u64,
    /// SLO alert transitions the node's telemetry emitted, pooled
    /// across its lifetimes. Empty when the node runs without
    /// [`ts_serve::ServeConfig::with_obs`].
    #[serde(default)]
    pub alerts: Vec<Alert>,
    /// The node's serving report, pooled across its lifetimes.
    pub report: ServeReport,
}

/// Aggregated view of a whole fleet run: the merged serving report plus
/// the router's placement accounting. Serializes to JSON for benches
/// and dashboards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-node reports, sorted by node id.
    pub nodes: Vec<NodeReport>,
    /// All node reports pooled via [`ServeReport::merge`] — exact
    /// counters, exact pooled mean/variance, run-weighted percentiles.
    pub merged: ServeReport,
    /// Requests the router placed (all placements).
    pub routed: u64,
    /// Requests that went to their stream's live home.
    pub affinity: u64,
    /// Requests consistent-hashed to a new home (first frame or dead
    /// home).
    pub hashed: u64,
    /// Requests diverted off an overloaded home for one frame.
    pub spilled: u64,
    /// Streams that acquired a new home after their node died.
    pub re_homed: u64,
    /// Streams whose home migrated off a persistently overloaded node.
    #[serde(default)]
    pub migrated: u64,
    /// Whole-node kills executed.
    pub node_deaths: u64,
    /// Node restarts executed.
    pub node_restarts: u64,
    /// Requests refused because no node was alive.
    pub rejected_no_capacity: u64,
    /// All nodes' SLO alert transitions flattened in node order — the
    /// fleet-wide alert log an operator reads first after a chaos run.
    #[serde(default)]
    pub alerts: Vec<Alert>,
}

impl FleetReport {
    /// Pools the node reports (plus the given routing counters) into a
    /// fleet report. `nodes` must already carry per-node lifetimes
    /// merged.
    pub fn from_nodes(nodes: Vec<NodeReport>, counters: RoutingCounters) -> Self {
        let merged = nodes
            .iter()
            .map(|n| &n.report)
            .fold(None::<ServeReport>, |acc, r| {
                Some(match acc {
                    None => r.clone(),
                    Some(m) => m.merge(r),
                })
            })
            .unwrap_or_else(empty_report);
        let alerts = nodes.iter().flat_map(|n| n.alerts.clone()).collect();
        Self {
            nodes,
            merged,
            routed: counters.routed,
            affinity: counters.affinity,
            hashed: counters.hashed,
            spilled: counters.spilled,
            re_homed: counters.re_homed,
            migrated: counters.migrated,
            node_deaths: counters.node_deaths,
            node_restarts: counters.node_restarts,
            rejected_no_capacity: counters.rejected_no_capacity,
            alerts,
        }
    }

    /// Fraction of routed requests that landed on their stream's home
    /// (the map-cache locality the router exists to protect).
    pub fn affinity_rate(&self) -> f64 {
        if self.routed == 0 {
            return 0.0;
        }
        self.affinity as f64 / self.routed as f64
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The router-side tallies a [`Fleet`](crate::Fleet) or
/// [`FleetSim`](crate::FleetSim) accumulates while placing requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingCounters {
    /// Requests placed (all arms).
    pub routed: u64,
    /// Placed on the live home.
    pub affinity: u64,
    /// Consistent-hashed to a (new) home.
    pub hashed: u64,
    /// Diverted off an overloaded home.
    pub spilled: u64,
    /// Streams given a new home after a node death.
    pub re_homed: u64,
    /// Streams whose home moved to the spill target after persistent
    /// overload ([`RouterConfig::migrate_after`](crate::RouterConfig)
    /// consecutive spills).
    #[serde(default)]
    pub migrated: u64,
    /// Whole-node kills.
    pub node_deaths: u64,
    /// Node restarts.
    pub node_restarts: u64,
    /// Requests refused with no alive node.
    pub rejected_no_capacity: u64,
}

/// An all-zero serving report for a fleet (or node) that served
/// nothing.
pub(crate) fn empty_report() -> ServeReport {
    ServeReport {
        completed: 0,
        rejected_queue_full: 0,
        rejected_bad_frame: 0,
        shed_deadline: 0,
        shed_crashed: 0,
        shed_halt: 0,
        deadline_misses: 0,
        worker_panics: 0,
        worker_stalls: 0,
        worker_restarts: 0,
        requeued: 0,
        schedule_downgrades: 0,
        map_cache_hits: 0,
        map_cache_misses: 0,
        map_patched: 0,
        map_rebuilt: 0,
        map_evicted: 0,
        map_invalidated: 0,
        wall_s: 0.0,
        throughput_fps: 0.0,
        sim_us_total: 0.0,
        batch_sizes: Vec::new(),
        queue_depths: Vec::new(),
        streams: Vec::new(),
        overall: None,
        trace_path: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fleet_report_is_finite_everywhere() {
        let r = FleetReport::from_nodes(Vec::new(), RoutingCounters::default());
        assert_eq!(r.merged.completed, 0);
        assert_eq!(r.affinity_rate(), 0.0);
        assert_eq!(r.merged.deadline_miss_rate(), 0.0);
        assert!(r.alerts.is_empty());
        let json = r.to_json().expect("serializes");
        assert_eq!(FleetReport::from_json(&json).expect("parses"), r);
    }

    fn node(id: usize, report: ServeReport, alerts: Vec<Alert>) -> NodeReport {
        NodeReport {
            id,
            tier: DeviceTier::Standard,
            device: "test".to_owned(),
            schedule_downgrades: 0,
            deaths: 0,
            alerts,
            report,
        }
    }

    /// A node that served nothing (all-zero report, empty histograms)
    /// must merge as identity: the busy node's percentiles and
    /// histograms come through untouched, nothing divides by zero.
    #[test]
    fn idle_node_does_not_skew_fleet_percentiles() {
        let busy = {
            let mut r = empty_report();
            r.completed = 4;
            r.batch_sizes = vec![ts_serve::HistogramBucket { value: 2, count: 2 }];
            r.overall = ts_core::LatencyStats::from_latencies_us(&[100.0, 200.0, 300.0, 400.0]);
            r
        };
        let fleet = FleetReport::from_nodes(
            vec![
                node(0, busy.clone(), Vec::new()),
                node(1, empty_report(), Vec::new()),
            ],
            RoutingCounters::default(),
        );
        assert_eq!(fleet.merged.completed, 4);
        assert_eq!(fleet.merged.batch_sizes, busy.batch_sizes);
        let pooled = fleet.merged.overall.expect("busy side survives");
        let alone = busy.overall.expect("busy");
        assert_eq!(pooled.runs, alone.runs);
        assert_eq!(pooled.p50_us, alone.p50_us);
        assert_eq!(pooled.p99_us, alone.p99_us);
        assert_eq!(fleet.merged.deadline_miss_rate(), 0.0);
    }

    /// Node alert logs flatten into the fleet-wide log in node order
    /// and survive a JSON round trip (including the `#[serde(default)]`
    /// path for reports written before the field existed).
    #[test]
    fn alerts_flatten_in_node_order_and_round_trip() {
        let alert = |at_us: u64| Alert {
            level: ts_obs::AlertLevel::PageWorthy,
            state: ts_obs::AlertState::Tripped,
            at_us,
            burn_rate: 42.0,
            miss_rate: 0.42,
            window_us: 2_000,
            samples: 17,
        };
        let fleet = FleetReport::from_nodes(
            vec![
                node(0, empty_report(), vec![alert(10)]),
                node(1, empty_report(), vec![alert(5), alert(20)]),
            ],
            RoutingCounters::default(),
        );
        assert_eq!(
            fleet.alerts.iter().map(|a| a.at_us).collect::<Vec<_>>(),
            vec![10, 5, 20]
        );
        let json = fleet.to_json().expect("serializes");
        assert_eq!(FleetReport::from_json(&json).expect("parses"), fleet);
    }
}
