//! Deterministic fleet-sim tests: bit-identical reports across runs,
//! drain-style kill semantics, capacity scaling with node count, and
//! map-reuse behavior matching the single-node streaming path.

use ts_core::{Network, NetworkBuilder};
use ts_fleet::{
    frame_bank, heterogeneous_specs, AlertLevel, AlertState, DeviceTier, FleetSim, KillEvent,
    NodeSpec, RouterConfig, SimConfig, SloPolicy,
};
use ts_serve::ServeConfig;
use ts_tensor::Precision;
use ts_workloads::{ArrivalConfig, ArrivalTrace};

fn net() -> Network {
    let mut b = NetworkBuilder::new("fleet-sim", 4);
    let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
    let _ = b.conv("head", c, 2, 1, 1);
    b.build()
}

fn trace(count: usize) -> ArrivalTrace {
    ArrivalTrace::generate(
        ArrivalConfig {
            streams: 8,
            rate_per_s: 400.0,
            count,
        },
        21,
    )
}

fn bank(trace: &ArrivalTrace, scale: f32) -> Vec<Vec<ts_core::SparseTensor>> {
    let frames = trace.frames_per_stream().into_iter().max().unwrap_or(0);
    frame_bank(8, frames, scale, 5)
}

#[test]
fn sim_is_deterministic() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = heterogeneous_specs(4, Precision::Fp16, &network, &ServeConfig::default());
    let t = trace(60);
    let frames = bank(&t, 0.15);
    let run = |_: ()| {
        let mut sim = FleetSim::new(
            &network,
            &weights,
            &specs,
            RouterConfig::default(),
            SimConfig::default(),
        );
        sim.run(&t, &frames)
    };
    let a = run(());
    let b = run(());
    assert_eq!(a, b, "same inputs must give a bit-identical report");
    assert_eq!(a.completed, 60);
    assert_eq!(a.rejected_no_capacity, 0);
    assert!(a.fps_sim > 0.0);
    assert!(a.p99_latency_us >= a.p50_latency_us);
}

#[test]
fn kill_drains_and_rehomes_then_restart_recovers() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = heterogeneous_specs(4, Precision::Fp16, &network, &ServeConfig::default());
    let t = trace(80);
    let frames = bank(&t, 0.15);
    let kill_at = t.arrivals[40].at_us;
    let mut sim = FleetSim::new(
        &network,
        &weights,
        &specs,
        RouterConfig::default(),
        SimConfig {
            kills: vec![KillEvent {
                node: 0,
                at_us: kill_at,
                restart_at_us: Some(kill_at + 20_000.0),
            }],
            ..SimConfig::default()
        },
    );
    let r = sim.run(&t, &frames);
    assert_eq!(r.counters.node_deaths, 1);
    assert_eq!(r.counters.node_restarts, 1);
    // Drain semantics: arrivals after the kill re-route, none are lost.
    assert_eq!(r.completed, 80);
    assert_eq!(r.rejected_no_capacity, 0);
    assert!(
        r.counters.re_homed >= 1,
        "streams homed on node 0 must re-home after the kill"
    );
    // Node 0 served before the kill but nothing between kill and restart.
    assert!(r.per_node[0].served > 0);
}

#[test]
fn all_nodes_dead_rejects_with_no_capacity() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = heterogeneous_specs(2, Precision::Fp16, &network, &ServeConfig::default());
    let t = trace(30);
    let frames = bank(&t, 0.15);
    let kill_at = t.arrivals[10].at_us;
    let mut sim = FleetSim::new(
        &network,
        &weights,
        &specs,
        RouterConfig::default(),
        SimConfig {
            kills: vec![
                KillEvent {
                    node: 0,
                    at_us: kill_at,
                    restart_at_us: None,
                },
                KillEvent {
                    node: 1,
                    at_us: kill_at,
                    restart_at_us: None,
                },
            ],
            ..SimConfig::default()
        },
    );
    let r = sim.run(&t, &frames);
    assert_eq!(r.completed, 10);
    assert_eq!(r.rejected_no_capacity, 20);
    assert_eq!(r.completed + r.rejected_no_capacity, 30);
}

/// The CI contract for the SLO monitor: a mid-trace node kill trips
/// the fast-window (PageWorthy) burn-rate alert, the restart clears
/// it, and the whole alert sequence is bit-identical across runs.
///
/// Shape: a Premium + Edge pair under an arrival rate the pair handles
/// easily but the Edge node alone cannot (~165us/frame measured vs
/// ~111us inter-arrival). Killing Premium funnels everything onto
/// Edge, whose backlog pushes latencies past the deadline; the miss
/// streak burns the fast window at ~100x budget. After the restart,
/// the router spills the backlogged Edge's frames back to Premium, the
/// misses age out of the fast window, and the alert clears.
#[test]
fn mid_trace_kill_trips_fast_alert_and_restart_clears() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = vec![
        NodeSpec::untuned(
            0,
            DeviceTier::Premium,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        ),
        NodeSpec::untuned(
            1,
            DeviceTier::Edge,
            Precision::Fp16,
            &network,
            ServeConfig::default(),
        ),
    ];
    let t = ArrivalTrace::generate(
        ArrivalConfig {
            streams: 8,
            rate_per_s: 9_000.0,
            count: 400,
        },
        33,
    );
    let frames = bank(&t, 0.15);
    let kill_at = t.arrivals[100].at_us;
    let restart_at = t.arrivals[250].at_us;
    let cfg = SimConfig {
        deadline_us: 2_000.0,
        kills: vec![KillEvent {
            node: 0,
            at_us: kill_at,
            restart_at_us: Some(restart_at),
        }],
        // Windows scaled to the trace (44ms of virtual time): the fast
        // window holds ~18 arrivals, the burn thresholds are the SRE
        // defaults.
        slo: Some(SloPolicy {
            fast_window_us: 2_000,
            slow_window_us: 20_000,
            min_samples: 5,
            ..SloPolicy::default()
        }),
        ..SimConfig::default()
    };
    // Spill once a home's estimated wait is worth half the deadline, so
    // recovery actually routes around the drowned Edge node.
    let router = RouterConfig {
        spill_wait_us: 1_000.0,
        ..RouterConfig::default()
    };
    let run = |_: ()| {
        let mut sim = FleetSim::new(&network, &weights, &specs, router, cfg.clone());
        sim.run(&t, &frames)
    };
    let a = run(());
    let b = run(());
    assert_eq!(a, b, "the alert sequence must be bit-identical");
    assert_eq!(a.counters.node_deaths, 1);
    assert_eq!(a.counters.node_restarts, 1);
    assert!(a.deadline_misses > 0, "the outage must cause misses");

    let pages: Vec<_> = a
        .alerts
        .iter()
        .filter(|al| al.level == AlertLevel::PageWorthy)
        .collect();
    let trip = pages
        .iter()
        .position(|al| al.state == AlertState::Tripped)
        .expect("the kill must trip the fast-window page alert");
    assert!(
        pages[trip].at_us as f64 >= kill_at,
        "no page before the kill: tripped at {} vs kill at {}",
        pages[trip].at_us,
        kill_at
    );
    assert!(pages[trip].burn_rate >= 10.0, "trip is at paging burn");
    let clear = pages[trip..]
        .iter()
        .find(|al| al.state == AlertState::Cleared)
        .expect("the restart must clear the page alert");
    assert!(
        clear.at_us as f64 >= restart_at,
        "clear only after the restart: cleared at {} vs restart at {}",
        clear.at_us,
        restart_at
    );
}

/// More nodes, more simulated throughput: under an arrival rate that
/// saturates one Standard node, a 4-node heterogeneous fleet finishes
/// the same trace in far less simulated time.
#[test]
fn fleet_outpaces_single_node_under_load() {
    let network = net();
    let weights = network.init_weights(1);
    // A hot trace: arrivals much faster than one node can serve.
    let t = ArrivalTrace::generate(
        ArrivalConfig {
            streams: 8,
            rate_per_s: 200_000.0,
            count: 48,
        },
        9,
    );
    // Dense enough sampling that the patched-map fast path fires (see
    // `frame_bank`), small enough to stay quick in debug builds.
    let frames = bank(&t, 0.3);
    // Frames on this tiny network cost ~100us, so the default 25ms
    // spill bound (sized for the 50ms deadline SLO) would never fire
    // inside this burst. Scale it to the workload: spill once a home's
    // backlog is worth ~10 frames, letting the bounded-wait policy
    // spread the burst across the fleet.
    let router = RouterConfig {
        spill_wait_us: 1_000.0,
        ..RouterConfig::default()
    };
    let run = |n: usize| {
        let specs: Vec<NodeSpec> = if n == 1 {
            vec![NodeSpec::untuned(
                0,
                DeviceTier::Standard,
                Precision::Fp16,
                &network,
                ServeConfig::default(),
            )]
        } else {
            heterogeneous_specs(n, Precision::Fp16, &network, &ServeConfig::default())
        };
        let mut sim = FleetSim::new(&network, &weights, &specs, router, SimConfig::default());
        sim.run(&t, &frames)
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.completed, 48);
    assert_eq!(four.completed, 48);
    assert!(
        four.fps_sim > one.fps_sim * 1.5,
        "4 nodes must clearly outpace 1 under saturation: {} vs {}",
        four.fps_sim,
        one.fps_sim
    );
    assert!(four.p99_latency_us < one.p99_latency_us);
    // Streams stick to their homes, so the patched-map fast path fires.
    assert!(
        four.reuse_rate() > 0.0,
        "affinity routing must preserve incremental map reuse"
    );
}
