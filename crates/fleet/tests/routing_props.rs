//! Property tests of the fleet router (satellite 3): placement is
//! deterministic across runs, re-homing converges (exactly one re-home
//! per displaced stream, then stable), spillover with migration
//! disabled never moves a stream's home while it is alive — the
//! no-ping-pong guarantee that protects the map caches — and with
//! migration enabled a home only ever moves after `migrate_after`
//! consecutive spills.

use proptest::prelude::*;

use ts_fleet::{NodeLoad, Placement, Router, RouterConfig};

/// Deterministic synthetic load for node `n` at step `t`: wobbles queue
/// depths (some past the spill threshold) without any randomness beyond
/// the proptest inputs.
fn load_at(n: usize, t: usize, alive: &[bool]) -> NodeLoad {
    NodeLoad {
        alive: alive[n],
        queue_depth: (n * 7 + t * 3) % 17,
        est_service_us: 0.0,
        miss_rate: ((n + t) % 5) as f64 / 10.0,
    }
}

fn loads_at(t: usize, alive: &[bool]) -> Vec<NodeLoad> {
    (0..alive.len()).map(|n| load_at(n, t, alive)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed, same trace, same load history => bit-identical
    /// decision sequence. This is what makes `FleetSim` reproducible.
    #[test]
    fn routing_is_deterministic_across_runs(
        seed in 0u64..1000,
        nodes in 1usize..9,
        streams in proptest::collection::vec(0u64..32, 1..60),
    ) {
        let cfg = RouterConfig { seed, ..RouterConfig::default() };
        let mut a = Router::new(cfg, nodes);
        let mut b = Router::new(cfg, nodes);
        let alive = vec![true; nodes];
        for (t, &s) in streams.iter().enumerate() {
            let loads = loads_at(t, &alive);
            prop_assert_eq!(a.route(s, &loads), b.route(s, &loads));
        }
    }

    /// After a node death every displaced stream re-homes exactly once,
    /// then sticks to its new home for the rest of the run (no
    /// ping-pong), even while loads fluctuate and cause spills.
    #[test]
    fn rehome_converges_without_ping_pong(
        seed in 0u64..1000,
        nodes in 2usize..9,
        victim_pick in 0usize..8,
        streams in proptest::collection::vec(0u64..16, 8..40),
    ) {
        let victim = victim_pick % nodes;
        // Migration off: this property pins down pure death-driven
        // re-homing (load-driven moves are a separate property below).
        let cfg = RouterConfig { seed, migrate_after: 0, ..RouterConfig::default() };
        let mut r = Router::new(cfg, nodes);
        let mut alive = vec![true; nodes];

        // Warm up: give every stream a home under full health.
        for (t, &s) in streams.iter().enumerate() {
            let _ = r.route(s, &loads_at(t, &alive));
        }
        let displaced: Vec<u64> = streams
            .iter()
            .copied()
            .filter(|&s| r.home_of(s) == Some(victim))
            .collect();

        alive[victim] = false;
        prop_assert_eq!(r.on_node_down(victim), {
            let mut d = displaced.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        });

        let mut rehomes = std::collections::HashMap::new();
        let mut new_home = std::collections::HashMap::new();
        for (t, &s) in streams.iter().cycle().take(streams.len() * 3).enumerate() {
            let d = r.route(s, &loads_at(t, &alive)).expect("survivors exist");
            prop_assert_ne!(d.node, victim, "dead node must never be chosen");
            if d.re_homed {
                *rehomes.entry(s).or_insert(0u32) += 1;
            }
            // Home assignment is stable after the first post-kill route.
            let home = r.home_of(s).expect("routed streams have homes");
            if let Some(&h) = new_home.get(&s) {
                prop_assert_eq!(home, h, "home must not ping-pong");
            } else {
                new_home.insert(s, home);
            }
        }
        for s in displaced {
            prop_assert_eq!(
                rehomes.get(&s).copied().unwrap_or(0), 1,
                "displaced stream {} re-homes exactly once", s
            );
        }
        for (s, n) in rehomes {
            prop_assert_eq!(n, 1, "stream {} re-homed {} times", s, n);
        }
    }

    /// With migration disabled, spillover diverts frames but never
    /// reassigns the home while the home is alive — and a spilled frame
    /// always lands on an alive node.
    #[test]
    fn spill_never_moves_a_live_home(
        seed in 0u64..1000,
        nodes in 2usize..9,
        streams in proptest::collection::vec(0u64..16, 4..40),
        overload_mask in 0u32..256,
    ) {
        let cfg = RouterConfig { seed, migrate_after: 0, ..RouterConfig::default() };
        let mut r = Router::new(cfg, nodes);
        let alive = vec![true; nodes];
        let mut first_home = std::collections::HashMap::new();
        for (t, &s) in streams.iter().cycle().take(streams.len() * 2).enumerate() {
            // Overload a mask-selected subset of nodes this step.
            let loads: Vec<NodeLoad> = (0..nodes)
                .map(|n| NodeLoad {
                    alive: true,
                    queue_depth: if overload_mask & (1 << (n % 8)) != 0 {
                        cfg.spill_queue_depth + (t % 3)
                    } else {
                        t % 3
                    },
                    est_service_us: 0.0,
                    miss_rate: 0.0,
                })
                .collect();
            let d = r.route(s, &loads).expect("all alive");
            prop_assert!(loads[d.node].alive);
            let home = r.home_of(s).expect("homed");
            let expect = *first_home.entry(s).or_insert(home);
            prop_assert_eq!(home, expect, "live home moved for stream {}", s);
            if d.placement == Placement::Spilled {
                prop_assert_ne!(d.node, home, "spill goes off-home");
            }
        }
        let _ = alive;
    }

    /// With migration enabled, a live home only ever moves after
    /// exactly `migrate_after` *consecutive* spills of that stream, the
    /// decision that moves it reports `migrated`, and any frame landing
    /// on the home resets the streak.
    #[test]
    fn homes_move_only_after_full_spill_streaks(
        seed in 0u64..1000,
        nodes in 2usize..9,
        migrate_after in 1u32..6,
        streams in proptest::collection::vec(0u64..16, 4..40),
        overload_mask in 0u32..256,
    ) {
        let cfg = RouterConfig { seed, migrate_after, ..RouterConfig::default() };
        let mut r = Router::new(cfg, nodes);
        let mut streaks = std::collections::HashMap::new();
        for (t, &s) in streams.iter().cycle().take(streams.len() * 4).enumerate() {
            let loads: Vec<NodeLoad> = (0..nodes)
                .map(|n| NodeLoad {
                    alive: true,
                    queue_depth: if overload_mask & (1 << (n % 8)) != 0 {
                        cfg.spill_queue_depth + (t % 3)
                    } else {
                        t % 3
                    },
                    est_service_us: 0.0,
                    miss_rate: 0.0,
                })
                .collect();
            let before = r.home_of(s);
            let d = r.route(s, &loads).expect("all alive");
            let streak = streaks.entry(s).or_insert(0u32);
            if d.placement == Placement::Spilled {
                *streak += 1;
                prop_assert_eq!(
                    d.migrated,
                    *streak == migrate_after,
                    "stream {} migrated at streak {} of {}", s, *streak, migrate_after
                );
                if d.migrated {
                    prop_assert_eq!(r.home_of(s), Some(d.node), "migration re-homes");
                    *streak = 0;
                } else if let Some(b) = before {
                    prop_assert_eq!(r.home_of(s), Some(b), "plain spill keeps the home");
                }
            } else {
                *streak = 0;
                prop_assert_eq!(r.home_of(s), Some(d.node), "on-home landing");
            }
        }
    }
}
