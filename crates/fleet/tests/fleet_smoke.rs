//! Live-fleet smoke test — the CI target: a 4-node heterogeneous fleet
//! serves an open-loop Poisson trace, one node is killed mid-trace and
//! later restarted, and every submitted request resolves to an output
//! or a typed [`Rejected`] — zero panics, zero silent losses.

use std::time::Duration;

use ts_core::{Network, NetworkBuilder};
use ts_fleet::{frame_bank, heterogeneous_specs, Fleet, FleetError, RouterConfig};
use ts_serve::ServeConfig;
use ts_tensor::Precision;
use ts_workloads::{ArrivalConfig, ArrivalTrace};

fn net() -> Network {
    let mut b = NetworkBuilder::new("fleet-smoke", 4);
    let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
    let _ = b.conv("head", c, 2, 1, 1);
    b.build()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig::default()
        .with_map_reuse(true)
        .with_max_wait(Duration::from_millis(1))
        .with_queue_capacity(512)
        .with_supervisor_poll(Duration::from_millis(2))
}

#[test]
fn four_node_fleet_survives_kill_and_restart() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = heterogeneous_specs(4, Precision::Fp16, &network, &serve_cfg());
    let mut fleet = Fleet::boot(
        network.clone(),
        weights.clone(),
        specs,
        RouterConfig::default(),
    );
    assert_eq!(fleet.alive(), 4);

    let trace = ArrivalTrace::generate(
        ArrivalConfig {
            streams: 6,
            rate_per_s: 2000.0,
            count: 48,
        },
        7,
    );
    let mut per_stream = trace.frames_per_stream();
    // Room for the post-restart frames submitted after the trace.
    let frames = frame_bank(
        6,
        per_stream.iter().max().copied().unwrap_or(0) + 2,
        0.15,
        11,
    );

    let mut handles = Vec::new();
    let mut typed_rejections = 0u64;
    let mut victim = None;
    for (i, a) in trace.arrivals.iter().enumerate() {
        // Kill stream 0's home halfway through, while traffic flows.
        if i == trace.arrivals.len() / 2 {
            let home = fleet.home_of(0).expect("stream 0 routed by now");
            let report = fleet.kill_node(home).expect("kill succeeds");
            // Halt semantics: everything the node admitted is accounted
            // for — completed, shed with a typed reason, or crashed
            // with a typed reason. Nothing vanishes.
            assert_eq!(report.worker_panics, 0);
            victim = Some(home);
            assert_eq!(fleet.alive(), 3);
        }
        match fleet.submit(a.stream, frames[a.stream as usize][a.frame].clone()) {
            Ok(h) => handles.push(h),
            Err(FleetError::Rejected(_)) => typed_rejections += 1,
            Err(e) => panic!("only typed node rejections are acceptable: {e}"),
        }
    }
    let victim = victim.expect("the kill fired");

    // Restart the victim and route one more frame per stream: any
    // stream homed on the victim has re-homed by now, and the revived
    // node is eligible for new streams again.
    fleet.restart_node(victim).expect("restart succeeds");
    assert_eq!(fleet.alive(), 4);
    for s in 0..6u64 {
        let f = per_stream[s as usize];
        per_stream[s as usize] += 1;
        match fleet.submit(s, frames[s as usize][f].clone()) {
            Ok(h) => handles.push(h),
            Err(FleetError::Rejected(_)) => typed_rejections += 1,
            Err(e) => panic!("unexpected fleet error: {e}"),
        }
    }

    // Every handle resolves — to an output or a typed rejection.
    let mut completed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(_) => typed_rejections += 1,
        }
    }
    assert!(completed > 0, "the fleet served traffic");

    let report = fleet.shutdown();
    assert_eq!(report.node_deaths, 1);
    assert_eq!(report.node_restarts, 1);
    assert!(
        report.re_homed >= 1,
        "stream 0's home died while it kept arriving; it must re-home"
    );
    assert_eq!(report.merged.worker_panics, 0);
    assert_eq!(report.routed + report.rejected_no_capacity, 54);
    // Conservation: routed requests either completed or were rejected
    // with a typed reason (queue full at submit, shed at halt, ...).
    assert_eq!(report.merged.completed, completed);
    assert!(
        completed + typed_rejections >= report.routed,
        "no routed request may vanish: {completed} completed + \
         {typed_rejections} typed rejections < {} routed",
        report.routed
    );
    assert!(report.affinity_rate() > 0.0, "repeat frames hit their home");
    assert!(
        report.merged.map_cache_hits > 0,
        "affinity routing must land repeat frames on their cached maps"
    );

    // The merged report round-trips through JSON (dashboards consume it).
    let json = report.to_json().expect("serializes");
    assert_eq!(
        ts_fleet::FleetReport::from_json(&json).expect("parses"),
        report
    );
}

/// Live telemetry across the fleet: with obs enabled on every node,
/// health snapshots report the rolling window per node, a node death
/// leaves `Migration { kind: "re_home" }` events in the gaining node's
/// flight recorder, and the final report pools per-node alert logs.
#[test]
fn fleet_health_snapshots_and_rehome_events() {
    let network = net();
    let weights = network.init_weights(1);
    let specs = heterogeneous_specs(
        3,
        Precision::Fp16,
        &network,
        &serve_cfg().with_obs(ts_serve::ObsConfig::default()),
    );
    let mut fleet = Fleet::boot(
        network.clone(),
        weights.clone(),
        specs,
        RouterConfig::default(),
    );

    let frames = frame_bank(4, 8, 0.15, 13);
    let mut handles = Vec::new();
    for f in 0..4 {
        for s in 0..4u64 {
            if let Ok(h) = fleet.submit(s, frames[s as usize][f].clone()) {
                handles.push(h);
            }
        }
    }
    for h in handles.drain(..) {
        let _ = h.wait();
    }

    // Every alive node exposes a snapshot; together they saw all 16
    // completions inside the rolling window.
    let health = fleet.health();
    assert_eq!(health.len(), 3);
    let completed: u64 = health.iter().flatten().map(|h| h.completed).sum();
    assert_eq!(completed, 16);

    // Kill stream 0's home; its next frame re-homes, and the gaining
    // node's flight recorder logs the movement.
    let victim = fleet.home_of(0).expect("stream 0 routed");
    fleet.kill_node(victim).expect("kill succeeds");
    let h = fleet
        .submit(0, frames[0][4].clone())
        .expect("re-homed elsewhere");
    let _ = h.wait();
    let new_home = fleet.home_of(0).expect("stream 0 re-homed");
    assert_ne!(new_home, victim);
    assert!(
        fleet.node_recent_events(new_home).iter().any(|e| matches!(
            e,
            ts_serve::ObsEvent::Migration { stream: 0, kind, .. } if kind == "re_home"
        )),
        "the gaining node's recorder must log the re-home"
    );
    assert!(
        fleet.health()[victim].is_none(),
        "dead nodes report no health"
    );

    let report = fleet.shutdown();
    // Quiet traffic, no alert edges — but the field is wired through.
    assert_eq!(
        report.alerts,
        report
            .nodes
            .iter()
            .flat_map(|n| n.alerts.clone())
            .collect::<Vec<_>>()
    );
    let json = report.to_json().expect("serializes");
    assert_eq!(
        ts_fleet::FleetReport::from_json(&json).expect("parses"),
        report
    );
}

#[test]
fn killing_every_node_yields_typed_no_capacity() {
    let network = net();
    let weights = network.init_weights(2);
    let specs = heterogeneous_specs(2, Precision::Fp16, &network, &serve_cfg());
    let mut fleet = Fleet::boot(network, weights, specs, RouterConfig::default());
    let frames = frame_bank(1, 2, 0.15, 3);

    let h = fleet.submit(0, frames[0][0].clone()).expect("routes");
    let _ = h.wait();
    fleet.kill_node(0).expect("kill 0");
    fleet.kill_node(1).expect("kill 1");
    assert_eq!(fleet.alive(), 0);
    match fleet.submit(0, frames[0][1].clone()) {
        Err(FleetError::NoCapacity) => {}
        other => panic!("expected NoCapacity, got {other:?}"),
    }
    // Double-kill is a typed error, not a panic.
    assert!(matches!(fleet.kill_node(0), Err(FleetError::NoCapacity)));
    assert!(matches!(
        fleet.kill_node(9),
        Err(FleetError::UnknownNode { id: 9, nodes: 2 })
    ));
    let report = fleet.shutdown();
    assert_eq!(report.rejected_no_capacity, 1);
    assert_eq!(report.node_deaths, 2);
}
