//! cuBLAS dense-GEMM latency model — the yardstick of Figure 8.
//!
//! The paper benchmarks its generated sparse kernels against cuBLAS
//! running the *equivalent-sized dense GEMM* (cuBLAS has no sparsity
//! support). This model picks the best of cuBLAS's internal tile menu
//! under the same utilization model that prices our generated kernels,
//! so relative utilization claims are apples-to-apples.

use ts_gpusim::{gemm_utilization, Device, Precision, TileShape};

/// The tile menu cuBLAS heuristics choose from.
fn cublas_tiles() -> Vec<TileShape> {
    vec![
        TileShape::new(128, 128, 32),
        TileShape::new(128, 64, 32),
        TileShape::new(64, 128, 32),
        TileShape::new(64, 64, 32),
        TileShape::new(128, 128, 64),
        TileShape::new(64, 32, 32),
        TileShape::new(32, 64, 32),
    ]
}

/// Utilization cuBLAS achieves on an `m x n x k` dense GEMM.
pub fn cublas_utilization(m: u64, n: u64, k: u64, device: &Device, precision: Precision) -> f64 {
    cublas_tiles()
        .into_iter()
        .map(|t| gemm_utilization(m, n, k, t, device, precision))
        .fold(0.0, f64::max)
}

/// Latency in microseconds of the equivalent dense GEMM under cuBLAS
/// (compute side; dense GEMMs of these sizes are compute-bound).
pub fn cublas_gemm_us(m: u64, n: u64, k: u64, device: &Device, precision: Precision) -> f64 {
    let util = cublas_utilization(m, n, k, device, precision).max(1e-4);
    let macs = (m * n * k) as f64;
    macs / (device.peak_macs_per_us(precision) * util) + device.launch_overhead_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_gemms_run_near_peak() {
        let d = Device::rtx3090();
        let u = cublas_utilization(1 << 17, 256, 1728, &d, Precision::Fp16);
        assert!(u > 0.8, "utilization = {u}");
    }

    #[test]
    fn small_gemms_are_underutilised() {
        let d = Device::rtx3090();
        let u = cublas_utilization(2000, 64, 576, &d, Precision::Fp16);
        assert!(u < 0.6, "utilization = {u}");
    }

    #[test]
    fn latency_scales_with_size() {
        let d = Device::a100();
        let small = cublas_gemm_us(4096, 128, 128, &d, Precision::Fp16);
        let large = cublas_gemm_us(65536, 256, 256, &d, Precision::Fp16);
        assert!(large > small);
    }
}
