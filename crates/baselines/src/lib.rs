//! Baseline system emulations.
//!
//! The paper compares TorchSparse++ against four sparse-convolution
//! libraries, a vendor dense-GEMM library, and an ASIC accelerator. Each
//! is re-implemented here by its *documented dataflow and mapping
//! strategy* (not stubbed): every baseline runs real kernel maps through
//! the same executors and cost model, differing only in the dataflow
//! family, design space, precision support and measured kernel/mapping
//! efficiency the paper attributes to it.
//!
//! | System | Dataflow | Notes |
//! |---|---|---|
//! | MinkowskiEngine 0.5.4 | per-offset fetch-on-demand | FP32 only, slow coordinate manager |
//! | SpConv 1.2.1 | naive gather-GEMM-scatter | three launches per offset |
//! | TorchSparse (MLSys'22) | fused gather-scatter | adaptive grouping |
//! | SpConv 2.3.5 | sorted implicit GEMM | splits in {1,2}, bound training params, 1.1–1.2x slower kernels |
//! | TorchSparse++ | full design space | Sparse Autotuner, device-specific training binding |
//!
//! Plus [`cublas`] (the equivalent-GEMM yardstick of Figure 8),
//! [`pointacc`] (the scaled-ASIC projection of Table 2), and
//! [`flatformer`] (the point-cloud-transformer comparison of
//! Section 5.2).

pub mod cublas;
pub mod flatformer;
pub mod pointacc;
mod systems;

pub use systems::{System, ALL_SYSTEMS};
