//! FlatFormer comparison (Section 5.2 remark).
//!
//! The paper notes that point cloud transformers claim better
//! accuracy-latency tradeoffs than sparse-conv backbones built on
//! SpConv v2 — but with the faster TorchSparse++ backend, "the 3-frame
//! CenterPoint model on Waymo is 1.5x faster than FlatFormer with higher
//! accuracy on Orin". This module provides a latency model for
//! FlatFormer's flattened window attention so the claim can be
//! exercised: points are flattened into equal-size groups and each block
//! runs window self-attention plus an FFN — dense GEMMs with no mapping
//! or redundant-computation overhead, but quadratic-in-group attention
//! and many elementwise kernels.

use ts_gpusim::{CostModel, Device, KernelClass, KernelDesc, KernelTrace, Precision};

/// FlatFormer architecture constants (from the FlatFormer paper's base
/// configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatFormerSpec {
    /// Points per flattened window group.
    pub group_size: u64,
    /// Embedding width.
    pub channels: u64,
    /// Number of attention blocks (alternating x/y sorting).
    pub blocks: u64,
    /// Attention heads.
    pub heads: u64,
}

impl Default for FlatFormerSpec {
    fn default() -> Self {
        Self {
            group_size: 69,
            channels: 128,
            blocks: 8,
            heads: 8,
        }
    }
}

/// Simulates one FlatFormer backbone pass over `n_points` pillars.
pub fn flatformer_trace(n_points: u64, spec: &FlatFormerSpec, device: Device) -> KernelTrace {
    let model = CostModel::new(device);
    let mut trace = KernelTrace::new();
    let c = spec.channels;
    let g = spec.group_size;
    let groups = n_points.div_ceil(g).max(1);
    let b = Precision::Fp16.bytes() as u64;

    // Per-block flattened-window sorting (the coordinate sort that
    // replaces sparse-conv mapping; it re-runs every block because the
    // flattening axis alternates).
    for blk in 0..spec.blocks {
        let log_n = (n_points.max(2) as f64).log2().ceil() as u64;
        let sort = KernelDesc::mapping(
            format!("flat-sort[{blk}]"),
            n_points * log_n * log_n,
            n_points * 8 * log_n,
        );
        model.record(&mut trace, sort);

        // QKV projection: one n x 3c x c GEMM.
        let qkv = KernelDesc::gemm(format!("qkv[{blk}]"), n_points, 3 * c, c, Precision::Fp16);
        model.record(&mut trace, qkv);

        // Window attention: per group, QK^T (g x g x c) and AV (g x c x g).
        let attn_macs = groups * (g * g * c + g * c * g);
        let attn = KernelDesc::gemm(format!("attn[{blk}]"), groups * g, g, c, Precision::Fp16)
            .with_macs(attn_macs)
            .with_traffic(n_points * c * b * 3, n_points * c * b);
        model.record(&mut trace, attn);

        // Softmax + residual + layernorm elementwise kernels.
        for name in ["softmax", "residual", "layernorm"] {
            let e = KernelDesc::memory(
                format!("{name}[{blk}]"),
                n_points * c * b * 2,
                n_points * c * b,
            )
            .with_class(KernelClass::Elementwise);
            model.record(&mut trace, e);
        }

        // FFN: two GEMMs with 2x expansion.
        let ffn1 = KernelDesc::gemm(format!("ffn1[{blk}]"), n_points, 2 * c, c, Precision::Fp16);
        model.record(&mut trace, ffn1);
        let ffn2 = KernelDesc::gemm(format!("ffn2[{blk}]"), n_points, c, 2 * c, Precision::Fp16);
        model.record(&mut trace, ffn2);
    }
    trace
}

/// End-to-end FlatFormer latency in milliseconds.
pub fn flatformer_ms(n_points: u64, spec: &FlatFormerSpec, device: Device) -> f64 {
    flatformer_trace(n_points, spec, device).total_us() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_points() {
        let d = Device::jetson_orin();
        let small = flatformer_ms(20_000, &FlatFormerSpec::default(), d.clone());
        let large = flatformer_ms(80_000, &FlatFormerSpec::default(), d);
        assert!(large > small * 2.0);
    }

    #[test]
    fn attention_dominates_on_big_inputs() {
        let d = Device::jetson_orin();
        let t = flatformer_trace(60_000, &FlatFormerSpec::default(), d);
        let compute = t.class_us(ts_gpusim::KernelClass::Compute);
        assert!(
            compute > t.total_us() * 0.3,
            "compute {compute} of {}",
            t.total_us()
        );
    }

    #[test]
    fn blocks_multiply_cost() {
        let d = Device::rtx3090();
        let base = FlatFormerSpec::default();
        let deep = FlatFormerSpec { blocks: 16, ..base };
        let t1 = flatformer_ms(40_000, &base, d.clone());
        let t2 = flatformer_ms(40_000, &deep, d);
        assert!((t2 / t1 - 2.0).abs() < 0.2, "ratio = {}", t2 / t1);
    }
}
