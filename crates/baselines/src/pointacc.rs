//! The PointAcc ASIC comparison of Table 2.
//!
//! Table 2 of the paper is itself an analytical projection: PointAcc's
//! 64x64 systolic array is scaled to 128x128 ("PointAcc-L") to roughly
//! match an RTX 3090's MAC count, memory bandwidth is scaled
//! accordingly, and the measured TorchSparse++ latency is normalised by
//! the clock (1.7x) and peak-MAC (1.3x) differences. We reproduce the
//! same arithmetic.

use serde::{Deserialize, Serialize};

/// Specification of a (scaled) PointAcc accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointAccSpec {
    /// Name in Table 2.
    pub name: &'static str,
    /// Systolic array side length.
    pub array_dim: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
}

impl PointAccSpec {
    /// The original PointAcc (MICRO'21): 64x64 at 1 GHz.
    pub fn base() -> Self {
        Self {
            name: "PointAcc",
            array_dim: 64,
            clock_ghz: 1.0,
        }
    }

    /// The scaled PointAcc-L of Table 2: 128x128 at 1 GHz.
    pub fn large() -> Self {
        Self {
            name: "PointAcc-L",
            array_dim: 128,
            clock_ghz: 1.0,
        }
    }

    /// Number of MAC units (`array_dim^2`).
    pub fn macs(&self) -> u64 {
        self.array_dim as u64 * self.array_dim as u64
    }

    /// Peak throughput in TMACS.
    pub fn peak_tmacs(&self) -> f64 {
        self.macs() as f64 * self.clock_ghz / 1e3
    }
}

/// Table 2's RTX 3090 datapoints: 328 tensor cores x 64 MACs at 1.7 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rtx3090Tensor;

impl Rtx3090Tensor {
    /// Tensor core count.
    pub const CORES: u64 = 328;
    /// MACs per tensor core.
    pub const MACS_PER_CORE: u64 = 64;
    /// Clock in GHz.
    pub const CLOCK_GHZ: f64 = 1.7;

    /// Total MAC units (20992 in Table 2).
    pub fn macs() -> u64 {
        Self::CORES * Self::MACS_PER_CORE
    }

    /// Peak throughput in TMACS (35.5 in Table 2, up to rounding).
    pub fn peak_tmacs() -> f64 {
        Self::macs() as f64 * Self::CLOCK_GHZ / 1e3
    }
}

/// Normalises a measured TorchSparse++ latency on RTX 3090 for a fair
/// ASIC comparison: the paper multiplies by clock ratio (1.7x) and MAC
/// ratio (~1.3x), a combined ~2.2x.
pub fn normalize_gpu_latency_ms(measured_ms: f64, asic: &PointAccSpec) -> f64 {
    let clock_ratio = Rtx3090Tensor::CLOCK_GHZ / asic.clock_ghz;
    let mac_ratio = Rtx3090Tensor::macs() as f64 / asic.macs() as f64;
    measured_ms * clock_ratio * mac_ratio
}

/// Projects PointAcc-L latency from base-PointAcc latency assuming
/// linear scaling with array size (the paper's IC-OC-parallelism
/// assumption for layers with large channel counts).
pub fn project_latency_ms(base_latency_ms: f64, from: &PointAccSpec, to: &PointAccSpec) -> f64 {
    base_latency_ms * (from.peak_tmacs() / to.peak_tmacs())
}

/// The fraction of ASIC speed the GPU achieves (paper: 56 % with
/// projected 31.6 ms GPU vs 17.8 ms ASIC).
pub fn gpu_vs_asic_fraction(gpu_projected_ms: f64, asic_ms: f64) -> f64 {
    asic_ms / gpu_projected_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_hardware_constants() {
        assert_eq!(Rtx3090Tensor::macs(), 20992);
        assert!((Rtx3090Tensor::peak_tmacs() - 35.5).abs() < 0.2);
        assert_eq!(PointAccSpec::base().macs(), 4096);
        assert_eq!(PointAccSpec::large().macs(), 16384);
        assert!((PointAccSpec::large().peak_tmacs() - 16.4).abs() < 0.5); // paper rounds to 16 TMACS
    }

    #[test]
    fn normalization_matches_papers_2_2x() {
        let f = normalize_gpu_latency_ms(1.0, &PointAccSpec::large());
        assert!((f - 2.18).abs() < 0.05, "normalisation factor = {f}");
    }

    #[test]
    fn scaling_projection_is_linear() {
        let base = PointAccSpec::base();
        let large = PointAccSpec::large();
        assert_eq!(project_latency_ms(40.0, &base, &large), 10.0);
    }

    #[test]
    fn paper_numbers_give_56_percent() {
        // Paper: projected GPU latency 31.6 ms vs PointAcc-L 17.8 ms.
        let f = gpu_vs_asic_fraction(31.6, 17.8);
        assert!((f - 0.563).abs() < 0.01, "fraction = {f}");
    }
}
