//! The five sparse-convolution systems compared in Figures 14 and 15.

use serde::{Deserialize, Serialize};

use ts_autotune::{default_scheme_for, tune_inference, tune_training, TunerOptions};
use ts_core::{GroupConfigs, RunReport, Session, TrainConfigs};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::{Arch, Device, Precision};

/// One of the compared sparse-convolution systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// MinkowskiEngine 0.5.4: per-offset fetch-on-demand, FP32 only.
    MinkowskiEngine,
    /// SpConv 1.2.1: naive gather-GEMM-scatter.
    SpConv1,
    /// TorchSparse (MLSys'22): fused gather-scatter with adaptive
    /// grouping.
    TorchSparse,
    /// SpConv 2.3.5: sorted implicit GEMM, splits restricted to {1, 2},
    /// all training kernels bound.
    SpConvV2,
    /// TorchSparse++ (this paper): full design space + Sparse Autotuner.
    TorchSparsePP,
}

/// All systems in the paper's comparison order.
pub const ALL_SYSTEMS: [System; 5] = [
    System::MinkowskiEngine,
    System::SpConv1,
    System::TorchSparse,
    System::SpConvV2,
    System::TorchSparsePP,
];

impl System {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::MinkowskiEngine => "MinkowskiEngine",
            System::SpConv1 => "SpConv 1.2",
            System::TorchSparse => "TorchSparse",
            System::SpConvV2 => "SpConv v2",
            System::TorchSparsePP => "TorchSparse++",
        }
    }

    /// The precision this system actually executes when asked for
    /// `requested` on `device` (MinkowskiEngine has no FP16 support;
    /// TF32 exists only on Ampere).
    pub fn effective_precision(self, requested: Precision, device: &Device) -> Precision {
        let p = match self {
            System::MinkowskiEngine => Precision::Fp32,
            _ => requested,
        };
        if p == Precision::Tf32 && device.arch != Arch::Ampere {
            Precision::Fp32
        } else {
            p
        }
    }

    /// Execution context encoding this system's measured kernel and
    /// mapping efficiency relative to generated TorchSparse++ kernels.
    pub fn ctx(self, device: Device, requested: Precision) -> ExecCtx {
        let precision = self.effective_precision(requested, &device);
        let base = ExecCtx::simulate(device, precision);
        match self {
            // Un-templated CUDA kernels + a CPU/thrust coordinate
            // manager far slower than GPU hash tables.
            System::MinkowskiEngine => base.with_system_eff(1.20).with_mapping_eff(2.0),
            System::SpConv1 => base.with_system_eff(1.10).with_mapping_eff(1.3),
            System::TorchSparse => base,
            // The paper measures TorchSparse++ generated kernels
            // 1.1-1.2x faster than SpConv v2's at identical dataflow
            // parameters (Figure 23).
            System::SpConvV2 => base.with_system_eff(1.15),
            System::TorchSparsePP => base,
        }
    }

    /// The inference configuration this system runs on `session`:
    /// fixed dataflows for the untuned systems, a tuner run for
    /// SpConv v2 (restricted space) and TorchSparse++ (full space).
    pub fn inference_configs(self, session: &Session, ctx: &ExecCtx) -> GroupConfigs {
        match self {
            System::MinkowskiEngine => {
                GroupConfigs::uniform(DataflowConfig::fetch_on_demand(false))
            }
            System::SpConv1 => GroupConfigs::uniform(DataflowConfig::gather_scatter(false)),
            System::TorchSparse => GroupConfigs::uniform(DataflowConfig::gather_scatter(true)),
            System::SpConvV2 => tune_inference(
                std::slice::from_ref(session),
                ctx,
                &TunerOptions::spconv_v2(),
            )
            .group_configs()
            .expect("tuner results carry configs")
            .clone(),
            System::TorchSparsePP => {
                tune_inference(std::slice::from_ref(session), ctx, &TunerOptions::default())
                    .group_configs()
                    .expect("tuner results carry configs")
                    .clone()
            }
        }
    }

    /// Simulates one inference pass of this system.
    pub fn inference_report(
        self,
        session: &Session,
        device: Device,
        precision: Precision,
    ) -> RunReport {
        let ctx = self.ctx(device, precision);
        let cfgs = self.inference_configs(session, &ctx);
        session.simulate_inference(&cfgs, &ctx)
    }

    /// End-to-end inference latency in milliseconds.
    pub fn inference_ms(self, session: &Session, device: Device, precision: Precision) -> f64 {
        self.inference_report(session, device, precision).total_ms()
    }

    /// The training configuration of this system (all baselines bind
    /// forward/dgrad/wgrad; TorchSparse++ uses the device-appropriate
    /// binding scheme).
    pub fn training_configs(self, session: &Session, ctx: &ExecCtx) -> TrainConfigs {
        match self {
            System::MinkowskiEngine => TrainConfigs::bound(DataflowConfig::fetch_on_demand(false)),
            System::SpConv1 => TrainConfigs::bound(DataflowConfig::gather_scatter(false)),
            System::TorchSparse => TrainConfigs::bound(DataflowConfig::gather_scatter(true)),
            System::SpConvV2 => {
                let r = tune_training(
                    std::slice::from_ref(session),
                    ctx,
                    &TunerOptions::spconv_v2(),
                    ts_autotune::BindingScheme::AllBound,
                );
                r.configs
            }
            System::TorchSparsePP => {
                let scheme = default_scheme_for(ctx.device());
                let r = tune_training(
                    std::slice::from_ref(session),
                    ctx,
                    &TunerOptions::default(),
                    scheme,
                );
                r.configs
            }
        }
    }

    /// Simulates one training iteration (mixed precision where
    /// supported; MinkowskiEngine falls back to FP32, as in Figure 15).
    pub fn training_report(
        self,
        session: &Session,
        device: Device,
        precision: Precision,
    ) -> RunReport {
        let ctx = self.ctx(device, precision);
        let cfgs = self.training_configs(session, &ctx);
        session.simulate_training(&cfgs, &ctx)
    }

    /// End-to-end training-iteration latency in milliseconds.
    pub fn training_ms(self, session: &Session, device: Device, precision: Precision) -> f64 {
        self.training_report(session, device, precision).total_ms()
    }
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_workloads::Workload;

    fn session(w: Workload, scale: f32) -> Session {
        let net = w.network();
        let scene = w.scene_scaled(42, scale);
        Session::new(&net, scene.coords())
    }

    #[test]
    fn minkowski_ignores_fp16() {
        let d = Device::a100();
        assert_eq!(
            System::MinkowskiEngine.effective_precision(Precision::Fp16, &d),
            Precision::Fp32
        );
        assert_eq!(
            System::SpConvV2.effective_precision(Precision::Fp16, &d),
            Precision::Fp16
        );
    }

    #[test]
    fn tf32_falls_back_off_ampere() {
        let turing = Device::rtx2080ti();
        assert_eq!(
            System::TorchSparsePP.effective_precision(Precision::Tf32, &turing),
            Precision::Fp32
        );
    }

    #[test]
    fn paper_ranking_holds_on_segmentation_a100_fp16() {
        // Figure 14 ordering on cloud GPUs: TS++ < SpConv v2 <
        // TorchSparse < {SpConv 1.2, MinkowskiEngine}.
        let s = session(Workload::NuScenesMinkUNet1f, 0.12);
        let d = Device::a100();
        let tspp = System::TorchSparsePP.inference_ms(&s, d.clone(), Precision::Fp16);
        let sp2 = System::SpConvV2.inference_ms(&s, d.clone(), Precision::Fp16);
        let ts = System::TorchSparse.inference_ms(&s, d.clone(), Precision::Fp16);
        let sp1 = System::SpConv1.inference_ms(&s, d.clone(), Precision::Fp16);
        let mink = System::MinkowskiEngine.inference_ms(&s, d, Precision::Fp16);
        assert!(tspp <= sp2, "TS++ {tspp} > SpConv2 {sp2}");
        assert!(sp2 < ts, "SpConv2 {sp2} >= TorchSparse {ts}");
        assert!(ts < sp1.max(mink), "TorchSparse {ts} >= worst baseline");
        assert!(
            mink > tspp * 1.5,
            "Minkowski {mink} not clearly slower than TS++ {tspp}"
        );
    }

    #[test]
    fn training_is_faster_on_tspp_than_spconv2() {
        let w = Workload::NuScenesMinkUNet1f;
        let net = w.network();
        let batch = w.batch_scaled(7, 0.08, 2);
        let s = Session::new(&net, batch.coords());
        let d = Device::a100();
        let tspp = System::TorchSparsePP.training_ms(&s, d.clone(), Precision::Fp16);
        let sp2 = System::SpConvV2.training_ms(&s, d, Precision::Fp16);
        assert!(tspp < sp2, "TS++ train {tspp} >= SpConv2 {sp2}");
    }
}
