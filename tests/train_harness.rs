//! Integration: the end-to-end training harness — micro-batch
//! accumulation equals full-batch training, binding schemes change
//! simulated latency but not numerics, loss scaling round-trips
//! deterministically, and a fixed-seed trajectory is bit-identical to
//! the checked-in golden file (regenerate with `TS_UPDATE_GOLDEN=1`).

use std::path::PathBuf;

use proptest::prelude::*;

use torchsparse::autotune::BindingScheme;
use torchsparse::core::{LossScaler, Network, NetworkBuilder, SparseTensor};
use torchsparse::dataflow::ExecCtx;
use torchsparse::gpusim::Device;
use torchsparse::kernelmap::Coord;
use torchsparse::tensor::{rng_from_seed, ErrorBudget, Matrix, Precision};
use torchsparse::train::{weights_digest, TrainRun, Trainer, TrainerConfig};
use torchsparse::workloads::{LidarConfig, LidarScene, LidarStream};

fn small_net() -> Network {
    let mut b = NetworkBuilder::new("train-harness", 4);
    let c1 = b.conv_block("enc", NetworkBuilder::INPUT, 8, 3, 1);
    let d = b.conv_block("down", c1, 12, 2, 2);
    let _ = b.conv("head", d, 4, 1, 1);
    b.build()
}

fn ctx() -> ExecCtx {
    ExecCtx::simulate(Device::a100(), Precision::Fp16)
}

fn lidar() -> LidarConfig {
    LidarConfig {
        beams: 8,
        azimuth_steps: 90,
        elevation_min_deg: -25.0,
        elevation_max_deg: 3.0,
        max_range_m: 40.0,
        voxel_size_m: 0.2,
        obstacles: 6,
        dropout: 0.05,
    }
}

/// A deterministic batched scene: `frames` LiDAR frames at batch
/// indices `0..frames`.
fn batched_scene(seed: u64, frames: u32) -> SparseTensor {
    let mut coords = Vec::new();
    let mut rows = Vec::new();
    for f in 0..frames {
        let scene = LidarScene::generate(&lidar(), seed + u64::from(f), 1, 0);
        for (i, c) in scene.coords.iter().enumerate() {
            coords.push(Coord::new(f as i32, c.x, c.y, c.z));
            rows.push(scene.feats.row(i).to_vec());
        }
    }
    let mut feats = Matrix::zeros(rows.len(), 4);
    for (i, r) in rows.iter().enumerate() {
        feats.row_mut(i).copy_from_slice(r);
    }
    SparseTensor::new(coords, feats)
}

/// Worst budget-normalised difference between two weight sets.
fn worst_weight_error(a: &Trainer, b: &Trainer, budget: &ErrorBudget) -> f32 {
    let mut worst = 0.0f32;
    for (wa, wb) in a.weights().convs.iter().zip(b.weights().convs.iter()) {
        let (Some(wa), Some(wb)) = (wa.as_ref(), wb.as_ref()) else {
            continue;
        };
        for k in 0..wa.kernel_volume() {
            for (&x, &y) in wa.offset(k).as_slice().iter().zip(wb.offset(k).as_slice()) {
                worst = worst.max(budget.normalized_error(x, y));
            }
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Accumulating one step over k micro-batches equals the one-shot
    /// full-batch step within the FP32 reassociation budget.
    #[test]
    fn micro_batch_accumulation_matches_full_batch(
        seed in 1u64..500,
        k in 2usize..5,
    ) {
        let ctx = ctx();
        let input = batched_scene(seed, 4);
        let base = TrainerConfig { amp: false, ..TrainerConfig::default() };
        let mut full = Trainer::new(
            &small_net(), seed, &ctx,
            TrainerConfig { micro_batches: 1, ..base.clone() },
        );
        let mut split = Trainer::new(
            &small_net(), seed, &ctx,
            TrainerConfig { micro_batches: k, ..base },
        );
        let rf = full.step(&input).expect("full step");
        let rs = split.step(&input).expect("split step");
        prop_assert!(rf.applied && rs.applied);
        let budget = ErrorBudget::new(Precision::Fp32, 4 * k);
        let rel = (rf.loss - rs.loss).abs() / rf.loss.abs().max(1e-6);
        prop_assert!(rel < 1e-4, "losses diverge: {} vs {}", rf.loss, rs.loss);
        let worst = worst_weight_error(&full, &split, &budget);
        prop_assert!(worst < 1.0, "weights outside budget: {worst}");
    }
}

/// The binding scheme decides which kernel families share a dataflow —
/// a scheduling choice. Every scheme must land on the same weights
/// (within the cross-dataflow error budget); what may differ is the
/// simulated step latency.
#[test]
fn binding_scheme_changes_latency_not_numerics() {
    let ctx = ctx();
    let input = batched_scene(21, 3);
    let mut step_us = Vec::new();
    let mut trainers = Vec::new();
    for scheme in BindingScheme::ALL {
        let cfg = TrainerConfig {
            amp: false,
            scheme: Some(scheme),
            ..TrainerConfig::default()
        };
        let mut t = Trainer::new(&small_net(), 21, &ctx, cfg);
        let r = t.step(&input).expect("step");
        assert!(r.applied);
        step_us.push(r.sim.step_us());
        trainers.push(t);
    }
    // Different schemes may pick different dataflows, whose summation
    // orders differ — agreement is within budget, not bit-exact.
    let budget = ErrorBudget::new(Precision::Fp32, 64);
    for t in &trainers[1..] {
        let worst = worst_weight_error(&trainers[0], t, &budget);
        assert!(worst < 1.0, "schemes disagree beyond budget: {worst}");
    }
    // The scheduling choice is visible in simulated time: on this
    // scene at least two schemes tune to different step latencies
    // (the tuner's search is budgeted, so no ordering is guaranteed —
    // only that the knob actually moves the simulated clock).
    assert!(
        step_us.iter().any(|&t| (t - step_us[0]).abs() > 1e-9),
        "all schemes simulated identically: {step_us:?}"
    );
}

/// Same scheme, same seed, same scene: the step is fully deterministic
/// — bit-identical weights and identical simulated cost.
#[test]
fn identical_runs_are_bit_identical() {
    let ctx = ctx();
    let input = batched_scene(33, 3);
    let run = |_: ()| {
        let mut t = Trainer::new(&small_net(), 33, &ctx, TrainerConfig::default());
        let r1 = t.step(&input).expect("step 1");
        let r2 = t.step(&input).expect("step 2");
        (
            weights_digest(t.weights()),
            r1.sim,
            r2.sim,
            r1.loss,
            r2.loss,
        )
    };
    let a = run(());
    let b = run(());
    assert_eq!(a.0, b.0, "weights diverged across identical runs");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3.to_bits(), b.3.to_bits());
    assert_eq!(a.4.to_bits(), b.4.to_bits());
}

/// The loss scaler's overflow/backoff protocol round-trips
/// deterministically: the same overflow sequence always produces the
/// same final state, halving on overflow (floored at 1), doubling
/// after a full good streak (capped at 2^24).
#[test]
fn loss_scale_overflow_backoff_round_trips() {
    let mut rng = rng_from_seed(0x5CA1E);
    let sequence: Vec<bool> = (0..500)
        .map(|_| rand::Rng::gen_bool(&mut rng, 0.05))
        .collect();

    let replay = |seq: &[bool]| {
        let mut s = LossScaler::new();
        for &overflow in seq {
            let applied = s.update(overflow);
            assert_eq!(
                applied, !overflow,
                "update returns whether the step applied"
            );
        }
        s
    };
    let a = replay(&sequence);
    let b = replay(&sequence);
    assert_eq!(a, b, "same sequence, same state");

    // The protocol itself.
    let mut s = LossScaler::new();
    assert_eq!(s.scale, 65536.0);
    s.update(true);
    assert_eq!(s.scale, 32768.0);
    assert_eq!(s.skipped, 1);
    assert_eq!(s.good_steps, 0);
    for _ in 0..s.growth_interval {
        s.update(false);
    }
    assert_eq!(s.scale, 65536.0, "doubles after a full good streak");
    // Backoff floors at 1.0 instead of vanishing.
    for _ in 0..40 {
        s.update(true);
    }
    assert_eq!(s.scale, 1.0);
}

/// Golden trajectory: fixed seed, 20 steps over a small LiDAR stream —
/// the loss curve and final weights must be bit-identical across runs,
/// optimization levels and platforms. Regenerate the golden file with
/// `TS_UPDATE_GOLDEN=1 cargo test -q --test train_harness`.
#[test]
fn golden_trajectory_is_bit_identical() {
    let ctx = ctx();
    let cfg = TrainerConfig {
        batch_frames: 2,
        micro_batches: 2,
        ..TrainerConfig::default()
    };
    let mut t = Trainer::new(&small_net(), 1234, &ctx, cfg);
    let mut stream = LidarStream::new(lidar(), 1234).with_motion(0.3, 0.01);
    let reports = t.run_stream(&mut stream, 20).expect("20 steps");
    let run = t.train_run(reports.iter().map(|r| r.loss).collect());

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("train_trajectory.json");
    if std::env::var("TS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&run).expect("serializes"),
        )
        .expect("writes golden");
        return;
    }
    let text = std::fs::read_to_string(&path)
        .expect("golden file missing: regenerate with TS_UPDATE_GOLDEN=1");
    let golden: TrainRun = serde_json::from_str(&text).expect("golden parses");
    assert_eq!(
        golden.losses.len(),
        run.losses.len(),
        "step count drifted from golden"
    );
    for (i, (g, r)) in golden.losses.iter().zip(&run.losses).enumerate() {
        assert_eq!(
            g.to_bits(),
            r.to_bits(),
            "loss at step {i} drifted: golden {g}, got {r}"
        );
    }
    assert_eq!(
        golden.weights_digest, run.weights_digest,
        "final weights drifted"
    );
    assert_eq!(golden.loss_scale, run.loss_scale);
    assert_eq!(golden.skipped, run.skipped);
}

/// A directory-backed schedule cache carries tuned step schedules
/// across trainer restarts: the second trainer's first step is served
/// from cache instead of cold-tuned.
#[test]
fn train_schedule_cache_warm_starts_across_runs() {
    let dir = std::env::temp_dir().join(format!("ts-train-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ctx = ctx();
    let input = batched_scene(55, 3);

    let mut first = Trainer::new(&small_net(), 55, &ctx, TrainerConfig::default())
        .with_cache_dir(&dir)
        .expect("opens cache");
    let r1 = first.step(&input).expect("step");
    assert_eq!(r1.tune_origin, "cold");

    let mut second = Trainer::new(&small_net(), 55, &ctx, TrainerConfig::default())
        .with_cache_dir(&dir)
        .expect("reopens cache");
    let r2 = second.step(&input).expect("step");
    assert!(
        r2.tune_origin == "hit" || r2.tune_origin == "warm",
        "expected cache reuse, got {}",
        r2.tune_origin
    );
    std::fs::remove_dir_all(&dir).ok();
}
