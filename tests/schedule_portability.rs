//! Integration: tuned schedules survive serialization and drive the
//! deployment engine across devices — and every way a persisted
//! artifact can be wrong surfaces as a typed error (strict load) or a
//! recorded downgrade (lenient load), never a panic.

use torchsparse::autotune::{tune_inference, TuneResult, TunerOptions};
use torchsparse::core::{Downgrade, Engine, ScheduleArtifact, ScheduleError, Session};
use torchsparse::dataflow::ExecCtx;
use torchsparse::gpusim::Device;
use torchsparse::serve::FaultPlan;
use torchsparse::tensor::Precision;
use torchsparse::workloads::Workload;

#[test]
fn tune_save_load_deploy() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let tuning_scene = w.scene_scaled(1, 0.05);
    let session = Session::new(&net, tuning_scene.coords());
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);

    // Tune once, persist the schedule.
    let result = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );
    let json = result.to_json().expect("schedule serializes");

    // "Deploy" from the serialized schedule on fresh scenes.
    let restored = TuneResult::from_json(&json).expect("schedule loads");
    let weights = net.init_weights(5);
    let engine = Engine::new(
        net.clone(),
        weights,
        restored
            .group_configs()
            .expect("restored schedule carries configs")
            .clone(),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    for seed in 10..13 {
        let scene = w.scene_scaled(seed, 0.05);
        let (out, report) = engine.infer(&scene);
        assert_eq!(out.num_points(), scene.num_points());
        assert!(report.total_us() > 0.0);
    }

    // The restored schedule must time identically to the fresh one.
    let fresh = session
        .simulate_inference(result.group_configs().expect("configs"), &ctx)
        .total_us();
    let loaded = session
        .simulate_inference(restored.group_configs().expect("configs"), &ctx)
        .total_us();
    assert_eq!(fresh.to_bits(), loaded.to_bits());
}

#[test]
fn schedules_transfer_across_devices_with_degradation() {
    // A schedule tuned for the A100 still *runs* on Orin, but retuning
    // for Orin must not be worse — device-specific tuning is the point.
    let w = Workload::WaymoCenterPoint1f;
    let net = w.network();
    let scene = w.scene_scaled(2, 0.05);
    let session = Session::new(&net, scene.coords());

    let a100_ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
    let orin_ctx = ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16);

    let a100_schedule = tune_inference(
        std::slice::from_ref(&session),
        &a100_ctx,
        &TunerOptions::default(),
    );
    let orin_schedule = tune_inference(
        std::slice::from_ref(&session),
        &orin_ctx,
        &TunerOptions::default(),
    );

    let foreign = session
        .simulate_inference(a100_schedule.group_configs().expect("configs"), &orin_ctx)
        .total_us();
    let native = session
        .simulate_inference(orin_schedule.group_configs().expect("configs"), &orin_ctx)
        .total_us();
    assert!(
        native <= foreign + 1e-6,
        "native {native} > foreign {foreign}"
    );
}

/// A tuned artifact for the error-path tests below.
fn saved_artifact() -> (torchsparse::core::Network, String) {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let scene = w.scene_scaled(3, 0.04);
    let session = Session::new(&net, scene.coords());
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let result = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );
    let weights = net.init_weights(5);
    let engine = Engine::new(
        net.clone(),
        weights,
        result.group_configs().expect("configs").clone(),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    let json = engine.save_schedule().to_json().expect("serializes");
    (net, json)
}

/// Corrupted JSON (seeded truncation): strict parsing yields the typed
/// `Parse` error and a lenient boot degrades rather than panicking.
#[test]
fn corrupted_artifact_json_is_a_typed_error_then_a_downgrade() {
    let (net, json) = saved_artifact();
    let corrupted = FaultPlan::from_seed(21).corrupt_truncate(&json);
    match ScheduleArtifact::from_json(&corrupted) {
        Err(ScheduleError::Parse(_)) => {}
        other => panic!("expected Parse error, got {other:?}"),
    }
    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp16);
    let weights = net.init_weights(5);
    let engine = Engine::load_schedule_lenient(net, weights, &corrupted, ctx);
    assert!(engine.is_degraded());
    assert!(matches!(
        engine.downgrades()[0],
        Downgrade::Artifact {
            error: ScheduleError::Parse(_)
        }
    ));
    // Degraded does not mean broken: the safe fallback still serves.
    let scene = Workload::NuScenesMinkUNet1f.scene_scaled(8, 0.03);
    let (out, _) = engine.infer(&scene);
    assert_eq!(out.num_points(), scene.num_points());
}

/// A format-version bump (still-parseable JSON) is rejected with the
/// version pair, strict and lenient alike.
#[test]
fn version_mismatch_is_a_typed_error_then_a_downgrade() {
    let (net, json) = saved_artifact();
    let bumped = FaultPlan::from_seed(4).corrupt_version(&json);
    match ScheduleArtifact::from_json(&bumped) {
        Err(ScheduleError::VersionMismatch { found, expected }) => {
            assert_eq!(expected, torchsparse::core::SCHEDULE_VERSION);
            assert_ne!(found, expected);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp16);
    let weights = net.init_weights(5);
    let engine = Engine::load_schedule_lenient(net, weights, &bumped, ctx);
    assert!(matches!(
        engine.downgrades()[0],
        Downgrade::Artifact {
            error: ScheduleError::VersionMismatch { .. }
        }
    ));
}

/// Identity mismatches — wrong network, device or precision — each
/// surface as their own typed error from the strict loader.
#[test]
fn identity_mismatches_are_typed_errors() {
    let (net, json) = saved_artifact();
    let artifact = ScheduleArtifact::from_json(&json).expect("intact artifact parses");
    let weights = net.init_weights(5);

    let other_net = Workload::WaymoCenterPoint1f.network();
    match Engine::load_schedule(
        other_net.clone(),
        other_net.init_weights(1),
        &artifact,
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    ) {
        Err(ScheduleError::NetworkMismatch { .. }) => {}
        other => panic!("expected NetworkMismatch, got {other:?}"),
    }

    match Engine::load_schedule(
        net.clone(),
        weights.clone(),
        &artifact,
        ExecCtx::functional(Device::jetson_orin(), Precision::Fp16),
    ) {
        Err(ScheduleError::DeviceMismatch { .. }) => {}
        other => panic!("expected DeviceMismatch, got {other:?}"),
    }

    match Engine::load_schedule(
        net.clone(),
        weights.clone(),
        &artifact,
        ExecCtx::functional(Device::rtx3090(), Precision::Fp32),
    ) {
        Err(ScheduleError::PrecisionMismatch { .. }) => {}
        other => panic!("expected PrecisionMismatch, got {other:?}"),
    }

    // The same artifact loads cleanly against the matching identity.
    let engine = Engine::load_schedule(
        net,
        weights,
        &artifact,
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    )
    .expect("matching identity loads");
    assert!(!engine.is_degraded());
}
