//! Integration: tuned schedules survive serialization and drive the
//! deployment engine across devices.

use torchsparse::autotune::{tune_inference, TuneResult, TunerOptions};
use torchsparse::core::{Engine, Session};
use torchsparse::dataflow::ExecCtx;
use torchsparse::gpusim::Device;
use torchsparse::tensor::Precision;
use torchsparse::workloads::Workload;

#[test]
fn tune_save_load_deploy() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let tuning_scene = w.scene_scaled(1, 0.05);
    let session = Session::new(&net, tuning_scene.coords());
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);

    // Tune once, persist the schedule.
    let result = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );
    let json = result.to_json().expect("schedule serializes");

    // "Deploy" from the serialized schedule on fresh scenes.
    let restored = TuneResult::from_json(&json).expect("schedule loads");
    let weights = net.init_weights(5);
    let engine = Engine::new(
        net.clone(),
        weights,
        restored
            .group_configs()
            .expect("restored schedule carries configs")
            .clone(),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    for seed in 10..13 {
        let scene = w.scene_scaled(seed, 0.05);
        let (out, report) = engine.infer(&scene);
        assert_eq!(out.num_points(), scene.num_points());
        assert!(report.total_us() > 0.0);
    }

    // The restored schedule must time identically to the fresh one.
    let fresh = session
        .simulate_inference(result.group_configs().expect("configs"), &ctx)
        .total_us();
    let loaded = session
        .simulate_inference(restored.group_configs().expect("configs"), &ctx)
        .total_us();
    assert_eq!(fresh.to_bits(), loaded.to_bits());
}

#[test]
fn schedules_transfer_across_devices_with_degradation() {
    // A schedule tuned for the A100 still *runs* on Orin, but retuning
    // for Orin must not be worse — device-specific tuning is the point.
    let w = Workload::WaymoCenterPoint1f;
    let net = w.network();
    let scene = w.scene_scaled(2, 0.05);
    let session = Session::new(&net, scene.coords());

    let a100_ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
    let orin_ctx = ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16);

    let a100_schedule = tune_inference(
        std::slice::from_ref(&session),
        &a100_ctx,
        &TunerOptions::default(),
    );
    let orin_schedule = tune_inference(
        std::slice::from_ref(&session),
        &orin_ctx,
        &TunerOptions::default(),
    );

    let foreign = session
        .simulate_inference(a100_schedule.group_configs().expect("configs"), &orin_ctx)
        .total_us();
    let native = session
        .simulate_inference(orin_schedule.group_configs().expect("configs"), &orin_ctx)
        .total_us();
    assert!(
        native <= foreign + 1e-6,
        "native {native} > foreign {foreign}"
    );
}
