//! Integration: the serving subsystem end to end — batched inference is
//! bit-identical to serial, schedules persist across server restarts,
//! and SLO accounting is consistent.

use std::time::Duration;

use proptest::prelude::*;

use torchsparse::autotune::{tune_inference, TunerOptions};
use torchsparse::core::{
    Engine, GroupConfigs, LatencyStats, NetworkBuilder, Session, SparseTensor,
};
use torchsparse::dataflow::{DataflowConfig, ExecCtx};
use torchsparse::gpusim::Device;
use torchsparse::kernelmap::{unique_coords, Coord};
use torchsparse::serve::{sort_by_coord, ServeConfig, Server};
use torchsparse::tensor::{rng_from_seed, uniform_matrix, Precision};
use torchsparse::workloads::Workload;

/// A small U-Net: downsample, transposed upsample and a skip concat,
/// so batching is exercised across stride levels and group kinds.
fn unet_engine() -> Engine {
    let mut b = NetworkBuilder::new("serve-unet", 4);
    let c1 = b.conv_block("enc", NetworkBuilder::INPUT, 8, 3, 1);
    let d = b.conv_block("down", c1, 12, 2, 2);
    let u = b.conv_block_transposed("up", d, 8, 2, 2);
    let cat = b.concat("skip", u, c1);
    let _ = b.conv("head", cat, 4, 1, 1);
    let net = b.build();
    let weights = net.init_weights(3);
    Engine::new(
        net,
        weights,
        GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    )
}

fn frame_strategy() -> impl Strategy<Value = SparseTensor> {
    (
        prop::collection::vec(
            (-10..10i32, -10..10i32, -3..3i32).prop_map(|(x, y, z)| (x, y, z)),
            5..60,
        ),
        0..4i32,
        1u64..1_000_000,
    )
        .prop_map(|(pts, batch, seed)| {
            let coords: Vec<Coord> = pts
                .into_iter()
                .map(|(x, y, z)| Coord::new(batch, x, y, z))
                .collect();
            let coords = unique_coords(&coords);
            let n = coords.len();
            SparseTensor::new(
                coords,
                uniform_matrix(&mut rng_from_seed(seed), n, 4, -1.0, 1.0),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: whatever batches the server forms,
    /// splitting them back yields outputs bit-identical to running each
    /// frame alone through `Engine::infer`.
    #[test]
    fn batched_serving_is_bit_identical_to_serial(
        frames in prop::collection::vec(frame_strategy(), 1..7),
        max_batch in 1usize..5,
        workers in 1usize..4,
    ) {
        let engine = unet_engine();
        let server = Server::new(
            engine.clone(),
            ServeConfig::default()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_max_wait(Duration::from_millis(3)),
        );
        let handles: Vec<_> = frames
            .iter()
            .enumerate()
            .map(|(i, f)| server.submit(i as u64, f.clone()).expect("admitted"))
            .collect();
        for (f, h) in frames.iter().zip(handles) {
            let served = h.wait().expect("served").output;
            let (serial, _) = engine.infer(f);
            let serial = sort_by_coord(&serial);
            prop_assert_eq!(served.coords(), serial.coords());
            // Bit-identical features, not approximate equality.
            let a = served.feats().as_slice();
            let b = serial.feats().as_slice();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let report = server.shutdown();
        prop_assert_eq!(report.completed, frames.len() as u64);
    }
}

/// Tune once, persist the schedule, boot a server from the persisted
/// artifact: the restored engine serves the same outputs and simulates
/// bit-identical latency.
#[test]
fn server_boots_from_persisted_schedule() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let tuning_scene = w.scene_scaled(1, 0.05);
    let session = Session::new(&net, tuning_scene.coords());
    let sim_ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let result = tune_inference(
        std::slice::from_ref(&session),
        &sim_ctx,
        &TunerOptions::default(),
    );
    let configs = result
        .group_configs()
        .expect("tuner yields configs")
        .clone();

    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp16);
    let weights = net.init_weights(5);
    let tuned = Engine::new(net.clone(), weights.clone(), configs, ctx.clone());

    // Persist and restore, as a server restart would.
    let json = tuned
        .save_schedule()
        .with_tuned_latency(result.tuned_latency_us)
        .to_json()
        .expect("artifact serializes");
    let artifact = torchsparse::core::ScheduleArtifact::from_json(&json).expect("artifact loads");
    let restored =
        Engine::load_schedule(net, weights, &artifact, ctx).expect("matching artifact loads");

    let scene = w.scene_scaled(9, 0.04);
    assert_eq!(
        tuned.simulate(&scene).total_us().to_bits(),
        restored.simulate(&scene).total_us().to_bits(),
        "restored schedule must time bit-identically"
    );

    let server = Server::new(restored, ServeConfig::default());
    let resp = server
        .submit(0, scene.clone())
        .expect("admitted")
        .wait()
        .expect("served");
    let (serial, report) = tuned.infer(&scene);
    assert_eq!(resp.output, sort_by_coord(&serial));
    assert_eq!(resp.sim_us.to_bits(), report.total_us().to_bits());
    server.shutdown();
}

/// SLO accounting: per-stream percentiles are ordered and the report
/// survives its JSON round trip.
#[test]
fn slo_report_is_consistent_and_serializable() {
    let engine = unet_engine();
    let server = Server::new(
        engine,
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(1)),
    );
    let mut handles = Vec::new();
    for i in 0..12u64 {
        let mut frame = None;
        // Reuse the proptest generator deterministically.
        let coords: Vec<Coord> = (0..20)
            .map(|k| Coord::new(0, k % 5, k / 5 + (i % 3) as i32, k % 2))
            .collect();
        let coords = unique_coords(&coords);
        let n = coords.len();
        frame.replace(SparseTensor::new(
            coords,
            uniform_matrix(&mut rng_from_seed(i), n, 4, -1.0, 1.0),
        ));
        handles.push(
            server
                .submit(i % 3, frame.take().expect("built"))
                .expect("admitted"),
        );
    }
    for h in handles {
        h.wait().expect("served");
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 12);
    assert_eq!(report.streams.len(), 3);
    for s in &report.streams {
        assert!(s.latency.p50_us <= s.latency.p90_us);
        assert!(s.latency.p90_us <= s.latency.p99_us);
        assert!(s.latency.min_us <= s.latency.p50_us);
        assert!(s.latency.p99_us <= s.latency.max_us);
    }
    let overall = report.overall.expect("completions recorded");
    assert_eq!(overall.runs, 12);
    assert!(report.throughput_fps > 0.0);
    let json = report.to_json().expect("serializes");
    let back = torchsparse::serve::ServeReport::from_json(&json).expect("parses");
    assert_eq!(back, report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pins the documented merge contract: `runs`, `min`, `max` are
    /// exact, and the pooled mean/variance match statistics computed
    /// over the concatenated samples to floating-point accuracy —
    /// merging summaries loses no moment information. (Percentiles are
    /// explicitly a run-weighted approximation and are not pinned.)
    #[test]
    fn latency_merge_equals_stats_over_concatenated_samples(
        a in prop::collection::vec(1.0f64..10_000.0, 1..48),
        b in prop::collection::vec(1.0f64..10_000.0, 1..48),
    ) {
        let sa = LatencyStats::from_latencies_us(&a).expect("non-empty");
        let sb = LatencyStats::from_latencies_us(&b).expect("non-empty");
        let merged = sa.merge(&sb);
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let pooled = LatencyStats::from_latencies_us(&concat).expect("non-empty");

        prop_assert_eq!(merged.runs, pooled.runs);
        prop_assert_eq!(merged.min_us, pooled.min_us, "min is exact");
        prop_assert_eq!(merged.max_us, pooled.max_us, "max is exact");
        let mean_tol = 1e-9 * (1.0 + pooled.mean_us.abs());
        prop_assert!(
            (merged.mean_us - pooled.mean_us).abs() <= mean_tol,
            "pooled mean {} vs concatenated {}", merged.mean_us, pooled.mean_us
        );
        // Compare variances: the grouped decomposition is algebraically
        // exact, so any difference is rounding, bounded by a few ulps
        // of the squared data range.
        let var_tol = 1e-9 * (1.0 + pooled.max_us * pooled.max_us);
        prop_assert!(
            (merged.std_us.powi(2) - pooled.std_us.powi(2)).abs() <= var_tol,
            "pooled variance {} vs concatenated {}",
            merged.std_us.powi(2), pooled.std_us.powi(2)
        );
        // Merge must be symmetric in its inputs.
        let rev = sb.merge(&sa);
        prop_assert_eq!(merged.runs, rev.runs);
        prop_assert!((merged.mean_us - rev.mean_us).abs() <= mean_tol);
    }
}

/// `ServeReport::merge` on two real serving runs: counters sum and the
/// overall latency pool carries exactly the union of the samples.
#[test]
fn reports_from_two_servers_merge_consistently() {
    let run = |streams: u64, frames: u64, seed: u64| {
        let server = Server::new(
            unet_engine(),
            ServeConfig::default()
                .with_workers(2)
                .with_max_wait(Duration::from_millis(1)),
        );
        let handles: Vec<_> = (0..frames)
            .map(|i| {
                let coords: Vec<Coord> = (0..18)
                    .map(|k| Coord::new(0, k % 5, k / 5 + (i % 2) as i32, k % 2))
                    .collect();
                let coords = unique_coords(&coords);
                let n = coords.len();
                let f = SparseTensor::new(
                    coords,
                    uniform_matrix(&mut rng_from_seed(seed + i), n, 4, -1.0, 1.0),
                );
                server.submit(i % streams, f).expect("admitted")
            })
            .collect();
        for h in handles {
            h.wait().expect("served");
        }
        server.shutdown()
    };
    let a = run(2, 5, 100);
    let b = run(3, 7, 200);
    let merged = a.merge(&b);
    assert_eq!(merged.completed, 12);
    assert_eq!(merged.overall.expect("pooled").runs, 12);
    // Stream 0 exists in both runs; its pooled run count is the sum.
    let s0 = merged.streams.iter().find(|s| s.stream == 0).expect("s0");
    let a0 = a.streams.iter().find(|s| s.stream == 0).expect("a0");
    let b0 = b.streams.iter().find(|s| s.stream == 0).expect("b0");
    assert_eq!(s0.latency.runs, a0.latency.runs + b0.latency.runs);
    assert!(merged.throughput_fps > 0.0);
    assert!(!merged.saw_faults(), "clean runs report no faults");
}
