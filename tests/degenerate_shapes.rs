//! Degenerate-shape regressions end to end: single-point clouds and
//! 1-wide channels must flow through the engine (compile + run, every
//! dataflow) and the serving path without panics.

use std::time::Duration;

use ts_core::{run_network, Engine, GroupConfigs, NetworkBuilder, SparseTensor};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::Device;
use ts_kernelmap::Coord;
use ts_serve::{ServeConfig, Server};
use ts_tensor::{rng_from_seed, uniform_matrix, Matrix, Precision};

fn all_configs() -> Vec<DataflowConfig> {
    let mut v = vec![
        DataflowConfig::gather_scatter(false),
        DataflowConfig::fetch_on_demand(false),
    ];
    v.extend(DataflowConfig::full_space(4));
    v
}

/// A narrow network: 1-channel input, a strided conv and a 1-channel
/// head, so both `c_in = 1` and `c_out = 1` convs execute.
fn narrow_network() -> (ts_core::Network, ts_core::NetworkWeights) {
    let mut b = NetworkBuilder::new("narrow", 1);
    let stem = b.conv("stem", NetworkBuilder::INPUT, 3, 3, 1);
    let down = b.conv("down", stem, 2, 2, 2);
    let _ = b.conv("head", down, 1, 1, 1);
    let net = b.build();
    let weights = net.init_weights(77);
    (net, weights)
}

#[test]
fn single_point_runs_through_every_dataflow_in_the_engine() {
    let (net, weights) = narrow_network();
    let input = SparseTensor::new(
        vec![Coord::new(0, 0, 0, 0)],
        uniform_matrix(&mut rng_from_seed(1), 1, 1, -1.0, 1.0),
    );
    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp32);
    for cfg in all_configs() {
        let cfgs = GroupConfigs::uniform(cfg);
        let (out, report) = run_network(&net, &weights, &input, &cfgs, &ctx);
        assert_eq!(out.channels(), 1, "{cfg}");
        assert!(out.num_points() >= 1, "{cfg}");
        assert!(report.total_us() > 0.0, "{cfg}");
    }
}

#[test]
fn single_point_compiles_and_simulates() {
    let (net, weights) = narrow_network();
    let engine = Engine::new(
        net,
        weights,
        GroupConfigs::uniform(DataflowConfig::implicit_gemm(2)),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    let input = SparseTensor::new(
        vec![Coord::new(0, 3, 3, 3)],
        Matrix::from_rows(&[&[0.5f32]]),
    );
    let session = engine.compile(&input).expect("single point compiles");
    let report = engine.simulate_in(&session);
    assert!(report.total_us() > 0.0);
}

#[test]
fn one_wide_channels_run_through_the_serve_path() {
    let (net, weights) = narrow_network();
    let engine = Engine::new(
        net,
        weights,
        GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    let server = Server::new(
        engine,
        ServeConfig::default()
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    // Mix of single-point and few-point frames, all 1-channel.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let coords: Vec<Coord> = (0..=i).map(|j| Coord::new(0, j, i, 0)).collect();
            let n = coords.len();
            let frame = SparseTensor::new(
                coords,
                uniform_matrix(&mut rng_from_seed(10 + i as u64), n, 1, -1.0, 1.0),
            );
            server.submit(i as u64, frame).expect("admitted")
        })
        .collect();
    for h in handles {
        let out = h.wait().expect("served");
        assert_eq!(out.output.channels(), 1);
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 4);
}

#[test]
fn engine_rejects_empty_and_duplicate_inputs_with_typed_errors() {
    let (net, weights) = narrow_network();
    let engine = Engine::new(
        net,
        weights,
        GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    // Duplicate coords: typed CompileError, not a panic.
    let dup = SparseTensor::new(
        vec![Coord::new(0, 1, 1, 1), Coord::new(0, 1, 1, 1)],
        uniform_matrix(&mut rng_from_seed(2), 2, 1, -1.0, 1.0),
    );
    assert!(matches!(
        engine.compile(&dup),
        Err(ts_core::CompileError::DuplicateCoords {
            points: 2,
            unique: 1
        })
    ));
    // The duplicate is also what the verify invariant checker reports.
    let violations = ts_verify::check_sparse_tensor(&dup);
    assert_eq!(violations.len(), 1);
    assert!(matches!(
        violations[0],
        ts_verify::Violation::DuplicateCoord { count: 2, .. }
    ));
}
