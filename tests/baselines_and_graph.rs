//! Integration: baseline system rankings and R-GCN graph workloads.

use torchsparse::baselines::{System, ALL_SYSTEMS};
use torchsparse::core::Session;
use torchsparse::gpusim::Device;
use torchsparse::graph::{GraphSystem, RgcnModel};
use torchsparse::tensor::Precision;
use torchsparse::workloads::graphs::HeteroGraph;
use torchsparse::workloads::Workload;

fn session(w: Workload, scale: f32, seed: u64) -> Session {
    Session::new(&w.network(), w.scene_scaled(seed, scale).coords())
}

#[test]
fn torchsparse_pp_wins_on_every_workload_class() {
    let d = Device::rtx3090();
    for (w, scale) in [
        (Workload::NuScenesMinkUNet1f, 0.05),
        (Workload::WaymoCenterPoint1f, 0.05),
    ] {
        let s = session(w, scale, 13);
        let ours = System::TorchSparsePP.inference_ms(&s, d.clone(), Precision::Fp16);
        for sys in &ALL_SYSTEMS[..4] {
            let theirs = sys.inference_ms(&s, d.clone(), Precision::Fp16);
            assert!(
                ours <= theirs * 1.001,
                "{}: ours {ours:.3} lost to {} ({theirs:.3})",
                w.name(),
                sys.name()
            );
        }
    }
}

#[test]
fn legacy_architectures_preserve_the_ranking() {
    // Paper: "at least 1.4x, 1.8x, 2.4x, 2.2x speedup over SpConv 2.3.5,
    // TorchSparse, SpConv 1.2.1 and MinkowskiEngine" on Turing/Pascal.
    let s = session(Workload::SemanticKittiMinkUNet05, 0.05, 21);
    for device in [Device::rtx2080ti(), Device::gtx1080ti()] {
        let ours = System::TorchSparsePP.inference_ms(&s, device.clone(), Precision::Fp16);
        let sp2 = System::SpConvV2.inference_ms(&s, device.clone(), Precision::Fp16);
        let mink = System::MinkowskiEngine.inference_ms(&s, device.clone(), Precision::Fp16);
        assert!(ours < sp2, "{}: {ours} !< {sp2}", device.name);
        assert!(sp2 < mink, "{}: {sp2} !< {mink}", device.name);
    }
}

#[test]
fn fp32_narrows_the_spconv2_gap_on_pascal() {
    // Without tensor cores every system runs the same math units, so the
    // implicit-GEMM systems should be close; TS++ still wins via the
    // enlarged design space.
    let s = session(Workload::NuScenesMinkUNet1f, 0.05, 17);
    let d = Device::gtx1080ti();
    let ours = System::TorchSparsePP.inference_ms(&s, d.clone(), Precision::Fp32);
    let sp2 = System::SpConvV2.inference_ms(&s, d, Precision::Fp32);
    let ratio = sp2 / ours;
    assert!((1.0..3.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn centerpoint_on_tspp_beats_flatformer_on_orin() {
    // Section 5.2 remark: "the 3-frame CenterPoint model on Waymo is
    // 1.5x faster than FlatFormer with higher accuracy on Orin".
    use torchsparse::baselines::flatformer::{flatformer_ms, FlatFormerSpec};
    let w = Workload::WaymoCenterPoint3f;
    let scene = w.scene_scaled(42, 0.35);
    let session = Session::new(&w.network(), scene.coords());
    let orin = Device::jetson_orin();
    let ours = System::TorchSparsePP.inference_ms(&session, orin.clone(), Precision::Fp16);
    let ff = flatformer_ms(scene.num_points() as u64, &FlatFormerSpec::default(), orin);
    let ratio = ff / ours;
    assert!(
        (1.1..2.2).contains(&ratio),
        "expected ~1.5x like the paper, got {ratio:.2} ({ff:.2} vs {ours:.2} ms)"
    );
}

#[test]
fn rgcn_runs_on_all_paper_graphs() {
    let d = Device::rtx3090();
    for g in HeteroGraph::paper_suite(3) {
        let m = RgcnModel::new(&g, 32, 32, 8, 5);
        let ours = GraphSystem::TorchSparsePP.run(&g, &m, d.clone());
        assert!(ours.latency_us > 0.0, "{}", g.name);
        assert!(ours.peak_bytes > 0, "{}", g.name);
        let dgl = GraphSystem::Dgl.run(&g, &m, d.clone());
        assert!(dgl.latency_us > ours.latency_us, "{}", g.name);
        assert!(dgl.peak_bytes > ours.peak_bytes, "{}", g.name);
    }
}

#[test]
fn graph_speedup_grows_with_relation_count() {
    // The per-relation kernel-launch overhead is DGL's scaling weakness:
    // more relations, bigger win for the fused engine.
    let d = Device::rtx3090();
    let few = HeteroGraph::generate("few", 20_000, 8, 80_000, 1);
    let many = HeteroGraph::generate("many", 20_000, 128, 80_000, 1);
    let speedup = |g: &HeteroGraph| {
        let m = RgcnModel::new(g, 32, 32, 8, 2);
        GraphSystem::Dgl.latency_us(g, &m, d.clone())
            / GraphSystem::TorchSparsePP.latency_us(g, &m, d.clone())
    };
    assert!(speedup(&many) > speedup(&few));
}
