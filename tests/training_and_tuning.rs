//! Integration: functional training convergence and the Sparse Autotuner
//! end-to-end.

use torchsparse::autotune::{tune_inference, tune_training, BindingScheme, TunerOptions};
use torchsparse::core::{train_step, NetworkBuilder, Session, TrainConfigs};
use torchsparse::dataflow::{DataflowConfig, ExecCtx};
use torchsparse::gpusim::Device;
use torchsparse::tensor::Precision;
use torchsparse::workloads::Workload;

#[test]
fn training_a_small_unet_converges() {
    let mut b = NetworkBuilder::new("mini-unet", 4);
    let c1 = b.conv_block("enc", NetworkBuilder::INPUT, 8, 3, 1);
    let d = b.conv_block("down", c1, 12, 2, 2);
    let u = b.conv_block_transposed("up", d, 8, 2, 2);
    let cat = b.concat("skip", u, c1);
    let _ = b.conv("head", cat, 3, 1, 1);
    let net = b.build();
    let mut weights = net.init_weights(5);

    let scene = Workload::NuScenesMinkUNet1f.scene_scaled(4, 0.02);
    let ctx = ExecCtx::functional(Device::a100(), Precision::Fp32);
    let cfgs = TrainConfigs::bound(DataflowConfig::implicit_gemm(1));

    let mut losses = Vec::new();
    for _ in 0..10 {
        let out = train_step(&net, &mut weights, &scene, &cfgs, &ctx, 8e-3);
        losses.push(out.loss);
    }
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.8),
        "loss did not drop: {losses:?}"
    );
    assert!(losses.iter().all(|l| l.is_finite()));
}

#[test]
fn tuner_beats_every_uniform_configuration() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let scene = w.scene_scaled(8, 0.04);
    let session = Session::new(&net, scene.coords());
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);

    let tuned = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );
    for cfg in DataflowConfig::full_space(4) {
        let uniform = session
            .simulate_inference(&torchsparse::core::GroupConfigs::uniform(cfg), &ctx)
            .total_us();
        assert!(
            tuned.tuned_latency_us <= uniform + 1e-6,
            "tuned {} lost to uniform {cfg}: {uniform}",
            tuned.tuned_latency_us
        );
    }
}

#[test]
fn training_tuner_improves_over_bound_default_on_both_devices() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let batch = w.batch_scaled(3, 0.035, 2);
    let session = Session::new(&net, batch.coords());
    for device in [Device::a100(), Device::rtx2080ti()] {
        let ctx = ExecCtx::simulate(device.clone(), Precision::Fp16);
        for scheme in [BindingScheme::ForwardDgrad, BindingScheme::DgradWgrad] {
            let r = tune_training(
                std::slice::from_ref(&session),
                &ctx,
                &TunerOptions::default(),
                scheme,
            );
            assert!(
                r.tuned_latency_us <= r.default_latency_us + 1e-6,
                "{} / {}: tuned {} > default {}",
                device.name,
                scheme.name(),
                r.tuned_latency_us,
                r.default_latency_us
            );
        }
    }
}

#[test]
fn tuned_configs_serialize_to_json() {
    let w = Workload::NuScenesCenterPoint10f;
    let net = w.network();
    let scene = w.scene_scaled(6, 0.03);
    let session = Session::new(&net, scene.coords());
    let ctx = ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16);
    let result = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );

    // The per-group schedule is what deployments persist and reuse for
    // millions of scenes (Section 4.2).
    let json = serde_json::to_string(&result.per_group_choice).expect("serializable");
    let parsed: Vec<(torchsparse::core::GroupKey, DataflowConfig)> =
        serde_json::from_str(&json).expect("deserializable");
    assert_eq!(parsed.len(), result.per_group_choice.len());
    assert_eq!(parsed[0].1, result.per_group_choice[0].1);
}
