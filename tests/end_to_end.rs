//! Cross-crate integration: synthetic LiDAR scenes through full networks,
//! functionally and on the simulated GPU.

use torchsparse::core::{GroupConfigs, Session};
use torchsparse::dataflow::{DataflowConfig, ExecCtx};
use torchsparse::gpusim::Device;
use torchsparse::tensor::Precision;
use torchsparse::workloads::{models, Workload, ALL_WORKLOADS};

#[test]
fn minkunet_functional_forward_on_synthetic_scene() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let scene = w.scene_scaled(1, 0.04);
    let weights = net.init_weights(7);
    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp32);
    let input = scene;
    let (out, report) = torchsparse::core::run_network(
        &net,
        &weights,
        &input,
        &GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        &ctx,
    );
    // Segmentation output: one prediction per input voxel, 16 classes.
    assert_eq!(out.num_points(), input.num_points());
    assert_eq!(out.channels(), 16);
    assert_eq!(out.stride(), 1);
    assert!(report.total_us() > 0.0);
    assert!(out.feats().as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn centerpoint_backbone_downsamples() {
    let net = models::centerpoint_backbone(4);
    let w = Workload::WaymoCenterPoint1f;
    let scene = w.scene_scaled(2, 0.04);
    let n_in = scene.num_points();
    let weights = net.init_weights(3);
    let ctx = ExecCtx::functional(Device::jetson_orin(), Precision::Fp32);
    let (out, _) = torchsparse::core::run_network(
        &net,
        &weights,
        &scene,
        &GroupConfigs::uniform(DataflowConfig::implicit_gemm(0)),
        &ctx,
    );
    assert_eq!(out.stride(), 8);
    assert!(out.num_points() < n_in, "{} !< {n_in}", out.num_points());
    assert_eq!(out.channels(), 128);
}

#[test]
fn every_workload_compiles_into_a_session() {
    for w in ALL_WORKLOADS {
        let net = w.network();
        let scene = w.scene_scaled(5, 0.03);
        let session = Session::new(&net, scene.coords());
        assert!(
            session.groups().len() >= 3,
            "{}: {} groups",
            w.name(),
            session.groups().len()
        );
        assert_eq!(session.conv_layer_count(), net.conv_count());
        let ctx = ExecCtx::simulate(Device::a100(), Precision::Fp16);
        let r = session.simulate_inference(
            &GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
            &ctx,
        );
        assert!(r.total_us() > 0.0, "{}", w.name());
        assert!(r.mapping_us() > 0.0, "{}", w.name());
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let w = Workload::NuScenesCenterPoint10f;
    let net = w.network();
    let scene = w.scene_scaled(11, 0.05);
    let cfg = GroupConfigs::uniform(DataflowConfig::implicit_gemm(2));
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let a = Session::new(&net, scene.coords())
        .simulate_inference(&cfg, &ctx)
        .total_us();
    let b = Session::new(&net, scene.coords())
        .simulate_inference(&cfg, &ctx)
        .total_us();
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn precision_ordering_holds_on_tensor_core_devices() {
    let w = Workload::SemanticKittiMinkUNet05;
    let net = w.network();
    let scene = w.scene_scaled(3, 0.05);
    let session = Session::new(&net, scene.coords());
    let cfg = GroupConfigs::uniform(DataflowConfig::implicit_gemm(1));
    let t16 = session
        .simulate_inference(&cfg, &ExecCtx::simulate(Device::a100(), Precision::Fp16))
        .total_us();
    let t32 = session
        .simulate_inference(&cfg, &ExecCtx::simulate(Device::a100(), Precision::Fp32))
        .total_us();
    assert!(t16 < t32, "FP16 {t16} should beat FP32 {t32} on A100");
}

#[test]
fn faster_device_is_faster_end_to_end() {
    let w = Workload::NuScenesMinkUNet1f;
    let net = w.network();
    let scene = w.scene_scaled(9, 0.05);
    let session = Session::new(&net, scene.coords());
    let cfg = GroupConfigs::uniform(DataflowConfig::implicit_gemm(1));
    let a100 = session
        .simulate_inference(&cfg, &ExecCtx::simulate(Device::a100(), Precision::Fp16))
        .total_us();
    let orin = session
        .simulate_inference(
            &cfg,
            &ExecCtx::simulate(Device::jetson_orin(), Precision::Fp16),
        )
        .total_us();
    assert!(a100 < orin, "A100 {a100} should beat Orin {orin}");
}
