//! End-to-end observability: one tracer installed at the top of the
//! stack observes tuning, kernel generation, GPU simulation, engine
//! execution and serving, and the exported Chrome trace passes a
//! structural schema check.

use std::collections::HashMap;
use std::time::Duration;

use serde_json::Value;
use torchsparse::autotune::{tune_inference, TunerOptions};
use torchsparse::core::{Engine, NetworkBuilder, Session, SparseTensor};
use torchsparse::dataflow::ExecCtx;
use torchsparse::gpusim::Device;
use torchsparse::kernelmap::{unique_coords, Coord};
use torchsparse::serve::{ServeConfig, Server};
use torchsparse::tensor::{rng_from_seed, uniform_matrix, Precision};
use torchsparse::trace::{uninstall, Subsystem, Tracer};

fn frame(seed: u64) -> SparseTensor {
    let coords: Vec<Coord> = (0..40)
        .map(|i| Coord::new(0, i % 7 + (seed % 3) as i32, i / 7, i % 2))
        .collect();
    let coords = unique_coords(&coords);
    let n = coords.len();
    SparseTensor::new(
        coords,
        uniform_matrix(&mut rng_from_seed(seed), n, 4, -1.0, 1.0),
    )
}

/// Structural validation of a Chrome trace-event JSON document:
/// every non-metadata event has pid/tid/ts, timestamps are monotone
/// per lane, B/E events balance, X events have non-negative durations,
/// C events carry a value.
fn assert_chrome_schema(json: &str) -> usize {
    let v: Value = serde_json::from_str(json).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut checked = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        if ph == "M" {
            continue;
        }
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid");
        let tid = ev.get("tid").and_then(|t| t.as_u64()).expect("tid");
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts");
        let key = (pid, tid);
        let prev = last_ts.get(&key).copied().unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "ts must be monotone per tid on {key:?}");
        last_ts.insert(key, ts);
        match ph {
            "B" => {
                assert!(ev.get("name").is_some(), "B events carry names");
                *depth.entry(key).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(key).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on {key:?}");
            }
            "X" => {
                assert!(ev.get("dur").and_then(|d| d.as_f64()).expect("dur") >= 0.0);
            }
            "C" => {
                assert!(ev.get("args").and_then(|a| a.get("value")).is_some());
            }
            other => panic!("unexpected phase {other}"),
        }
        checked += 1;
    }
    for (key, d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on {key:?}");
    }
    checked
}

#[test]
fn one_tracer_observes_all_five_subsystems() {
    let tracer = Tracer::new();
    tracer.install();

    let mut b = NetworkBuilder::new("trace-e2e", 4);
    let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
    let _ = b.conv("head", c, 2, 1, 1);
    let net = b.build();

    // Tuning covers autotune, kernelgen and core; the tuner keeps the
    // per-candidate virtual kernel lanes quiet.
    let session = Session::new(&net, frame(1).coords());
    let sim_ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let tuned = tune_inference(
        std::slice::from_ref(&session),
        &sim_ctx,
        &TunerOptions::default(),
    );

    // A plain engine inference re-enables them, which is where the
    // gpusim kernel spans come from.
    let engine = Engine::new(
        net.clone(),
        net.init_weights(3),
        tuned.group_configs().expect("tuner yields configs").clone(),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    let _ = engine.infer(&frame(2));

    // A short serving pass covers the serve request lifecycle.
    let server = Server::new(
        engine,
        ServeConfig::default()
            .with_workers(1)
            .with_max_wait(Duration::from_millis(1)),
    );
    let h1 = server.submit(0, frame(3)).expect("admitted");
    let h2 = server.submit(1, frame(4)).expect("admitted");
    h1.wait().expect("served");
    h2.wait().expect("served");
    server.shutdown();
    uninstall();

    let json = tracer.chrome_trace_json();
    let checked = assert_chrome_schema(&json);
    assert!(checked > 0, "trace has events");

    let spans = tracer.spans();
    for sub in [
        Subsystem::Kernelgen,
        Subsystem::Gpusim,
        Subsystem::Core,
        Subsystem::Autotune,
        Subsystem::Serve,
    ] {
        assert!(
            spans.iter().any(|s| s.subsystem == sub),
            "no spans recorded by {sub:?}"
        );
    }

    // Spot-check the load-bearing span names and counters.
    for name in ["tune_inference", "simulate_inference", "request", "infer"] {
        assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
    }
    assert!(tracer.counter("core.prepare_cache.miss") > 0);
    assert!(tracer.counter("serve.requests.completed") == 2);
    assert!(tracer.counter("kernelgen.kernels.generated") > 0);
}
