//! Acceptance: the seeded chaos scenario from the robustness design —
//! corrupt a persisted schedule, boot the server leniently from it,
//! kill a worker mid-run — and require that the run completes with zero
//! escaped panics, every request resolved to a typed outcome, and the
//! report accounting for both the restarts and the downgrades.

use std::time::Duration;

use torchsparse::core::{Engine, GroupConfigs, NetworkBuilder, ScheduleArtifact, SparseTensor};
use torchsparse::dataflow::{DataflowConfig, ExecCtx};
use torchsparse::gpusim::Device;
use torchsparse::kernelmap::{unique_coords, Coord};
use torchsparse::serve::{
    BreakerConfig, Client, FaultPlan, Rejected, RetryPolicy, ServeConfig, Server,
};
use torchsparse::tensor::{rng_from_seed, uniform_matrix, Precision};

const SEED: u64 = 0x000C_4A05;

fn network() -> torchsparse::core::Network {
    let mut b = NetworkBuilder::new("chaos-accept", 4);
    let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
    let _ = b.conv("head", c, 2, 1, 1);
    b.build()
}

fn frame(seed: u64) -> SparseTensor {
    let coords: Vec<Coord> = (0..28)
        .map(|i| Coord::new(0, i % 7 + (seed % 3) as i32, i / 7, i % 2))
        .collect();
    let coords = unique_coords(&coords);
    let n = coords.len();
    SparseTensor::new(
        coords,
        uniform_matrix(&mut rng_from_seed(seed), n, 4, -1.0, 1.0),
    )
}

/// The full scenario, driven end to end by one seed.
#[test]
fn seeded_chaos_run_degrades_and_recovers_without_panics() {
    let plan = FaultPlan::from_seed(SEED).with_panic_on([1]);
    let net = network();
    let weights = net.init_weights(2);
    let ctx = ExecCtx::functional(Device::rtx3090(), Precision::Fp16);

    // A tuned engine persists its schedule; the artifact is then
    // corrupted deterministically (seeded truncation).
    let tuned = Engine::new(
        net.clone(),
        weights.clone(),
        GroupConfigs::uniform(DataflowConfig::gather_scatter(true)),
        ctx.clone(),
    );
    let json = tuned.save_schedule().to_json().expect("serializes");
    let corrupted = plan.corrupt_truncate(&json);
    assert!(
        ScheduleArtifact::from_json(&corrupted).is_err(),
        "truncation must break strict parsing"
    );

    // Lenient boot: the engine comes up degraded on the safe fallback
    // instead of refusing to serve.
    let engine = Engine::load_schedule_lenient(net, weights, &corrupted, ctx);
    assert!(engine.is_degraded());
    let downgrades = engine.downgrades().len();
    assert!(downgrades >= 1);

    // Serve a stream of frames while the fault plan kills the worker
    // handling batch 1.
    let server = Server::new(
        engine,
        ServeConfig::default()
            .with_workers(2)
            .with_max_requeues(2)
            .with_max_wait(Duration::from_millis(1))
            .with_supervisor_poll(Duration::from_millis(2))
            .with_fault_plan(plan),
    );
    let handles: Vec<_> = (0..8)
        .map(|i| server.submit(i % 3, frame(100 + i)).expect("admitted"))
        .collect();
    let mut completed = 0u64;
    for h in handles {
        // Every handle resolves: served output or a typed rejection —
        // a hang here would time the test out, an escaped panic would
        // abort it.
        match h.wait() {
            Ok(resp) => {
                assert!(resp.degraded, "responses from a degraded engine say so");
                completed += 1;
            }
            Err(
                Rejected::WorkerCrashed { .. }
                | Rejected::QueueFull { .. }
                | Rejected::DeadlineExpired { .. },
            ) => {}
            Err(other) => panic!("outcome must be typed and expected, got {other:?}"),
        }
    }
    let report = server.shutdown();
    assert_eq!(report.completed, completed);
    assert!(completed >= 1, "the pool outlives the crash and serves");
    assert_eq!(report.worker_panics, 1, "exactly the injected kill");
    assert!(report.worker_restarts >= 1, "the slot was restarted");
    assert_eq!(report.schedule_downgrades, downgrades as u64);
    assert!(report.saw_faults());
    // The report round-trips with the fault counters intact.
    let back = torchsparse::serve::ServeReport::from_json(&report.to_json().expect("json"))
        .expect("parses");
    assert_eq!(back.worker_restarts, report.worker_restarts);
}

/// Replay: the same seed drives the same fault decisions, so two runs
/// of the scenario agree on what was injected.
#[test]
fn chaos_decisions_replay_from_the_seed() {
    let a = FaultPlan::from_seed(SEED).with_panic_rate(0.2);
    let b = FaultPlan::from_seed(SEED).with_panic_rate(0.2);
    for seq in 0..256 {
        assert_eq!(a.decide(seq), b.decide(seq));
    }
    let json = r#"{ "version": 1, "network": "n" }"#;
    assert_eq!(a.corrupt_truncate(json), b.corrupt_truncate(json));
}

/// The retry client rides out a crashed-out request: the first attempt
/// is shed with `WorkerCrashed` (requeue budget zero, panic on batch
/// 0), the breaker stays closed, and the deterministic backoff retry
/// succeeds against the restarted worker.
#[test]
fn retry_client_recovers_from_a_crashed_worker() {
    let net = network();
    let weights = net.init_weights(4);
    let engine = Engine::new(
        net,
        weights,
        GroupConfigs::uniform(DataflowConfig::safe_fallback()),
        ExecCtx::functional(Device::rtx3090(), Precision::Fp16),
    );
    let server = Server::new(
        engine,
        ServeConfig::default()
            .with_workers(1)
            .with_max_requeues(0)
            .with_max_wait(Duration::from_millis(1))
            .with_supervisor_poll(Duration::from_millis(2))
            .with_fault_plan(FaultPlan::from_seed(SEED).with_panic_on([0])),
    );
    let mut client = Client::new(&server, RetryPolicy::default(), BreakerConfig::default());
    let mut backoffs = Vec::new();
    let resp = client
        .call_with(0, frame(7), |d| backoffs.push(d))
        .expect("retry succeeds after the crash");
    assert_eq!(resp.output.channels(), 2);
    assert_eq!(backoffs.len(), 1, "exactly one retry was needed");
    assert_eq!(
        backoffs[0],
        RetryPolicy::default().backoff_for(0, 0),
        "the backoff schedule is reproducible from the policy"
    );
    let report = server.shutdown();
    assert_eq!(report.shed_crashed, 1);
    assert_eq!(report.completed, 1);
    assert!(report.worker_restarts >= 1);
}
