//! Integration tests for the content-addressed schedule cache
//! (`ts-cache`): warm-start convergence, digest stability across disk
//! round trips, typed-mismatch fallback to cold tuning, and
//! poisoned-entry repair.

use ts_autotune::{tune_inference, tune_inference_warm, TunerOptions, WarmStart};
use ts_cache::{
    tune_cached, warm_boot, BootOrigin, CacheEntry, DriftPolicy, Lookup, ScheduleCache,
    ScheduleKey, TuneOrigin,
};
use ts_core::{GroupConfigs, Session};
use ts_dataflow::{DataflowConfig, ExecCtx};
use ts_gpusim::Device;
use ts_tensor::Precision;
use ts_workloads::Workload;

const WORKLOAD: Workload = Workload::NuScenesMinkUNet1f;

fn sessions(seed: u64, scale: f32) -> Vec<Session> {
    let net = WORKLOAD.network();
    let scene = WORKLOAD.scene_scaled(seed, scale);
    vec![Session::new(&net, scene.coords())]
}

fn ctx() -> ExecCtx {
    ExecCtx::simulate(Device::rtx3090(), Precision::Fp16)
}

/// The tentpole's core claim: on a workload *adjacent* to a cached one
/// (same network, device, precision; map statistics shifted by a
/// different scene), a warm-started tune reaches the quality of a cold
/// tune — within 5 % regret — while sweeping fewer groups.
#[test]
fn warm_start_converges_to_cold_quality_with_less_work() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let base = sessions(1, 0.05);
    let cold = tune_cached(&mut cache, &base, &ctx, &opts, &policy).expect("in-memory");
    assert_eq!(cold.origin, TuneOrigin::Cold);

    // A different scene of the same workload, mildly rescaled: close
    // enough to transfer, far enough that some statistics drift.
    let adjacent = sessions(7, 0.058);
    let warm = tune_cached(&mut cache, &adjacent, &ctx, &opts, &policy).expect("in-memory");
    assert!(
        matches!(warm.origin, TuneOrigin::WarmStart | TuneOrigin::Hit),
        "adjacent workload must not cold-tune, got {:?}",
        warm.origin
    );

    let cold_reference = tune_inference(&adjacent, &ctx, &opts);
    let regret = warm.result.tuned_latency_us / cold_reference.tuned_latency_us;
    assert!(
        regret <= 1.05,
        "warm-start regret {regret:.4} exceeds 1.05x cold-tuned latency"
    );
    assert!(
        warm.result.evaluations < cold_reference.evaluations,
        "warm start must sweep fewer candidates ({} vs {})",
        warm.result.evaluations,
        cold_reference.evaluations
    );
    let n_groups = adjacent[0].groups().len();
    assert!(
        warm.retuned.len() < n_groups,
        "warm start must re-tune a strict subset of groups ({}/{})",
        warm.retuned.len(),
        n_groups
    );
}

/// Re-tuning the *same* workload is an exact hit: one repricing
/// evaluation, identical schedule, nothing swept.
#[test]
fn identical_workload_is_an_exact_hit() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let s = sessions(1, 0.05);
    let cold = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    let hit = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    assert_eq!(hit.origin, TuneOrigin::Hit);
    assert_eq!(hit.result.evaluations, 1);
    assert!(hit.retuned.is_empty());
    assert_eq!(hit.digest, cold.digest);
    assert_eq!(hit.result.configs, cold.result.configs);
    assert_eq!(hit.result.tuned_latency_us, cold.result.tuned_latency_us);
    let counters = cache.counters();
    assert_eq!(counters.hits, 1);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.inserted, 1);
}

/// Digests are content addresses: they must survive a serialize →
/// write → reopen → parse round trip bit-for-bit, and a reopened store
/// must serve the same hits as the one that wrote it.
#[test]
fn digests_are_stable_across_disk_round_trips() {
    let dir = std::env::temp_dir().join(format!("ts_cache_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let s = sessions(1, 0.05);
    let key = ScheduleKey::of(&s[0], &ctx);

    let digest = {
        let mut cache = ScheduleCache::open(&dir).expect("create store");
        let cold = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("write-through");
        assert_eq!(cold.origin, TuneOrigin::Cold);
        cold.digest
    };
    assert_eq!(digest, key.digest(), "entry digest is the key digest");

    // A brand-new process would do exactly this: reopen and probe.
    let mut reopened = ScheduleCache::open(&dir).expect("reopen store");
    assert!(
        reopened.load_issues().is_empty(),
        "{:?}",
        reopened.load_issues()
    );
    assert_eq!(reopened.len(), 1);
    match reopened.lookup(&key, &policy) {
        Lookup::Hit { digest: d, .. } => assert_eq!(d, digest),
        other => panic!("reopened store must hit, got {other:?}"),
    }

    // The stored entry itself round-trips with a stable digest.
    let entry = reopened.get(&digest).expect("entry present").clone();
    let json = serde_json::to_string(&entry).expect("serializes");
    let back: CacheEntry = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.digest(), digest);
    assert_eq!(back.key, entry.key);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A typed mismatch — different device or precision — must never
/// transfer a schedule: the lookup misses and the tune falls back to a
/// full cold search.
#[test]
fn typed_mismatch_falls_back_to_cold_tuning() {
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let s = sessions(1, 0.05);
    let cold = tune_cached(&mut cache, &s, &ctx(), &opts, &policy).expect("in-memory");
    assert_eq!(cold.origin, TuneOrigin::Cold);

    // Same workload, different device tier.
    let a100 = ExecCtx::simulate(Device::a100(), Precision::Fp16);
    let on_a100 = tune_cached(&mut cache, &s, &a100, &opts, &policy).expect("in-memory");
    assert_eq!(
        on_a100.origin,
        TuneOrigin::Cold,
        "device mismatch must miss"
    );

    // Same workload and device, different precision.
    let fp32 = ExecCtx::simulate(Device::rtx3090(), Precision::Fp32);
    let at_fp32 = tune_cached(&mut cache, &s, &fp32, &opts, &policy).expect("in-memory");
    assert_eq!(
        at_fp32.origin,
        TuneOrigin::Cold,
        "precision mismatch must miss"
    );

    assert_eq!(cache.counters().misses, 3);
    assert_eq!(cache.len(), 3, "each identity gets its own entry");
}

/// A poisoned cache entry (a config outside the allowed envelope) must
/// not be served as a hit: the sanitizer repairs the bad slots and the
/// lookup downgrades to a warm start that re-tunes exactly those
/// groups.
#[test]
fn poisoned_entry_is_repaired_and_retuned_not_served() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let s = sessions(1, 0.05);
    let cold = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");

    // Poison one group's tuned config with an out-of-envelope split.
    let mut entry = cache.get(&cold.digest).expect("entry present").clone();
    entry
        .configs
        .per_group
        .insert(2, DataflowConfig::implicit_gemm(999));
    cache.insert(entry).expect("in-memory overwrite");

    let repaired = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    assert_eq!(
        repaired.origin,
        TuneOrigin::WarmStart,
        "a poisoned exact match must downgrade to a warm start"
    );
    assert_eq!(repaired.retuned, vec![2], "only the poisoned slot re-tunes");
    // Re-tuning the repaired slot restores the cold-tuned schedule.
    assert_eq!(repaired.result.configs, cold.result.configs);
    assert_eq!(
        repaired.result.tuned_latency_us,
        cold.result.tuned_latency_us
    );

    // A poisoned *default* slot taints every group.
    let mut entry = cache.get(&repaired.digest).expect("entry present").clone();
    entry.configs.default = DataflowConfig::implicit_gemm(999);
    cache.insert(entry).expect("in-memory overwrite");
    let repaired_all = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    assert_eq!(repaired_all.origin, TuneOrigin::WarmStart);
    let n_groups = s[0].groups().len();
    assert_eq!(repaired_all.retuned, (0..n_groups).collect::<Vec<_>>());
}

/// Evicting an entry (the stale-cache operator drill) makes the next
/// tune cold again.
#[test]
fn evicted_entry_stops_matching() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let s = sessions(1, 0.05);
    let cold = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    assert!(cache.evict(&cold.digest).expect("evict"), "entry existed");
    assert!(!cache.evict(&cold.digest).expect("evict"), "already gone");

    let again = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    assert_eq!(again.origin, TuneOrigin::Cold);
    assert_eq!(cache.counters().evicted, 1);
}

/// `tune_inference_warm` seeded with the uniform default over *all*
/// groups is the same search as a cold `tune_inference` — bit-identical
/// schedule, latencies and evaluation count.
#[test]
fn warm_start_over_all_groups_equals_cold_tune() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let s = sessions(3, 0.05);
    let n_groups = s[0].groups().len();

    let cold = tune_inference(&s, &ctx, &opts);
    let warm = tune_inference_warm(
        &s,
        &ctx,
        &opts,
        &WarmStart::full(GroupConfigs::uniform(opts.default), n_groups),
    );
    assert_eq!(warm.configs, cold.configs);
    assert_eq!(warm.tuned_latency_us, cold.tuned_latency_us);
    assert_eq!(warm.default_latency_us, cold.default_latency_us);
    assert_eq!(warm.evaluations, cold.evaluations);
    assert_eq!(warm.per_group_choice, cold.per_group_choice);
}

/// The node-boot path: a cold store boots the safe fallback (lenient,
/// never dead), a tuned store boots the cached schedule, and both
/// engines actually serve.
#[test]
fn warm_boot_serves_cached_schedule_or_safe_fallback() {
    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let net = WORKLOAD.network();
    let weights = net.init_weights(0);
    let scene = WORKLOAD.scene_scaled(1, 0.05);

    // Cold store: fallback boot.
    let (engine, boot) = warm_boot(
        &mut cache,
        net.clone(),
        weights.clone(),
        ctx.clone(),
        scene.coords(),
        &policy,
    );
    assert_eq!(boot.origin, BootOrigin::Fallback);
    assert!(boot.digest.is_none());
    assert_eq!(engine.configs().default, DataflowConfig::safe_fallback());
    assert!(engine.simulate(&scene).total_us() > 0.0);

    // Tune and re-boot: cached schedule, as tuned.
    let s = vec![Session::new(&net, scene.coords())];
    let tuned = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    let (engine, boot) = warm_boot(
        &mut cache,
        net.clone(),
        weights.clone(),
        ctx.clone(),
        scene.coords(),
        &policy,
    );
    assert_eq!(boot.origin, BootOrigin::Cached);
    assert_eq!(boot.digest.as_deref(), Some(tuned.digest.as_str()));
    assert_eq!(Some(engine.configs()), tuned.result.configs.as_ref());
}

/// The cache is content-addressed, not name-addressed: the same
/// topology under a different network name boots the cached schedule,
/// and the engine it boots is keyed to its *own* name (so its
/// save/load artifacts stay self-consistent).
#[test]
fn warm_boot_transfers_across_network_renames() {
    use ts_core::NetworkBuilder;
    use ts_kernelmap::Coord;

    fn build(name: &str) -> ts_core::Network {
        let mut b = NetworkBuilder::new(name, 4);
        let c = b.conv_block("stem", NetworkBuilder::INPUT, 8, 3, 1);
        let d = b.conv_block("down", c, 16, 2, 2);
        let _ = b.conv("head", d, 4, 3, 1);
        b.build()
    }
    let coords: Vec<Coord> = (0..100)
        .map(|i| Coord::new(0, i % 10, i / 10, i % 3))
        .collect();

    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();

    let original = build("pilot");
    let s = vec![Session::new(&original, &coords)];
    let tuned = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");

    let renamed = build("production");
    let weights = renamed.init_weights(0);
    let (engine, boot) = warm_boot(&mut cache, renamed, weights, ctx, &coords, &policy);
    assert_eq!(boot.origin, BootOrigin::Cached, "rename must still hit");
    assert_eq!(Some(engine.configs()), tuned.result.configs.as_ref());
    assert_eq!(engine.save_schedule().network, "production");
}

/// Cache activity is observable: lookups and inserts emit `cache.*`
/// trace counters that land on the cache subsystem's track.
#[test]
fn cache_counters_reach_the_tracer() {
    let tracer = ts_trace::Tracer::new();
    tracer.install();

    let ctx = ctx();
    let opts = TunerOptions::default();
    let policy = DriftPolicy::default();
    let mut cache = ScheduleCache::in_memory();
    let s = sessions(1, 0.05);
    let _ = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");
    let _ = tune_cached(&mut cache, &s, &ctx, &opts, &policy).expect("in-memory");

    ts_trace::uninstall();
    assert_eq!(tracer.counter("cache.miss"), 1);
    assert_eq!(tracer.counter("cache.hit"), 1);
    assert_eq!(tracer.counter("cache.inserted"), 1);
    assert_eq!(
        ts_trace::Subsystem::from_counter_name("cache.hit"),
        ts_trace::Subsystem::Cache
    );
}
