//! Small-scale smoke checks of the paper's qualitative claims (the full
//! reproductions live in `crates/bench/benches/`; these keep the claims
//! guarded by `cargo test`).

use torchsparse::core::{GroupConfigs, Session, TrainConfigs};
use torchsparse::dataflow::{DataflowConfig, ExecCtx, GenFlags, ReorderMode};
use torchsparse::gpusim::Device;
use torchsparse::kernelgen::{generator_loc, GeneratedDataflow, KernelSpec};
use torchsparse::tensor::Precision;
use torchsparse::workloads::Workload;

fn detection_session() -> Session {
    let w = Workload::WaymoCenterPoint1f;
    Session::new(&w.network(), w.scene_scaled(21, 0.06).coords())
}

#[test]
fn tables_3_and_4_rank_opposite() {
    // The headline analysis: sorted implicit GEMM wins kernel-only but
    // loses end-to-end on the server GPU because of mapping overhead.
    let session = detection_session();
    let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16);
    let unsorted = session.simulate_inference(
        &GroupConfigs::uniform(DataflowConfig::implicit_gemm(0)),
        &ctx,
    );
    let sorted = session.simulate_inference(
        &GroupConfigs::uniform(DataflowConfig::implicit_gemm(1)),
        &ctx,
    );
    assert!(
        sorted.kernel_only_us() < unsorted.kernel_only_us(),
        "sorted kernels should be faster: {} vs {}",
        sorted.kernel_only_us(),
        unsorted.kernel_only_us()
    );
    assert!(
        unsorted.total_us() < sorted.total_us(),
        "unsorted should win end-to-end: {} vs {}",
        unsorted.total_us(),
        sorted.total_us()
    );
}

#[test]
fn figure_19_offline_reordering_wins_both_phases() {
    let w = Workload::SemanticKittiMinkUNet05;
    let net = w.network();
    let session = Session::new(&net, w.scene_scaled(13, 0.05).coords());
    let cfg = DataflowConfig::implicit_gemm(2);
    let offline = ExecCtx::simulate(Device::rtx3090(), Precision::Fp32);
    let online = offline.clone().with_reorder(ReorderMode::Online);

    let inf_gain = session
        .simulate_inference(&GroupConfigs::uniform(cfg), &online)
        .total_us()
        / session
            .simulate_inference(&GroupConfigs::uniform(cfg), &offline)
            .total_us();
    let tr_gain = session
        .simulate_training(&TrainConfigs::bound(cfg), &online)
        .total_us()
        / session
            .simulate_training(&TrainConfigs::bound(cfg), &offline)
            .total_us();
    assert!(inf_gain > 1.0, "inference gain {inf_gain}");
    assert!(
        tr_gain > inf_gain,
        "training should benefit more: {tr_gain} vs {inf_gain}"
    );
}

#[test]
fn figures_20_21_generator_transforms_close_the_gap() {
    let w = Workload::NuScenesCenterPoint10f;
    let session = Session::new(&w.network(), w.scene_scaled(5, 0.05).coords());
    let cfg = GroupConfigs::uniform(DataflowConfig::implicit_gemm(1));
    let run = |flags: GenFlags| {
        let ctx = ExecCtx::simulate(Device::rtx3090(), Precision::Fp16).with_gen_flags(flags);
        session.simulate_inference(&cfg, &ctx).compute_us()
    };
    let naive = run(GenFlags::naive());
    let optimised = run(GenFlags::default());
    let fixed = run(GenFlags {
        hoist_invariants: true,
        padded_map: true,
        fixed_shape: true,
    });
    let gap = naive / fixed;
    assert!((1.4..2.5).contains(&gap), "naive/fixed gap = {gap}");
    assert!(
        optimised <= fixed * 1.01,
        "optimised dynamic should match fixed"
    );
}

#[test]
fn generator_engineering_cost_claim() {
    let cost = generator_loc();
    assert!(cost.fraction_of_spconv() < 0.10);
    // The emitted kernels stay structurally sound across the spec space.
    for dataflow in [
        GeneratedDataflow::ImplicitGemm,
        GeneratedDataflow::FetchOnDemand,
    ] {
        for tile in ts_gpusim::TileShape::search_space().into_iter().take(6) {
            let spec = KernelSpec::new(dataflow, tile, Precision::Fp16);
            let k = torchsparse::kernelgen::generate(&spec);
            assert!(k.source.contains("__global__"));
            assert_eq!(k.stats.inner_loop_branches, 0);
        }
    }
}

#[test]
fn hybrid_dataflow_beats_its_subsets() {
    use torchsparse::autotune::{tune_inference, TunerOptions};
    let w = Workload::NuScenesMinkUNet1f;
    let session = Session::new(&w.network(), w.scene_scaled(5, 0.04).coords());
    let ctx = ExecCtx::simulate(Device::rtx2080ti(), Precision::Fp32);
    let hybrid = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::default(),
    );
    let implicit_only = tune_inference(
        std::slice::from_ref(&session),
        &ctx,
        &TunerOptions::implicit_only(&[0, 1, 2, 3, 4]),
    );
    assert!(hybrid.tuned_latency_us <= implicit_only.tuned_latency_us + 1e-6);
}
