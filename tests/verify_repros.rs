//! Replays the checked-in differential corpus under `tests/repros/`.
//!
//! Every file there is a [`ts_verify::Counterexample`]: either a seed
//! conformance scenario or a shrunken repro of a since-fixed bug. Both
//! must replay clean — a failure here means a dataflow regressed on a
//! case the harness has already seen.

use std::path::PathBuf;

fn repro_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("repros")
}

#[test]
fn corpus_replays_clean() {
    let results = ts_verify::replay_corpus(&repro_dir()).expect("corpus directory reads");
    assert!(!results.is_empty(), "corpus must not be empty");
    for r in &results {
        assert!(
            r.passed(),
            "{} regressed:\nviolations: {:#?}\nmismatches: {:#?}",
            r.path.display(),
            r.violations,
            r.mismatches
        );
    }
}

#[test]
fn corpus_scenarios_exercise_degenerate_and_dense_shapes() {
    let results = ts_verify::replay_corpus(&repro_dir()).expect("corpus directory reads");
    let text = std::fs::read_dir(repro_dir())
        .expect("reads")
        .filter_map(|e| e.ok())
        .map(|e| std::fs::read_to_string(e.path()).expect("file reads"))
        .collect::<String>();
    // The seed corpus intentionally spans a single-point cloud, an
    // even-kernel line and a multi-batch grid; keep that coverage.
    assert!(results.len() >= 3, "seed corpus shrank below 3 scenarios");
    assert!(text.contains("\"kernel_size\": 2"), "even kernel coverage");
    assert!(text.contains("\"c_in\": 1"), "single-channel coverage");
}
